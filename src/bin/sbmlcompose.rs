//! `sbmlcompose` — command-line interface to the composition engine.
//!
//! ```text
//! sbmlcompose compose  <a.xml> <b.xml> [<c.xml>...] [-o merged.xml] [--log log.txt]
//!                      [--semantics heavy|light|none] [--index hash|btree|linear]
//!                      [--pipeline on|off] [--pipeline-threads N]
//!                      [--deadline-ms N] [--max-steps N]
//! sbmlcompose match    <query.xml> <corpus.xml>... [--semantics heavy|light|none]
//!                      [--top K] [--threads N] [--deadline-ms N] [--max-steps N]
//! sbmlcompose split    <model.xml> [-o prefix]
//! sbmlcompose zoom     <model.xml> --seed <species>[,<species>...] [--radius N] [-o out.xml]
//! sbmlcompose validate <model.xml>
//! sbmlcompose simulate <model.xml> [--t-end T] [--dt DT] [-o trace.csv]
//! sbmlcompose check    <model.xml> --property "<PLTL>" [--runs N] [--t-end T] [--theta P]
//! sbmlcompose diff     <a.xml> <b.xml>
//! sbmlcompose snapshot build <corpus-dir> -o <file> [--semantics heavy|light|none] [--threads N]
//!                      [--shards N]
//! sbmlcompose snapshot inspect <file>
//! sbmlcompose serve    <snapshot> [--addr host:port] [--threads N] [--cache N] [--top K]
//!                      [--deadline-ms N] [--max-steps N]
//! sbmlcompose client   <addr> match|query <query.xml> | compose <a.xml> <b.xml>... |
//!                      upsert <model.xml> | remove <model-id> | stats | shutdown
//! ```
//!
//! `match` (alias: `query`) searches a corpus for a query subnetwork: the
//! corpus files are prepared once each, a match index is built over their
//! canonical content keys ([`MatchIndex`]), and every exact embedding is
//! reported with its concrete species/reaction mapping. When no corpus
//! model embeds the query, the top `--top` (default 10) approximate
//! matches are ranked by content-key Jaccard + mapped fraction instead.
//! `--semantics` selects the matching level (heavy: reaction content-key
//! edges; light: synonym-closed labels; none: exact labels) and
//! `--threads` bounds the parallel corpus search (0 = one per core).
//! `--max-steps` caps the VF2 step budget per candidate and
//! `--deadline-ms` bounds each query's refinement wall-clock; candidates
//! still undecided when a limit trips are reported as `truncated` lines.
//! Exit status: 0 when at least one exact hit exists, 1 on a definitive
//! miss, 4 when there is no exact hit but some candidates were truncated
//! or failed (a partial answer, not a verdict).
//!
//! `compose` takes **two or more** input files and folds them left to
//! right (the first file is the base; its model id survives). Two files
//! run the paper's pairwise algorithm directly; three or more are each
//! analysed once into a prepared model ([`Composer::prepare`]) and folded
//! through a single [`CompositionSession`], so no step re-derives a
//! model's content keys, indexes or initial values — output is identical
//! to the pairwise fold either way. `--semantics` picks the §5 matching
//! level (default `heavy`: synonyms, commutative math patterns, unit
//! conversion, initial-value evaluation); `--index` the lookup structure
//! (default `hash`). `--pipeline` toggles the merge-pass dependency-DAG
//! pipeline (default `on`; output is bit-for-bit identical either way)
//! and `--pipeline-threads` bounds its workers (default `0` = host
//! parallelism; the engine caps at the machine's cores). Without `-o` the
//! merged SBML goes to stdout; without `--log` the decision log
//! (duplicates, mappings, renames, conflicts) goes to stderr.
//!
//! `--deadline-ms` / `--max-steps` put the whole compose run under a
//! [`Budget`]: pushes are merged through a guarded session ([the
//! degradation ladder](sbmlcompose::compose::guard)), and if the budget
//! runs out (or a push fails on both the pipelined and serial paths) the
//! models merged so far are still written, flagged partial via exit 4.
//!
//! `snapshot build` prepares every `.xml` model in a directory once,
//! builds the match index (`--shards` partitions its posting lists for
//! scatter-gather queries; answers are identical at every shard count),
//! and persists both to a versioned binary snapshot ([`Snapshot`]);
//! `snapshot inspect` prints a snapshot's header — format version,
//! semantics, options fingerprint, model count, index generation, and
//! one line per shard (generation, live/tombstoned models, tombstone
//! fraction, posting counts per family) — without decoding the payload.
//! `serve` loads a snapshot in milliseconds — no re-parsing, no
//! re-analysis — and answers
//! `MATCH`/`QUERY`/`COMPOSE`/`UPSERT`/`REMOVE`/`STATS`/`SHUTDOWN`
//! requests over a plain TCP frame protocol from a bounded worker pool,
//! with an LRU result cache keyed by canonical content keys and every
//! request under the same budget flags as the one-shot commands.
//! `UPSERT` and `REMOVE` mutate the live index in place (append /
//! tombstone — no rebuild, no restart) and clear the result cache.
//! `client` sends one request and exits with the code the one-shot
//! command would have used (`ERR budget` → 4, `ERR parse` → 3,
//! `ERR proto` → 2).
//!
//! Exit status: 0 on success (for `check`: property satisfied; for `diff`:
//! equivalent), 1 on failure / unsatisfied / different, 2 on usage errors,
//! 3 on unreadable or malformed input files, 4 on partial results
//! (budget or deadline exhausted).
//!
//! [`Budget`]: sbmlcompose::compose::Budget
//!
//! [`Composer::prepare`]: sbmlcompose::compose::Composer::prepare
//! [`CompositionSession`]: sbmlcompose::compose::CompositionSession
//! [`MatchIndex`]: sbmlcompose::matching::MatchIndex
//! [`Snapshot`]: sbmlcompose::serve::Snapshot

use std::fs;
use std::process::ExitCode;

use sbmlcompose::compose::{
    Budget, ComposeOptions, Composer, CompositionSession, ExecError, IndexKind, SemanticsLevel,
};
use sbmlcompose::mc2::{check_probability, Formula};
use sbmlcompose::model::{parse_sbml, validate, write_sbml, Model, Severity};

/// What went wrong before the command could run, mapped to a distinct
/// exit code so scripts can tell "you called me wrong" (2) from "your
/// file is unreadable or not SBML" (3). Exit 4 is reserved for *partial*
/// results (a budget/deadline cut the work short) and is returned by the
/// commands themselves, not through this type.
enum CliError {
    /// Bad flags or arguments — exit 2.
    Usage(String),
    /// Unreadable, unwritable or malformed files — exit 3.
    Input(String),
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::Usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::Usage(message.to_owned())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
        Err(CliError::Input(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match command.as_str() {
        "compose" => cmd_compose(rest),
        "match" | "query" => cmd_match(rest),
        "split" => cmd_split(rest),
        "zoom" => cmd_zoom(rest),
        "validate" => cmd_validate(rest),
        "simulate" => cmd_simulate(rest),
        "check" => cmd_check(rest),
        "diff" => cmd_diff(rest),
        "snapshot" => cmd_snapshot(rest),
        "serve" => cmd_serve(rest),
        "coordinator" => cmd_coordinator(rest),
        "cluster" => cmd_cluster(rest),
        "client" => cmd_client(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try --help)").into()),
    }
}

fn print_usage() {
    eprintln!(
        "sbmlcompose — biochemical network matching and composition (EDBT 2010)\n\
         \n\
         usage:\n\
         \x20 sbmlcompose compose  <a.xml> <b.xml> [<c.xml>...] [-o merged.xml] [--log log.txt]\n\
         \x20                      [--semantics heavy|light|none] [--index hash|btree|linear]\n\
         \x20                      [--pipeline on|off] [--pipeline-threads N]\n\
         \x20                      [--deadline-ms N] [--max-steps N]\n\
         \x20        composes two or more models left to right (first file is the base).\n\
         \x20        3+ files are analysed once each (prepared models) and folded through\n\
         \x20        one composition session; output is identical to the pairwise fold.\n\
         \x20        -o: merged SBML (default stdout); --log: decision log (default stderr)\n\
         \x20        --pipeline: merge-pass dependency-DAG pipeline (default on; output\n\
         \x20        identical either way); --pipeline-threads: worker bound (0 = cores)\n\
         \x20        --deadline-ms/--max-steps: wall-clock/work budget; when it runs out\n\
         \x20        the models merged so far are written and the exit code is 4\n\
         \x20 sbmlcompose match    <query.xml> <corpus.xml>... [--semantics heavy|light|none]\n\
         \x20                      [--top K] [--threads N] [--deadline-ms N] [--max-steps N]\n\
         \x20        (alias: query) searches the corpus for the query subnetwork: exact\n\
         \x20        embeddings are reported with their species/reaction mappings; when\n\
         \x20        none exists the top K (default 10) approximate matches are ranked\n\
         \x20        by content-key Jaccard + mapped fraction. --threads bounds the\n\
         \x20        parallel corpus search (0 = cores); --max-steps/--deadline-ms bound\n\
         \x20        each candidate's VF2 search (undecided candidates print as\n\
         \x20        'truncated'). exit 0 iff an exact hit exists; 4 = partial answer\n\
         \x20 exit codes: 0 success/hit, 1 miss/failure, 2 usage, 3 bad input, 4 partial\n\
         \x20 sbmlcompose split    <model.xml> [-o prefix]\n\
         \x20 sbmlcompose zoom     <model.xml> --seed <ids> [--radius N] [-o out.xml]\n\
         \x20 sbmlcompose validate <model.xml>\n\
         \x20 sbmlcompose simulate <model.xml> [--t-end T] [--dt DT] [-o trace.csv]\n\
         \x20 sbmlcompose check    <model.xml> --property '<PLTL>' [--runs N] [--t-end T] [--theta P]\n\
         \x20 sbmlcompose diff     <a.xml> <b.xml>\n\
         \x20 sbmlcompose snapshot build <corpus-dir> -o <file> [--semantics heavy|light|none]\n\
         \x20                      [--threads N] [--shards N]\n\
         \x20        prepares every .xml model in the directory, builds the match index\n\
         \x20        (--shards partitions its posting lists; answers are identical at\n\
         \x20        every shard count), and persists both to a binary snapshot\n\
         \x20 sbmlcompose snapshot inspect <file> [--shard I]\n\
         \x20        prints the snapshot header (version, semantics, fingerprint, model\n\
         \x20        count, index generation, per-shard stats, posting counts) without\n\
         \x20        decoding the payload; --shard I describes one shard (its stats plus\n\
         \x20        the slots it owns); split files also print their cluster identity;\n\
         \x20        exit 3 if corrupt\n\
         \x20 sbmlcompose snapshot split <file> [-o prefix]\n\
         \x20        carves a full snapshot into one self-contained file per physical\n\
         \x20        shard (prefix.shard0, prefix.shard1, ...); each loads standalone as\n\
         \x20        a shard daemon corpus and records its i/n identity and slot universe\n\
         \x20 sbmlcompose serve    <snapshot> [--shard I/N] [--addr host:port] [--threads N]\n\
         \x20                      [--cache N] [--top K] [--deadline-ms N] [--max-steps N]\n\
         \x20        loads the snapshot (no re-analysis) and serves MATCH/QUERY/COMPOSE/\n\
         \x20        UPSERT/REMOVE/STATS/SHUTDOWN over plain TCP frames; prints the bound\n\
         \x20        address. UPSERT/REMOVE mutate the live index in place (no restart).\n\
         \x20        --shard I/N: serve only shard I of an N-wide cluster (loads just\n\
         \x20        that slice of a full snapshot; a split file carries its identity and\n\
         \x20        needs no flag). --cache: LRU result-cache entries (default 256,\n\
         \x20        0 disables); --deadline-ms/--max-steps: per-request budget (hostile\n\
         \x20        requests get a structured budget error; the daemon keeps serving)\n\
         \x20 sbmlcompose coordinator --shards addr,addr,... [--addr host:port]\n\
         \x20                      [--threads N] [--cache N] [--top K] [--deadline-ms N]\n\
         \x20                      [--max-steps N] [--retry-attempts N] [--retry-backoff-ms N]\n\
         \x20        serves the same client protocol over a cluster of shard daemons:\n\
         \x20        routes UPSERT/REMOVE by slot ownership, scatters MATCH/QUERY to all\n\
         \x20        shards and merges answers bit-identically to a single process. A\n\
         \x20        dead shard degrades reads to a partial answer (exit 4, shard named)\n\
         \x20        and fails writes loudly\n\
         \x20 sbmlcompose cluster  status <addr>\n\
         \x20        prints the coordinator's aggregated STATS (cluster identity plus\n\
         \x20        each shard's counters, or a dead marker naming the shard)\n\
         \x20 sbmlcompose client   <addr> match <query.xml> | query <query.xml> |\n\
         \x20                      compose <a.xml> <b.xml>... | upsert <model.xml> |\n\
         \x20                      remove <model-id> | stats | shutdown\n\
         \x20        sends one request; prints the response body and exits with the\n\
         \x20        one-shot command's code (budget error -> 4, parse error -> 3)"
    );
}

/// Pull `--flag value` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn load_model(path: &str) -> Result<Model, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    parse_sbml(&text).map_err(|e| CliError::Input(format!("{path}: {e}")))
}

/// Write a file, classifying failure as an I/O (exit 3) error.
fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(path, contents).map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))
}

/// Parse the shared `--deadline-ms N` / `--max-steps N` budget flags.
fn take_budget_flags(args: &mut Vec<String>) -> Result<(Option<u64>, Option<u64>), CliError> {
    let deadline_ms = take_flag(args, "--deadline-ms")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --deadline-ms {v:?}")))
        .transpose()?;
    let max_steps = take_flag(args, "--max-steps")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --max-steps {v:?}")))
        .transpose()?;
    Ok((deadline_ms, max_steps))
}

fn cmd_compose(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "-o");
    let log_path = take_flag(&mut args, "--log");
    let (deadline_ms, max_steps) = take_budget_flags(&mut args)?;
    let semantics = match take_flag(&mut args, "--semantics").as_deref() {
        None | Some("heavy") => SemanticsLevel::Heavy,
        Some("light") => SemanticsLevel::Light,
        Some("none") => SemanticsLevel::None,
        Some(other) => return Err(format!("unknown semantics level {other:?}").into()),
    };
    let index = match take_flag(&mut args, "--index").as_deref() {
        None | Some("hash") => IndexKind::HashMap,
        Some("btree") => IndexKind::BTree,
        Some("linear") => IndexKind::LinearScan,
        Some(other) => return Err(format!("unknown index kind {other:?}").into()),
    };
    let merge_pipeline = match take_flag(&mut args, "--pipeline").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--pipeline takes on|off, not {other:?}").into()),
    };
    let pipeline_threads = match take_flag(&mut args, "--pipeline-threads") {
        None => 0,
        Some(v) => v.parse::<usize>().map_err(|_| format!("bad --pipeline-threads {v:?}"))?,
    };
    if args.len() < 2 {
        return Err("compose needs at least two input files".into());
    }

    let models = args.iter().map(|path| load_model(path)).collect::<Result<Vec<_>, _>>()?;
    let mut options = match semantics {
        SemanticsLevel::Heavy => ComposeOptions::heavy(),
        SemanticsLevel::Light => ComposeOptions::light(),
        SemanticsLevel::None => ComposeOptions::none(),
    };
    options.index = index;
    options.merge_pipeline = merge_pipeline;
    options.pipeline_threads = pipeline_threads;
    let (result, guard_fault) = if deadline_ms.is_some() || max_steps.is_some() {
        // Budgeted run: fold through a guarded session. A push that
        // exhausts the budget (or panics on both the pipelined and the
        // serial path) stops the fold; everything merged before it is
        // still written out, flagged as partial via exit code 4.
        let mut budget = Budget::unlimited();
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline_ms(ms);
        }
        if let Some(steps) = max_steps {
            budget = budget.with_max_steps(steps);
        }
        let meter = budget.start();
        let mut session = CompositionSession::new(&options);
        let mut fault: Option<ExecError> = None;
        for (i, model) in models.iter().enumerate() {
            match session.push_guarded(model, Some(&meter)) {
                Ok(outcome) => {
                    if let Some(degraded) = outcome.degraded {
                        eprintln!(
                            "warning: {} merged on the serial fallback path: {degraded}",
                            args[i]
                        );
                    }
                }
                Err(error) => {
                    eprintln!("warning: stopped before {}: {error}", args[i]);
                    fault = Some(error);
                    break;
                }
            }
        }
        (session.finish(), fault)
    } else if let [a, b] = models.as_slice() {
        // One-shot pair: no reuse to amortise a preparation over.
        (Composer::new(options).compose(a, b), None)
    } else {
        // Longer chains run through one session over prepared models, so
        // no step re-derives a model's analysis.
        let composer = Composer::new(options);
        let prepared: Vec<_> = models.iter().map(|m| composer.prepare(m)).collect();
        (sbmlcompose::compose::compose_many_prepared(&composer, &prepared), None)
    };

    let xml = write_sbml(&result.model);
    let chain = models.iter().map(|m| m.id.as_str()).collect::<Vec<_>>().join(" + ");
    match out {
        Some(path) => {
            write_file(&path, &xml)?;
            eprintln!(
                "composed {} -> {} ({} species, {} reactions; {})",
                chain,
                path,
                result.model.species.len(),
                result.model.reactions.len(),
                result.log.stats()
            );
        }
        None => println!("{xml}"),
    }
    match log_path {
        Some(path) => write_file(&path, &result.log.to_text())?,
        None => eprint!("{}", result.log.to_text()),
    }
    match guard_fault {
        Some(fault) => {
            eprintln!("compose: output is partial: {fault}");
            Ok(ExitCode::from(4))
        }
        None => Ok(ExitCode::SUCCESS),
    }
}

fn cmd_match(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::compose::{BatchComposer, Composer as MatchComposer};
    use sbmlcompose::matching::MatchIndex;

    let mut args = args.to_vec();
    let semantics = match take_flag(&mut args, "--semantics").as_deref() {
        None | Some("heavy") => SemanticsLevel::Heavy,
        Some("light") => SemanticsLevel::Light,
        Some("none") => SemanticsLevel::None,
        Some(other) => return Err(format!("unknown semantics level {other:?}").into()),
    };
    let (deadline_ms, max_steps) = take_budget_flags(&mut args)?;
    let top: usize = take_flag(&mut args, "--top")
        .map(|v| v.parse().map_err(|_| format!("bad --top {v:?}")))
        .transpose()?
        .unwrap_or(10);
    let threads: usize = take_flag(&mut args, "--threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads {v:?}")))
        .transpose()?
        .unwrap_or(0);
    if args.len() < 2 {
        return Err("match needs a query file and at least one corpus file".into());
    }
    let query = load_model(&args[0])?;
    let corpus_paths = &args[1..];
    let corpus =
        corpus_paths.iter().map(|path| load_model(path)).collect::<Result<Vec<_>, _>>()?;

    let options = match semantics {
        SemanticsLevel::Heavy => ComposeOptions::heavy(),
        SemanticsLevel::Light => ComposeOptions::light(),
        SemanticsLevel::None => ComposeOptions::none(),
    };
    let batch = BatchComposer::new(MatchComposer::new(options.clone())).with_threads(threads);
    let prepared = batch.prepare_corpus(&corpus);
    let mut index = MatchIndex::build_with_threads(&prepared, &options, threads).with_top_k(top);
    if let Some(steps) = max_steps {
        index = index.with_budget(steps);
    }
    if let Some(ms) = deadline_ms {
        index = index.with_deadline_ms(ms);
    }
    let result = index.query_corpus(&query);

    eprintln!(
        "query {} ({} species, {} reactions) against {} corpus model(s): {} candidate(s)",
        query.id,
        query.species.len(),
        query.reactions.len(),
        corpus.len(),
        result.candidates.len()
    );
    // The same formatter renders one-shot and daemon answers, which is
    // what keeps `sbmlcompose match` and a served MATCH bit-identical
    // for the same labels.
    let labels = corpus_paths.to_vec();
    let ids: Vec<String> = corpus.iter().map(|m| m.id.clone()).collect();
    let (code, text) = sbmlcompose::serve::format_matches(&result, &labels, &ids);
    print!("{text}");
    Ok(ExitCode::from(code))
}

fn cmd_split(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let prefix = take_flag(&mut args, "-o").unwrap_or_else(|| "part".to_owned());
    let [path] = args.as_slice() else {
        return Err("split needs exactly one input file".into());
    };
    let model = load_model(path)?;
    let parts = sbmlcompose::compose::split_components(&model);
    eprintln!("{} component(s)", parts.len());
    for (i, part) in parts.iter().enumerate() {
        let out = format!("{prefix}_{i}.xml");
        write_file(&out, &write_sbml(part))?;
        eprintln!("  {out}: {} species, {} reactions", part.species.len(), part.reactions.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_zoom(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let seeds_raw =
        take_flag(&mut args, "--seed").ok_or("zoom needs --seed <species>[,<species>...]")?;
    let radius: usize = take_flag(&mut args, "--radius")
        .map(|r| r.parse().map_err(|_| format!("bad radius {r:?}")))
        .transpose()?
        .unwrap_or(1);
    let out = take_flag(&mut args, "-o");
    let [path] = args.as_slice() else {
        return Err("zoom needs exactly one input file".into());
    };
    let model = load_model(path)?;
    let seeds: Vec<&str> = seeds_raw.split(',').map(str::trim).collect();
    let sub = sbmlcompose::compose::extract_submodel(&model, &seeds, radius);
    eprintln!(
        "zoom radius {radius} around {:?}: {} species, {} reactions",
        seeds,
        sub.species.len(),
        sub.reactions.len()
    );
    let xml = write_sbml(&sub);
    match out {
        Some(p) => write_file(&p, &xml)?,
        None => println!("{xml}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let [path] = args else {
        return Err("validate needs exactly one input file".into());
    };
    let model = load_model(path)?;
    let issues = validate(&model);
    for issue in &issues {
        println!("{issue}");
    }
    let errors = issues.iter().filter(|i| i.severity == Severity::Error).count();
    println!(
        "{}: {} error(s), {} warning(s)",
        path,
        errors,
        issues.len() - errors
    );
    Ok(if errors == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_simulate(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let t_end: f64 = take_flag(&mut args, "--t-end")
        .map(|v| v.parse().map_err(|_| format!("bad --t-end {v:?}")))
        .transpose()?
        .unwrap_or(10.0);
    let dt: f64 = take_flag(&mut args, "--dt")
        .map(|v| v.parse().map_err(|_| format!("bad --dt {v:?}")))
        .transpose()?
        .unwrap_or(0.01);
    let out = take_flag(&mut args, "-o");
    let [path] = args.as_slice() else {
        return Err("simulate needs exactly one input file".into());
    };
    let model = load_model(path)?;
    let trace = sbmlcompose::sim::ode::simulate_rk4(&model, t_end, dt)
        .map_err(|e| format!("simulation failed: {e}"))?;
    let csv = trace.to_csv();
    match out {
        Some(p) => {
            write_file(&p, &csv)?;
            eprintln!("{} samples x {} species -> {}", trace.len(), trace.species.len(), p);
        }
        None => print!("{csv}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let property = take_flag(&mut args, "--property").ok_or("check needs --property '<PLTL>'")?;
    let runs: usize = take_flag(&mut args, "--runs")
        .map(|v| v.parse().map_err(|_| format!("bad --runs {v:?}")))
        .transpose()?
        .unwrap_or(50);
    let t_end: f64 = take_flag(&mut args, "--t-end")
        .map(|v| v.parse().map_err(|_| format!("bad --t-end {v:?}")))
        .transpose()?
        .unwrap_or(10.0);
    let theta: f64 = take_flag(&mut args, "--theta")
        .map(|v| v.parse().map_err(|_| format!("bad --theta {v:?}")))
        .transpose()?
        .unwrap_or(0.95);
    let [path] = args.as_slice() else {
        return Err("check needs exactly one input file".into());
    };
    let model = load_model(path)?;
    let phi = Formula::parse(&property).map_err(|e| format!("bad property: {e}"))?;
    let verdict = check_probability(&model, &phi, runs, t_end, theta)?;
    println!(
        "P({property}) ≈ {:.3} (95% CI {:.3}–{:.3}, {}/{} runs) vs θ={theta} → {}",
        verdict.estimate,
        verdict.interval.0,
        verdict.interval.1,
        verdict.satisfying,
        verdict.runs,
        if verdict.satisfied { "SATISFIED" } else { "VIOLATED" }
    );
    Ok(if verdict.satisfied { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, CliError> {
    let [a_path, b_path] = args else {
        return Err("diff needs exactly two input files".into());
    };
    let a = fs::read_to_string(a_path)
        .map_err(|e| CliError::Input(format!("cannot read {a_path}: {e}")))?;
    let b = fs::read_to_string(b_path)
        .map_err(|e| CliError::Input(format!("cannot read {b_path}: {e}")))?;
    let equivalent =
        sbmlcompose::textdiff::sbml_equivalent(&a, &b)
            .map_err(|e| CliError::Input(e.to_string()))?;
    if equivalent {
        println!("equivalent (under SBML ordering rules)");
        Ok(ExitCode::SUCCESS)
    } else {
        print!("{}", sbmlcompose::textdiff::sbml_text_diff(&a, &b).map_err(|e| CliError::Input(e.to_string()))?);
        Ok(ExitCode::FAILURE)
    }
}

fn semantics_name(level: SemanticsLevel) -> &'static str {
    match level {
        SemanticsLevel::Heavy => "heavy",
        SemanticsLevel::Light => "light",
        SemanticsLevel::None => "none",
    }
}

fn cmd_snapshot(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::compose::BatchComposer;
    use sbmlcompose::matching::MatchIndex;
    use sbmlcompose::serve::Snapshot;

    let Some(sub) = args.first() else {
        return Err("snapshot needs a subcommand: build or inspect".into());
    };
    let rest = &args[1..];
    match sub.as_str() {
        "build" => {
            let mut args = rest.to_vec();
            let out = take_flag(&mut args, "-o").ok_or("snapshot build needs -o <file>")?;
            let semantics = match take_flag(&mut args, "--semantics").as_deref() {
                None | Some("heavy") => SemanticsLevel::Heavy,
                Some("light") => SemanticsLevel::Light,
                Some("none") => SemanticsLevel::None,
                Some(other) => return Err(format!("unknown semantics level {other:?}").into()),
            };
            let threads: usize = take_flag(&mut args, "--threads")
                .map(|v| v.parse().map_err(|_| format!("bad --threads {v:?}")))
                .transpose()?
                .unwrap_or(0);
            let shards: usize = take_flag(&mut args, "--shards")
                .map(|v| v.parse().map_err(|_| format!("bad --shards {v:?}")))
                .transpose()?
                .unwrap_or(1);
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            let [dir] = args.as_slice() else {
                return Err("snapshot build needs exactly one corpus directory".into());
            };
            let entries = fs::read_dir(dir)
                .map_err(|e| CliError::Input(format!("cannot read {dir}: {e}")))?;
            let mut paths: Vec<String> = entries
                .filter_map(|entry| {
                    let path = entry.ok()?.path();
                    (path.extension().is_some_and(|ext| ext == "xml"))
                        .then(|| path.to_string_lossy().into_owned())
                })
                .collect();
            paths.sort();
            if paths.is_empty() {
                return Err(CliError::Input(format!("{dir}: no .xml models found")));
            }
            let models =
                paths.iter().map(|path| load_model(path)).collect::<Result<Vec<_>, _>>()?;
            let options = sbmlcompose::serve::preset_options(semantics);
            let composer = Composer::new(options.clone());
            let batch = BatchComposer::new(composer).with_threads(threads);
            let prepared = batch.prepare_corpus(&models);
            let index = MatchIndex::build_sharded(&prepared, &options, threads, shards);
            Snapshot::write(&out, &index, &options)
                .map_err(|e| CliError::Input(format!("cannot write {out}: {e}")))?;
            let info = Snapshot::inspect(&out)
                .map_err(|e| CliError::Input(format!("{out}: {e}")))?;
            eprintln!(
                "snapshot {out}: {} model(s), {} shard(s), {} bytes, semantics {}, \
                 fingerprint {:016x}",
                info.models,
                info.shards.len(),
                info.bytes,
                semantics_name(info.semantics),
                info.fingerprint,
            );
            Ok(ExitCode::SUCCESS)
        }
        "split" => {
            let mut args = rest.to_vec();
            let prefix = take_flag(&mut args, "-o");
            let [path] = args.as_slice() else {
                return Err("snapshot split needs exactly one file".into());
            };
            let prefix = prefix.unwrap_or_else(|| path.clone());
            let parts =
                Snapshot::split(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            let n = parts.len();
            for (i, bytes) in parts.iter().enumerate() {
                let out = format!("{prefix}.shard{i}");
                fs::write(&out, bytes)
                    .map_err(|e| CliError::Input(format!("cannot write {out}: {e}")))?;
                eprintln!("shard {i}/{n}: {out} ({} bytes)", bytes.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        "inspect" => {
            let mut args = rest.to_vec();
            let shard_filter: Option<usize> = take_flag(&mut args, "--shard")
                .map(|v| v.parse().map_err(|_| format!("bad --shard {v:?}")))
                .transpose()?;
            let [path] = args.as_slice() else {
                return Err("snapshot inspect needs exactly one file".into());
            };
            let info = Snapshot::inspect(path)
                .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            let cluster = Snapshot::cluster_info(path)
                .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            if let Some(i) = shard_filter {
                if i >= info.shards.len() {
                    return Err(CliError::Input(format!(
                        "shard {i} out of range: snapshot has {} shard(s)",
                        info.shards.len(),
                    )));
                }
                let shard = &info.shards[i];
                println!("shard {i}/{}", info.shards.len());
                println!("generation {}", shard.generation);
                println!("live {}", shard.live);
                println!("dead {}", shard.dead);
                println!("owned_slots {}", shard.live + shard.dead);
                println!("tombstone_fraction {:.3}", shard.tombstone_fraction());
                println!("node_postings {}", shard.node_postings);
                println!("edge_postings {}", shard.edge_postings);
                println!("participant_postings {}", shard.participant_postings);
                if let Some(c) = cluster {
                    println!("cluster_shard {}/{}", c.shard, c.shards);
                    println!("cluster_universe {}", c.universe);
                }
                return Ok(ExitCode::SUCCESS);
            }
            println!("version {}", info.version);
            println!("semantics {}", semantics_name(info.semantics));
            println!("fingerprint {:016x}", info.fingerprint);
            println!("models {}", info.models);
            println!("generation {}", info.generation);
            println!("shards {}", info.shards.len());
            for (i, shard) in info.shards.iter().enumerate() {
                println!(
                    "shard {i} generation {} live {} dead {} tombstone_fraction {:.3} \
                     node_postings {} edge_postings {} participant_postings {}",
                    shard.generation,
                    shard.live,
                    shard.dead,
                    shard.tombstone_fraction(),
                    shard.node_postings,
                    shard.edge_postings,
                    shard.participant_postings,
                );
            }
            println!("node_postings {}", info.node_postings);
            println!("edge_postings {}", info.edge_postings);
            println!("participant_postings {}", info.participant_postings);
            println!("bytes {}", info.bytes);
            if let Some(c) = cluster {
                println!("cluster_shard {}/{}", c.shard, c.shards);
                println!("cluster_universe {}", c.universe);
            }
            Ok(ExitCode::SUCCESS)
        }
        other => {
            Err(format!("unknown snapshot subcommand {other:?} (build|inspect|split)").into())
        }
    }
}

/// Parse `--shard I/N` (e.g. `2/4`) into `(shard, shards)`.
fn parse_shard_spec(spec: &str) -> Result<(usize, usize), CliError> {
    let parsed = spec.split_once('/').and_then(|(i, n)| {
        let shard: usize = i.parse().ok()?;
        let shards: usize = n.parse().ok()?;
        (shards > 0 && shard < shards).then_some((shard, shards))
    });
    parsed.ok_or_else(|| {
        CliError::Usage(format!("--shard takes I/N with I < N, not {spec:?}"))
    })
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::serve::{Server, ServerConfig, ShardIdentity, Snapshot};

    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let shard_spec =
        take_flag(&mut args, "--shard").map(|v| parse_shard_spec(&v)).transpose()?;
    let threads: usize = take_flag(&mut args, "--threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let cache_capacity: usize = take_flag(&mut args, "--cache")
        .map(|v| v.parse().map_err(|_| format!("bad --cache {v:?}")))
        .transpose()?
        .unwrap_or(256);
    let top_k: usize = take_flag(&mut args, "--top")
        .map(|v| v.parse().map_err(|_| format!("bad --top {v:?}")))
        .transpose()?
        .unwrap_or(10);
    let (deadline_ms, max_steps) = take_budget_flags(&mut args)?;
    let [snapshot_path] = args.as_slice() else {
        return Err("serve needs exactly one snapshot file".into());
    };
    let on_disk = Snapshot::cluster_info(snapshot_path)
        .map_err(|e| CliError::Input(format!("{snapshot_path}: {e}")))?;
    let loaded = match (shard_spec, on_disk) {
        // A split file carries its own identity; --shard may restate it.
        (spec, Some(c)) => {
            if let Some((shard, shards)) = spec {
                if (shard, shards) != (c.shard, c.shards) {
                    return Err(CliError::Input(format!(
                        "{snapshot_path} is shard {}/{} (asked to serve {shard}/{shards})",
                        c.shard, c.shards,
                    )));
                }
            }
            Snapshot::load_auto(snapshot_path, threads)
        }
        (Some((shard, shards)), None) => {
            Snapshot::load_shard(snapshot_path, threads, shard, shards)
        }
        (None, None) => Snapshot::load_auto(snapshot_path, threads),
    }
    .map_err(|e| CliError::Input(format!("{snapshot_path}: {e}")))?;
    let sbmlcompose::serve::LoadedSnapshot { index, options, info, cluster, .. } = loaded;
    let config =
        ServerConfig { threads, cache_capacity, max_steps, deadline_ms, top_k };
    let identity = cluster.map(|c| ShardIdentity {
        shard: c.shard,
        shards: c.shards,
        global_slots: c.global_slots(&index),
        universe: c.universe,
    });
    let role = match &identity {
        Some(id) => format!(", shard {}/{}", id.shard, id.shards),
        None => String::new(),
    };
    // `info.models` counts the whole file; a --shard load serves a slice.
    let serving = index.len();
    let server = match identity {
        Some(id) => Server::bind_shard(addr.as_str(), index, options, config, id),
        None => Server::bind(addr.as_str(), index, options, config),
    }
    .map_err(|e| CliError::Input(format!("cannot bind {addr}: {e}")))?;
    println!(
        "listening on {} ({} model(s), semantics {}{role})",
        server.local_addr(),
        serving,
        semantics_name(info.semantics),
    );
    // Scripts wait for the address line before connecting; stdout may be
    // a pipe, so push it out before blocking in the accept loop.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.run().map_err(|e| CliError::Input(format!("serve failed: {e}")))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_coordinator(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::cluster::{Coordinator, CoordinatorConfig, RetryPolicy};

    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7979".to_owned());
    let shards_flag = take_flag(&mut args, "--shards")
        .ok_or("coordinator needs --shards addr,addr,... (one per shard, in order)")?;
    let shard_addrs: Vec<String> = shards_flag
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if shard_addrs.is_empty() {
        return Err("--shards needs at least one address".into());
    }
    let threads: usize = take_flag(&mut args, "--threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let cache_capacity: usize = take_flag(&mut args, "--cache")
        .map(|v| v.parse().map_err(|_| format!("bad --cache {v:?}")))
        .transpose()?
        .unwrap_or(256);
    let top_k: usize = take_flag(&mut args, "--top")
        .map(|v| v.parse().map_err(|_| format!("bad --top {v:?}")))
        .transpose()?
        .unwrap_or(10);
    let (deadline_ms, max_steps) = take_budget_flags(&mut args)?;
    let mut retry = RetryPolicy::default();
    if let Some(v) = take_flag(&mut args, "--retry-attempts") {
        retry.attempts = v.parse().map_err(|_| format!("bad --retry-attempts {v:?}"))?;
    }
    if let Some(v) = take_flag(&mut args, "--retry-backoff-ms") {
        retry.backoff_ms = v.parse().map_err(|_| format!("bad --retry-backoff-ms {v:?}"))?;
    }
    if let Some(stray) = args.first() {
        return Err(format!("unexpected coordinator argument {stray:?}").into());
    }
    let config = CoordinatorConfig {
        threads,
        cache_capacity,
        max_steps,
        deadline_ms,
        top_k,
        retry,
        options: None,
    };
    let coordinator = Coordinator::bind(addr.as_str(), &shard_addrs, config)
        .map_err(|e| CliError::Input(format!("cannot start coordinator on {addr}: {e}")))?;
    println!(
        "listening on {} (coordinator, {} shard(s), {} model(s))",
        coordinator.local_addr(),
        coordinator.shards(),
        coordinator.live_models(),
    );
    // Scripts wait for the address line before connecting.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    coordinator.run().map_err(|e| CliError::Input(format!("coordinator failed: {e}")))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_cluster(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::serve::{Client, Request, Response};

    let Some(sub) = args.first() else {
        return Err("cluster needs a subcommand: status <addr>".into());
    };
    match sub.as_str() {
        "status" => {
            let [addr] = &args[1..] else {
                return Err("cluster status needs exactly one coordinator address".into());
            };
            let mut client = Client::connect(addr.as_str())
                .map_err(|e| CliError::Input(format!("cannot connect to {addr}: {e}")))?;
            let response = client
                .roundtrip(&Request::Stats)
                .map_err(|e| CliError::Input(format!("{addr}: {e}")))?;
            match response {
                Response::Ok { body, .. } => {
                    let _ = std::io::Write::write_all(&mut std::io::stdout(), &body);
                    Ok(ExitCode::SUCCESS)
                }
                Response::Err { kind, message } => {
                    eprintln!("error ({}): {message}", kind.token());
                    Ok(ExitCode::from(kind.exit_code()))
                }
            }
        }
        other => Err(format!("unknown cluster subcommand {other:?} (status)").into()),
    }
}

fn cmd_client(args: &[String]) -> Result<ExitCode, CliError> {
    use sbmlcompose::serve::{Client, Request, Response};

    if args.len() < 2 {
        return Err(
            "client needs <addr> and a verb: match|query <file>, compose <files...>, \
             upsert <file>, remove <model-id>, stats, shutdown"
                .into(),
        );
    }
    let addr = &args[0];
    let rest = &args[2..];
    let read_doc = |path: &String| {
        fs::read_to_string(path)
            .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))
    };
    let request = match args[1].as_str() {
        "match" => {
            let [path] = rest else { return Err("client match needs one query file".into()) };
            Request::Match { query_xml: read_doc(path)? }
        }
        "query" => {
            let [path] = rest else { return Err("client query needs one query file".into()) };
            Request::Query { query_xml: read_doc(path)? }
        }
        "compose" => {
            if rest.len() < 2 {
                return Err("client compose needs at least two model files".into());
            }
            let models_xml = rest.iter().map(read_doc).collect::<Result<Vec<_>, _>>()?;
            Request::Compose { models_xml }
        }
        "upsert" => {
            let [path] = rest else { return Err("client upsert needs one model file".into()) };
            Request::Upsert { model_xml: read_doc(path)?, slot: None }
        }
        "remove" => {
            let [model_id] = rest else {
                return Err("client remove needs one model id".into());
            };
            Request::Remove { model_id: model_id.clone() }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown client verb {other:?}").into()),
    };
    let mut client = Client::connect(addr.as_str())
        .map_err(|e| CliError::Input(format!("cannot connect to {addr}: {e}")))?;
    let response = client
        .roundtrip(&request)
        .map_err(|e| CliError::Input(format!("{addr}: {e}")))?;
    match response {
        Response::Ok { code, body } => {
            let _ = std::io::Write::write_all(&mut std::io::stdout(), &body);
            Ok(ExitCode::from(code))
        }
        Response::Err { kind, message } => {
            eprintln!("error ({}): {message}", kind.token());
            Ok(ExitCode::from(kind.exit_code()))
        }
    }
}
