//! `sbmlcompose` — command-line interface to the composition engine.
//!
//! ```text
//! sbmlcompose compose  <a.xml> <b.xml> [<c.xml>...] [-o merged.xml] [--log log.txt]
//!                      [--semantics heavy|light|none] [--index hash|btree|linear]
//!                      [--pipeline on|off] [--pipeline-threads N]
//! sbmlcompose match    <query.xml> <corpus.xml>... [--semantics heavy|light|none]
//!                      [--top K] [--threads N]
//! sbmlcompose split    <model.xml> [-o prefix]
//! sbmlcompose zoom     <model.xml> --seed <species>[,<species>...] [--radius N] [-o out.xml]
//! sbmlcompose validate <model.xml>
//! sbmlcompose simulate <model.xml> [--t-end T] [--dt DT] [-o trace.csv]
//! sbmlcompose check    <model.xml> --property "<PLTL>" [--runs N] [--t-end T] [--theta P]
//! sbmlcompose diff     <a.xml> <b.xml>
//! ```
//!
//! `match` (alias: `query`) searches a corpus for a query subnetwork: the
//! corpus files are prepared once each, a match index is built over their
//! canonical content keys ([`MatchIndex`]), and every exact embedding is
//! reported with its concrete species/reaction mapping. When no corpus
//! model embeds the query, the top `--top` (default 10) approximate
//! matches are ranked by content-key Jaccard + mapped fraction instead.
//! `--semantics` selects the matching level (heavy: reaction content-key
//! edges; light: synonym-closed labels; none: exact labels) and
//! `--threads` bounds the parallel corpus search (0 = one per core).
//! Exit status: 0 when at least one exact hit exists, 1 otherwise.
//!
//! `compose` takes **two or more** input files and folds them left to
//! right (the first file is the base; its model id survives). Two files
//! run the paper's pairwise algorithm directly; three or more are each
//! analysed once into a prepared model ([`Composer::prepare`]) and folded
//! through a single [`CompositionSession`], so no step re-derives a
//! model's content keys, indexes or initial values — output is identical
//! to the pairwise fold either way. `--semantics` picks the §5 matching
//! level (default `heavy`: synonyms, commutative math patterns, unit
//! conversion, initial-value evaluation); `--index` the lookup structure
//! (default `hash`). `--pipeline` toggles the merge-pass dependency-DAG
//! pipeline (default `on`; output is bit-for-bit identical either way)
//! and `--pipeline-threads` bounds its workers (default `0` = host
//! parallelism; the engine caps at the machine's cores). Without `-o` the
//! merged SBML goes to stdout; without `--log` the decision log
//! (duplicates, mappings, renames, conflicts) goes to stderr.
//!
//! Exit status: 0 on success (for `check`: property satisfied; for `diff`:
//! equivalent), 1 on failure / unsatisfied / different, 2 on usage errors.
//!
//! [`Composer::prepare`]: sbmlcompose::compose::Composer::prepare
//! [`CompositionSession`]: sbmlcompose::compose::CompositionSession
//! [`MatchIndex`]: sbmlcompose::matching::MatchIndex

use std::fs;
use std::process::ExitCode;

use sbmlcompose::compose::{ComposeOptions, Composer, IndexKind, SemanticsLevel};
use sbmlcompose::mc2::{check_probability, Formula};
use sbmlcompose::model::{parse_sbml, validate, write_sbml, Model, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match command.as_str() {
        "compose" => cmd_compose(rest),
        "match" | "query" => cmd_match(rest),
        "split" => cmd_split(rest),
        "zoom" => cmd_zoom(rest),
        "validate" => cmd_validate(rest),
        "simulate" => cmd_simulate(rest),
        "check" => cmd_check(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    }
}

fn print_usage() {
    eprintln!(
        "sbmlcompose — biochemical network matching and composition (EDBT 2010)\n\
         \n\
         usage:\n\
         \x20 sbmlcompose compose  <a.xml> <b.xml> [<c.xml>...] [-o merged.xml] [--log log.txt]\n\
         \x20                      [--semantics heavy|light|none] [--index hash|btree|linear]\n\
         \x20                      [--pipeline on|off] [--pipeline-threads N]\n\
         \x20        composes two or more models left to right (first file is the base).\n\
         \x20        3+ files are analysed once each (prepared models) and folded through\n\
         \x20        one composition session; output is identical to the pairwise fold.\n\
         \x20        -o: merged SBML (default stdout); --log: decision log (default stderr)\n\
         \x20        --pipeline: merge-pass dependency-DAG pipeline (default on; output\n\
         \x20        identical either way); --pipeline-threads: worker bound (0 = cores)\n\
         \x20 sbmlcompose match    <query.xml> <corpus.xml>... [--semantics heavy|light|none]\n\
         \x20                      [--top K] [--threads N]\n\
         \x20        (alias: query) searches the corpus for the query subnetwork: exact\n\
         \x20        embeddings are reported with their species/reaction mappings; when\n\
         \x20        none exists the top K (default 10) approximate matches are ranked\n\
         \x20        by content-key Jaccard + mapped fraction. --threads bounds the\n\
         \x20        parallel corpus search (0 = cores). exit 0 iff an exact hit exists\n\
         \x20 sbmlcompose split    <model.xml> [-o prefix]\n\
         \x20 sbmlcompose zoom     <model.xml> --seed <ids> [--radius N] [-o out.xml]\n\
         \x20 sbmlcompose validate <model.xml>\n\
         \x20 sbmlcompose simulate <model.xml> [--t-end T] [--dt DT] [-o trace.csv]\n\
         \x20 sbmlcompose check    <model.xml> --property '<PLTL>' [--runs N] [--t-end T] [--theta P]\n\
         \x20 sbmlcompose diff     <a.xml> <b.xml>"
    );
}

/// Pull `--flag value` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn load_model(path: &str) -> Result<Model, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_sbml(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compose(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "-o");
    let log_path = take_flag(&mut args, "--log");
    let semantics = match take_flag(&mut args, "--semantics").as_deref() {
        None | Some("heavy") => SemanticsLevel::Heavy,
        Some("light") => SemanticsLevel::Light,
        Some("none") => SemanticsLevel::None,
        Some(other) => return Err(format!("unknown semantics level {other:?}")),
    };
    let index = match take_flag(&mut args, "--index").as_deref() {
        None | Some("hash") => IndexKind::HashMap,
        Some("btree") => IndexKind::BTree,
        Some("linear") => IndexKind::LinearScan,
        Some(other) => return Err(format!("unknown index kind {other:?}")),
    };
    let merge_pipeline = match take_flag(&mut args, "--pipeline").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--pipeline takes on|off, not {other:?}")),
    };
    let pipeline_threads = match take_flag(&mut args, "--pipeline-threads") {
        None => 0,
        Some(v) => v.parse::<usize>().map_err(|_| format!("bad --pipeline-threads {v:?}"))?,
    };
    if args.len() < 2 {
        return Err("compose needs at least two input files".to_owned());
    }

    let models = args.iter().map(|path| load_model(path)).collect::<Result<Vec<_>, _>>()?;
    let mut options = match semantics {
        SemanticsLevel::Heavy => ComposeOptions::heavy(),
        SemanticsLevel::Light => ComposeOptions::light(),
        SemanticsLevel::None => ComposeOptions::none(),
    };
    options.index = index;
    options.merge_pipeline = merge_pipeline;
    options.pipeline_threads = pipeline_threads;
    let composer = Composer::new(options);
    let result = if let [a, b] = models.as_slice() {
        // One-shot pair: no reuse to amortise a preparation over.
        composer.compose(a, b)
    } else {
        // Longer chains run through one session over prepared models, so
        // no step re-derives a model's analysis.
        let prepared: Vec<_> = models.iter().map(|m| composer.prepare(m)).collect();
        sbmlcompose::compose::compose_many_prepared(&composer, &prepared)
    };

    let xml = write_sbml(&result.model);
    let chain = models.iter().map(|m| m.id.as_str()).collect::<Vec<_>>().join(" + ");
    match out {
        Some(path) => {
            fs::write(&path, xml).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "composed {} -> {} ({} species, {} reactions; {})",
                chain,
                path,
                result.model.species.len(),
                result.model.reactions.len(),
                result.log.stats()
            );
        }
        None => println!("{xml}"),
    }
    match log_path {
        Some(path) => {
            fs::write(&path, result.log.to_text())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        None => eprint!("{}", result.log.to_text()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_match(args: &[String]) -> Result<ExitCode, String> {
    use sbmlcompose::compose::{BatchComposer, Composer as MatchComposer};
    use sbmlcompose::matching::MatchIndex;

    let mut args = args.to_vec();
    let semantics = match take_flag(&mut args, "--semantics").as_deref() {
        None | Some("heavy") => SemanticsLevel::Heavy,
        Some("light") => SemanticsLevel::Light,
        Some("none") => SemanticsLevel::None,
        Some(other) => return Err(format!("unknown semantics level {other:?}")),
    };
    let top: usize = take_flag(&mut args, "--top")
        .map(|v| v.parse().map_err(|_| format!("bad --top {v:?}")))
        .transpose()?
        .unwrap_or(10);
    let threads: usize = take_flag(&mut args, "--threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads {v:?}")))
        .transpose()?
        .unwrap_or(0);
    if args.len() < 2 {
        return Err("match needs a query file and at least one corpus file".to_owned());
    }
    let query = load_model(&args[0])?;
    let corpus_paths = &args[1..];
    let corpus =
        corpus_paths.iter().map(|path| load_model(path)).collect::<Result<Vec<_>, _>>()?;

    let options = match semantics {
        SemanticsLevel::Heavy => ComposeOptions::heavy(),
        SemanticsLevel::Light => ComposeOptions::light(),
        SemanticsLevel::None => ComposeOptions::none(),
    };
    let batch = BatchComposer::new(MatchComposer::new(options.clone())).with_threads(threads);
    let prepared = batch.prepare_corpus(&corpus);
    let index = MatchIndex::build_with_threads(prepared, &options, threads).with_top_k(top);
    let result = index.query_corpus(&query);

    eprintln!(
        "query {} ({} species, {} reactions) against {} corpus model(s): {} candidate(s)",
        query.id,
        query.species.len(),
        query.reactions.len(),
        corpus.len(),
        result.candidates.len()
    );
    if result.exact.is_empty() {
        println!("no exact embedding found");
        if result.approximate.is_empty() {
            println!("no approximate match shares any key with the query");
        }
        for hit in &result.approximate {
            println!(
                "approx {} ({}): score {:.3} (jaccard {:.3}, mapped {:.3})",
                corpus_paths[hit.model],
                corpus[hit.model].id,
                hit.score,
                hit.jaccard,
                hit.mapped_fraction
            );
        }
        return Ok(ExitCode::FAILURE);
    }
    for hit in &result.exact {
        let species = hit
            .embedding
            .species
            .iter()
            .map(|(q, t)| format!("{q}->{t}"))
            .collect::<Vec<_>>()
            .join(", ");
        let reactions = hit
            .embedding
            .reactions
            .iter()
            .map(|(q, t)| format!("{q}->{t}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "exact {} ({}): species [{species}] reactions [{reactions}]",
            corpus_paths[hit.model], corpus[hit.model].id
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_split(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let prefix = take_flag(&mut args, "-o").unwrap_or_else(|| "part".to_owned());
    let [path] = args.as_slice() else {
        return Err("split needs exactly one input file".to_owned());
    };
    let model = load_model(path)?;
    let parts = sbmlcompose::compose::split_components(&model);
    eprintln!("{} component(s)", parts.len());
    for (i, part) in parts.iter().enumerate() {
        let out = format!("{prefix}_{i}.xml");
        fs::write(&out, write_sbml(part)).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("  {out}: {} species, {} reactions", part.species.len(), part.reactions.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_zoom(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let seeds_raw =
        take_flag(&mut args, "--seed").ok_or("zoom needs --seed <species>[,<species>...]")?;
    let radius: usize = take_flag(&mut args, "--radius")
        .map(|r| r.parse().map_err(|_| format!("bad radius {r:?}")))
        .transpose()?
        .unwrap_or(1);
    let out = take_flag(&mut args, "-o");
    let [path] = args.as_slice() else {
        return Err("zoom needs exactly one input file".to_owned());
    };
    let model = load_model(path)?;
    let seeds: Vec<&str> = seeds_raw.split(',').map(str::trim).collect();
    let sub = sbmlcompose::compose::extract_submodel(&model, &seeds, radius);
    eprintln!(
        "zoom radius {radius} around {:?}: {} species, {} reactions",
        seeds,
        sub.species.len(),
        sub.reactions.len()
    );
    let xml = write_sbml(&sub);
    match out {
        Some(p) => fs::write(&p, xml).map_err(|e| format!("cannot write {p}: {e}"))?,
        None => println!("{xml}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("validate needs exactly one input file".to_owned());
    };
    let model = load_model(path)?;
    let issues = validate(&model);
    for issue in &issues {
        println!("{issue}");
    }
    let errors = issues.iter().filter(|i| i.severity == Severity::Error).count();
    println!(
        "{}: {} error(s), {} warning(s)",
        path,
        errors,
        issues.len() - errors
    );
    Ok(if errors == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_simulate(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let t_end: f64 = take_flag(&mut args, "--t-end")
        .map(|v| v.parse().map_err(|_| format!("bad --t-end {v:?}")))
        .transpose()?
        .unwrap_or(10.0);
    let dt: f64 = take_flag(&mut args, "--dt")
        .map(|v| v.parse().map_err(|_| format!("bad --dt {v:?}")))
        .transpose()?
        .unwrap_or(0.01);
    let out = take_flag(&mut args, "-o");
    let [path] = args.as_slice() else {
        return Err("simulate needs exactly one input file".to_owned());
    };
    let model = load_model(path)?;
    let trace = sbmlcompose::sim::ode::simulate_rk4(&model, t_end, dt)
        .map_err(|e| format!("simulation failed: {e}"))?;
    let csv = trace.to_csv();
    match out {
        Some(p) => {
            fs::write(&p, csv).map_err(|e| format!("cannot write {p}: {e}"))?;
            eprintln!("{} samples x {} species -> {}", trace.len(), trace.species.len(), p);
        }
        None => print!("{csv}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let property = take_flag(&mut args, "--property").ok_or("check needs --property '<PLTL>'")?;
    let runs: usize = take_flag(&mut args, "--runs")
        .map(|v| v.parse().map_err(|_| format!("bad --runs {v:?}")))
        .transpose()?
        .unwrap_or(50);
    let t_end: f64 = take_flag(&mut args, "--t-end")
        .map(|v| v.parse().map_err(|_| format!("bad --t-end {v:?}")))
        .transpose()?
        .unwrap_or(10.0);
    let theta: f64 = take_flag(&mut args, "--theta")
        .map(|v| v.parse().map_err(|_| format!("bad --theta {v:?}")))
        .transpose()?
        .unwrap_or(0.95);
    let [path] = args.as_slice() else {
        return Err("check needs exactly one input file".to_owned());
    };
    let model = load_model(path)?;
    let phi = Formula::parse(&property).map_err(|e| format!("bad property: {e}"))?;
    let verdict = check_probability(&model, &phi, runs, t_end, theta)?;
    println!(
        "P({property}) ≈ {:.3} (95% CI {:.3}–{:.3}, {}/{} runs) vs θ={theta} → {}",
        verdict.estimate,
        verdict.interval.0,
        verdict.interval.1,
        verdict.satisfying,
        verdict.runs,
        if verdict.satisfied { "SATISFIED" } else { "VIOLATED" }
    );
    Ok(if verdict.satisfied { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let [a_path, b_path] = args else {
        return Err("diff needs exactly two input files".to_owned());
    };
    let a = fs::read_to_string(a_path).map_err(|e| format!("cannot read {a_path}: {e}"))?;
    let b = fs::read_to_string(b_path).map_err(|e| format!("cannot read {b_path}: {e}"))?;
    let equivalent =
        sbmlcompose::textdiff::sbml_equivalent(&a, &b).map_err(|e| e.to_string())?;
    if equivalent {
        println!("equivalent (under SBML ordering rules)");
        Ok(ExitCode::SUCCESS)
    } else {
        print!("{}", sbmlcompose::textdiff::sbml_text_diff(&a, &b).map_err(|e| e.to_string())?);
        Ok(ExitCode::FAILURE)
    }
}
