//! # sbmlcompose
//!
//! A Rust reproduction of **"Biochemical network matching and composition"**
//! (Goodfellow, Wilson & Hunt, EDBT 2010): automated, unsupervised merging
//! of SBML biochemical network models, plus every substrate the paper's
//! system and evaluation depend on.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`xml`] | `sbml-xml` | from-scratch XML parser/serializer |
//! | [`math`] | `sbml-math` | MathML AST, Fig. 7 commutative patterns, evaluator |
//! | [`units`] | `sbml-units` | unit signatures, Fig. 6 mole↔molecule conversion |
//! | [`model`] | `sbml-model` | the SBML data model, validation, builder |
//! | [`synonyms`] | `bio-synonyms` | local synonym tables |
//! | [`graph`] | `bio-graph` | generic labelled graphs, no/light-semantics composition |
//! | [`compose`] | `sbml-compose` | **SBMLCompose** — the paper's contribution |
//! | [`matching`] | `sbml-match` | subnetwork matching & corpus query engine |
//! | [`serve`] | `sbml-serve` | corpus snapshots + long-running match/compose daemon |
//! | [`cluster`] | `sbml-cluster` | shard daemons + scatter-gather coordinator |
//! | [`baseline`] | `semantic-baseline` | simulated semanticSBML comparator |
//! | [`sim`] | `bio-sim` | ODE (RK4/RKF45) and Gillespie SSA simulation |
//! | [`mc2`] | `mc2` | Monte-Carlo PLTL model checker (§4.1.4) |
//! | [`corpus`] | `biomodels-corpus` | deterministic 187+17 model corpora |
//! | [`textdiff`] | `textdiff` | diff/patch and §4.1.1 SBML textual comparison |
//!
//! ## Quick start
//!
//! ```
//! use sbmlcompose::compose::{ComposeOptions, Composer};
//! use sbmlcompose::model::builder::ModelBuilder;
//!
//! let glycolysis_fragment = ModelBuilder::new("m1")
//!     .compartment("cell", 1.0)
//!     .species_named("glc", "glucose", 10.0)
//!     .species("G6P", 0.0)
//!     .parameter("k_hex", 0.4)
//!     .reaction("hexokinase", &["glc"], &["G6P"], "k_hex*glc")
//!     .build();
//! let uptake_fragment = ModelBuilder::new("m2")
//!     .compartment("cell", 1.0)
//!     .species_named("sugar", "dextrose", 10.0) // synonym of glucose!
//!     .parameter("k_in", 0.1)
//!     .reaction("import", &[], &["sugar"], "k_in")
//!     .build();
//!
//! let merged = Composer::new(ComposeOptions::default())
//!     .compose(&glycolysis_fragment, &uptake_fragment);
//! assert_eq!(merged.model.species.len(), 2, "glucose and dextrose unified");
//! ```
//!
//! ## Chain composition with a session
//!
//! Folding more than two models goes through one
//! [`CompositionSession`](crate::compose::CompositionSession): the
//! accumulator's indexes, content keys and initial values are maintained
//! in place across pushes (never re-derived per step), and the result is
//! bit-for-bit what a pairwise fold would produce:
//!
//! ```
//! use sbmlcompose::compose::{ComposeOptions, CompositionSession};
//! use sbmlcompose::model::builder::ModelBuilder;
//!
//! let pathway: Vec<_> = ["uptake", "glycolysis", "tca"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, stage)| {
//!         ModelBuilder::new(*stage)
//!             .compartment("cell", 1.0)
//!             .species(&format!("S{i}"), i as f64)      // stage input
//!             .species(&format!("S{}", i + 1), 0.0)     // stage output
//!             .parameter(&format!("k{i}"), 0.1)
//!             .reaction(
//!                 &format!("r{i}"),
//!                 &[format!("S{i}").as_str()],
//!                 &[format!("S{}", i + 1).as_str()],
//!                 &format!("k{i}*S{i}"),
//!             )
//!             .build()
//!     })
//!     .collect();
//!
//! let options = ComposeOptions::default();
//! let mut session = CompositionSession::new(&options);
//! for stage in &pathway {
//!     session.push(stage);
//! }
//! assert_eq!(session.pushes(), 3);
//! // Each stage's product is the next stage's substrate — shared, not duplicated.
//! assert_eq!(session.model().species.len(), 4); // S0..S3
//! let result = session.finish();
//! assert_eq!(result.model.id, "uptake", "first model is the base");
//! assert_eq!(result.model.reactions.len(), 3);
//! ```
//!
//! ## Command line
//!
//! The `sbmlcompose` binary (this crate's `src/bin/sbmlcompose.rs`)
//! exposes the engine; `sbmlcompose --help` lists every command. The
//! `compose` command chains **two or more** files left to right —
//! three-plus files are prepared once each and folded through a single
//! session, the prepared-model path from PR 2:
//!
//! ```text
//! sbmlcompose compose a.xml b.xml c.xml -o merged.xml --log merge.log \
//!             [--semantics heavy|light|none] [--index hash|btree|linear]
//! ```
//!
//! `split`, `zoom`, `validate`, `simulate`, `check` and `diff` cover
//! decomposition, submodel extraction, validation, ODE simulation,
//! Monte-Carlo PLTL checking and §4.1.1 textual comparison; see the
//! [`compose`] crate docs (section *Command-line interface*) for the full
//! reference.

pub use bio_graph as graph;
pub use bio_sim as sim;
pub use bio_synonyms as synonyms;
pub use biomodels_corpus as corpus;
pub use mc2;
pub use sbml_cluster as cluster;
pub use sbml_compose as compose;
pub use sbml_match as matching;
pub use sbml_math as math;
pub use sbml_model as model;
pub use sbml_serve as serve;
pub use sbml_units as units;
pub use sbml_xml as xml;
pub use semantic_baseline as baseline;
pub use textdiff;
