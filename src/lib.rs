//! # sbmlcompose
//!
//! A Rust reproduction of **"Biochemical network matching and composition"**
//! (Goodfellow, Wilson & Hunt, EDBT 2010): automated, unsupervised merging
//! of SBML biochemical network models, plus every substrate the paper's
//! system and evaluation depend on.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`xml`] | `sbml-xml` | from-scratch XML parser/serializer |
//! | [`math`] | `sbml-math` | MathML AST, Fig. 7 commutative patterns, evaluator |
//! | [`units`] | `sbml-units` | unit signatures, Fig. 6 mole↔molecule conversion |
//! | [`model`] | `sbml-model` | the SBML data model, validation, builder |
//! | [`synonyms`] | `bio-synonyms` | local synonym tables |
//! | [`graph`] | `bio-graph` | generic labelled graphs, no/light-semantics composition |
//! | [`compose`] | `sbml-compose` | **SBMLCompose** — the paper's contribution |
//! | [`baseline`] | `semantic-baseline` | simulated semanticSBML comparator |
//! | [`sim`] | `bio-sim` | ODE (RK4/RKF45) and Gillespie SSA simulation |
//! | [`mc2`] | `mc2` | Monte-Carlo PLTL model checker (§4.1.4) |
//! | [`corpus`] | `biomodels-corpus` | deterministic 187+17 model corpora |
//! | [`textdiff`] | `textdiff` | diff/patch and §4.1.1 SBML textual comparison |
//!
//! ## Quick start
//!
//! ```
//! use sbmlcompose::compose::{ComposeOptions, Composer};
//! use sbmlcompose::model::builder::ModelBuilder;
//!
//! let glycolysis_fragment = ModelBuilder::new("m1")
//!     .compartment("cell", 1.0)
//!     .species_named("glc", "glucose", 10.0)
//!     .species("G6P", 0.0)
//!     .parameter("k_hex", 0.4)
//!     .reaction("hexokinase", &["glc"], &["G6P"], "k_hex*glc")
//!     .build();
//! let uptake_fragment = ModelBuilder::new("m2")
//!     .compartment("cell", 1.0)
//!     .species_named("sugar", "dextrose", 10.0) // synonym of glucose!
//!     .parameter("k_in", 0.1)
//!     .reaction("import", &[], &["sugar"], "k_in")
//!     .build();
//!
//! let merged = Composer::new(ComposeOptions::default())
//!     .compose(&glycolysis_fragment, &uptake_fragment);
//! assert_eq!(merged.model.species.len(), 2, "glucose and dextrose unified");
//! ```

pub use bio_graph as graph;
pub use bio_sim as sim;
pub use bio_synonyms as synonyms;
pub use biomodels_corpus as corpus;
pub use mc2;
pub use sbml_compose as compose;
pub use sbml_math as math;
pub use sbml_model as model;
pub use sbml_units as units;
pub use sbml_xml as xml;
pub use semantic_baseline as baseline;
pub use textdiff;
