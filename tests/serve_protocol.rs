//! End-to-end daemon tests: a real `Server` on an ephemeral port,
//! concurrent clients, and the contract that a served answer is
//! bit-identical to the one-shot engine's answer for the same request.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::thread;

use sbmlcompose::compose::{
    BatchComposer, ComposeOptions, Composer, CompositionSession, PreparedModel,
};
use sbmlcompose::corpus::{corpus_slice, query_fragment};
use sbmlcompose::matching::MatchIndex;
use sbmlcompose::model::{write_sbml, Model};
use sbmlcompose::serve::{format_matches, Client, ErrKind, Request, Response, Server, ServerConfig};

fn corpus_and_index(options: &ComposeOptions) -> (Vec<Model>, Vec<Arc<PreparedModel>>, MatchIndex) {
    let models = corpus_slice(60..68);
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let index = MatchIndex::build(&prepared, options);
    (models, prepared, index)
}

/// Bind a server on an ephemeral port, run it on a background thread,
/// and hand back its address plus the join handle.
fn start(config: ServerConfig) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let options = ComposeOptions::heavy();
    let (_, _, index) = corpus_and_index(&options);
    let server =
        Server::bind("127.0.0.1:0", index, options, config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shut_down(addr: std::net::SocketAddr, handle: thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    match client.roundtrip(&Request::Shutdown).expect("shutdown roundtrip") {
        Response::Ok { code: 0, .. } => {}
        other => panic!("shutdown not acknowledged: {other:?}"),
    }
    handle.join().expect("server thread exits after SHUTDOWN");
}

#[test]
fn concurrent_match_answers_are_bit_identical_to_one_shot() {
    let options = ComposeOptions::heavy();
    let (models, prepared, _) = corpus_and_index(&options);
    // The reference: a freshly built index rendered through the shared
    // formatter — exactly what `sbmlcompose match` prints (modulo its
    // file-path labels; the daemon labels by model id on both slots).
    let reference = MatchIndex::build(&prepared, &options);
    let ids: Vec<String> = models.iter().map(|m| m.id.clone()).collect();

    let (addr, handle) = start(ServerConfig { threads: 3, ..ServerConfig::default() });
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let ids = ids.clone();
            let queries: Vec<Model> = (0..3)
                .map(|i| query_fragment(&models[(w * 3 + i) % models.len()], i, 1 + i % 2))
                .collect();
            let expected: Vec<(u8, String)> = queries
                .iter()
                .map(|q| format_matches(&reference.query_corpus(q), &ids, &ids))
                .collect();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (q, (want_code, want_text)) in queries.iter().zip(&expected) {
                    let request = Request::Match { query_xml: write_sbml(q) };
                    match client.roundtrip(&request).expect("roundtrip") {
                        Response::Ok { code, body } => {
                            assert_eq!(code, *want_code, "worker {w}: exit code");
                            assert_eq!(
                                body,
                                want_text.as_bytes(),
                                "worker {w}: daemon answer must be bit-identical"
                            );
                        }
                        Response::Err { kind, message } => {
                            panic!("worker {w}: unexpected error {kind:?}: {message}")
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client worker");
    }
    shut_down(addr, handle);
}

#[test]
fn cache_hits_return_the_exact_bytes_of_the_first_answer() {
    let (addr, handle) = start(ServerConfig::default());
    let models = corpus_slice(60..68);
    let query = query_fragment(&models[2], 0, 1);
    let request = Request::Match { query_xml: write_sbml(&query) };
    // Same network, different spelling: model ids don't enter content
    // keys, so this must land on the same cache entry.
    let mut respelled = query.clone();
    respelled.id = "different_spelling".into();
    let respelled = Request::Match { query_xml: write_sbml(&respelled) };

    let mut client = Client::connect(addr).expect("connect");
    let first = client.roundtrip_raw(&request).expect("miss");
    let second = client.roundtrip_raw(&request).expect("hit");
    let third = client.roundtrip_raw(&respelled).expect("respelled hit");
    assert_eq!(first, second, "a cache hit must be byte-for-byte the first answer");
    assert_eq!(first, third, "content-key identity must see through the respelling");

    match client.roundtrip(&Request::Stats).expect("stats") {
        Response::Ok { code: 0, body } => {
            let text = String::from_utf8(body).expect("stats are utf-8");
            assert!(text.contains("cache_hits 2\n"), "stats: {text}");
            assert!(text.contains("cache_misses 1\n"), "stats: {text}");
            assert!(text.contains("cache_entries 1\n"), "one entry serves all three: {text}");
            assert!(text.contains("match 3\n"), "stats: {text}");
            assert!(text.contains("models 8\n"), "stats: {text}");
        }
        other => panic!("stats failed: {other:?}"),
    }
    shut_down(addr, handle);
}

#[test]
fn upsert_and_remove_mutate_the_live_index_without_a_restart() {
    let (addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let newcomer = corpus_slice(58..59).remove(0);
    let id = newcomer.id.clone();
    let match_whole = Request::Match { query_xml: write_sbml(&newcomer) };

    let body_of = |response: Response| -> String {
        match response {
            Response::Ok { body, .. } => String::from_utf8(body).expect("utf-8 body"),
            other => panic!("expected OK, got {other:?}"),
        }
    };

    // Before the upsert the model is not in the corpus.
    let before = body_of(client.roundtrip(&match_whole).expect("match before"));
    assert!(!before.contains(&id), "not served yet: {before}");

    // UPSERT inserts; the very next MATCH sees it — no rebuild, no
    // restart, and the stale cached answer is gone.
    let upsert = Request::Upsert { model_xml: write_sbml(&newcomer), slot: None };
    let inserted = body_of(client.roundtrip(&upsert).expect("upsert"));
    assert!(inserted.starts_with("inserted "), "first upsert inserts: {inserted}");
    let after = body_of(client.roundtrip(&match_whole).expect("match after"));
    assert!(after.contains(&id), "served immediately after UPSERT: {after}");

    // A second UPSERT of the same SBML id replaces, not duplicates.
    let replaced = body_of(client.roundtrip(&upsert).expect("re-upsert"));
    assert!(replaced.starts_with("replaced "), "same id replaces: {replaced}");

    match client.roundtrip(&Request::Stats).expect("stats") {
        Response::Ok { code: 0, body } => {
            let text = String::from_utf8(body).expect("stats are utf-8");
            assert!(text.contains("upsert 2\n"), "stats: {text}");
            assert!(text.contains("live_models 9\n"), "stats: {text}");
            assert!(text.contains("tombstoned_models 1\n"), "replace tombstones: {text}");
            assert!(text.contains("index_generation "), "stats: {text}");
            assert!(text.contains("shards 1\n"), "stats: {text}");
        }
        other => panic!("stats failed: {other:?}"),
    }

    // REMOVE tombstones it; answers revert at once.
    let removed = body_of(client.roundtrip(&Request::Remove { model_id: id.clone() }).expect("remove"));
    assert_eq!(removed, format!("removed {id}\n"));
    let gone = body_of(client.roundtrip(&match_whole).expect("match after remove"));
    assert!(!gone.contains(&id), "gone after REMOVE: {gone}");

    // Removing a missing id is a miss (code 1), not an error.
    match client.roundtrip(&Request::Remove { model_id: id.clone() }).expect("re-remove") {
        Response::Ok { code: 1, body } => {
            assert_eq!(String::from_utf8_lossy(&body), format!("no such model {id}\n"));
        }
        other => panic!("expected a miss, got {other:?}"),
    }
    shut_down(addr, handle);
}

#[test]
fn compose_through_the_daemon_matches_a_local_session() {
    let options = ComposeOptions::heavy();
    let models = corpus_slice(60..68);
    let mut session = CompositionSession::new(&options);
    session.push(&models[0]);
    session.push(&models[1]);
    let expected = write_sbml(&session.finish().model);

    let (addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let request = Request::Compose {
        models_xml: vec![write_sbml(&models[0]), write_sbml(&models[1])],
    };
    match client.roundtrip(&request).expect("compose") {
        Response::Ok { code: 0, body } => {
            assert_eq!(body, expected.as_bytes(), "daemon compose must equal the local session");
        }
        other => panic!("compose failed: {other:?}"),
    }
    shut_down(addr, handle);
}

#[test]
fn hostile_requests_get_structured_errors_and_the_daemon_keeps_serving() {
    // A budget of zero steps: every COMPOSE push is cut immediately.
    let config = ServerConfig { max_steps: Some(0), ..ServerConfig::default() };
    let (addr, handle) = start(config);
    let models = corpus_slice(60..68);
    let mut client = Client::connect(addr).expect("connect");

    let hostile = Request::Compose {
        models_xml: vec![write_sbml(&models[0]), write_sbml(&models[1])],
    };
    match client.roundtrip(&hostile).expect("hostile compose") {
        Response::Err { kind: ErrKind::Budget, message } => {
            assert!(!message.is_empty(), "budget errors carry a diagnostic");
        }
        other => panic!("expected ERR budget, got {other:?}"),
    }

    // Unparseable SBML → ERR parse (maps to the CLI's exit 3).
    let garbage = Request::Match { query_xml: "<sbml><model".into() };
    match client.roundtrip(&garbage).expect("garbage match") {
        Response::Err { kind: ErrKind::Parse, .. } => {}
        other => panic!("expected ERR parse, got {other:?}"),
    }
    assert_eq!(ErrKind::Parse.exit_code(), 3);
    assert_eq!(ErrKind::Budget.exit_code(), 4);
    assert_eq!(ErrKind::Proto.exit_code(), 2);

    // A MATCH under a zero budget is a *partial* answer (code 4), not a
    // protocol error — candidates exist but none can be refined.
    let query = query_fragment(&models[0], 0, 1);
    match client.roundtrip(&Request::Match { query_xml: write_sbml(&query) }).expect("match") {
        Response::Ok { code: 4, body } => {
            let text = String::from_utf8(body).expect("utf-8");
            assert!(text.contains("truncated"), "body: {text}");
        }
        other => panic!("expected a partial answer, got {other:?}"),
    }

    // After all of that, the daemon still answers: fault isolation held.
    match client.roundtrip(&Request::Stats).expect("stats after faults") {
        Response::Ok { code: 0, body } => {
            let text = String::from_utf8(body).expect("utf-8");
            assert!(text.contains("budget_cuts 2\n"), "stats: {text}");
            assert!(text.contains("errors 1\n"), "stats: {text}");
        }
        other => panic!("stats failed: {other:?}"),
    }
    shut_down(addr, handle);
}

/// `Threads:` line of `/proc/<pid>/status` — the kernel's thread count
/// for the daemon process.
#[cfg(target_os = "linux")]
fn process_threads(pid: u32) -> usize {
    let status =
        std::fs::read_to_string(format!("/proc/{pid}/status")).expect("read /proc status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .map(|v| v.trim().parse().expect("numeric thread count"))
        .expect("Threads: line present")
}

/// The serving shape the worker pool exists for: one hot snapshot, many
/// COMPOSE requests. Every answer — sequential or concurrent — must be
/// bit-identical to a local one-shot session, and the daemon's kernel
/// thread count must be flat across requests: the pool is spawned once
/// at bind, so serving must not create (or leak) a single thread per
/// request the way per-push scoped spawns would.
#[test]
#[cfg(target_os = "linux")]
fn hot_snapshot_compose_is_bit_identical_with_a_flat_thread_count() {
    let options = ComposeOptions::heavy();
    let models = corpus_slice(60..66);
    let dir = std::env::temp_dir().join(format!("sbmlserve_pool_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus_dir = dir.join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("scratch dir");
    for model in &models {
        std::fs::write(corpus_dir.join(format!("{}.xml", model.id)), write_sbml(model))
            .expect("write corpus model");
    }
    let snap = dir.join("corpus.snap");
    let bin = env!("CARGO_BIN_EXE_sbmlcompose");
    let built = Command::new(bin)
        .args(["snapshot", "build", &corpus_dir.to_string_lossy(), "-o", &snap.to_string_lossy()])
        .output()
        .expect("snapshot build");
    assert!(built.status.success(), "stderr: {}", String::from_utf8_lossy(&built.stderr));

    let mut daemon = Command::new(bin)
        .args(["serve", &snap.to_string_lossy(), "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut announced = String::new();
    BufReader::new(daemon.stdout.take().expect("daemon stdout"))
        .read_line(&mut announced)
        .expect("read address line");
    let addr: std::net::SocketAddr = announced
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announcement: {announced:?}"))
        .parse()
        .expect("announced address parses");
    let pid = daemon.id();

    // Local one-shot reference per pair.
    let reference = |i: usize, j: usize| {
        let mut session = CompositionSession::new(&options);
        session.push(&models[i]);
        session.push(&models[j]);
        write_sbml(&session.finish().model)
    };
    let pairs: Vec<(usize, usize)> = (0..models.len())
        .flat_map(|i| (i + 1..models.len()).map(move |j| (i, j)))
        .collect();
    let compose = |client: &mut Client, i: usize, j: usize| -> Vec<u8> {
        let request = Request::Compose {
            models_xml: vec![write_sbml(&models[i]), write_sbml(&models[j])],
        };
        match client.roundtrip(&request).expect("compose roundtrip") {
            Response::Ok { code: 0, body } => body,
            other => panic!("compose ({i},{j}) failed: {other:?}"),
        }
    };

    // Warm-up: first request takes the connection and any lazy setup.
    let mut client = Client::connect(addr).expect("connect");
    let (i0, j0) = pairs[0];
    assert_eq!(compose(&mut client, i0, j0), reference(i0, j0).as_bytes());
    let baseline = process_threads(pid);

    // Sequential phase: the count must not move between requests.
    for &(i, j) in pairs.iter().take(10) {
        assert_eq!(
            compose(&mut client, i, j),
            reference(i, j).as_bytes(),
            "sequential COMPOSE ({i},{j}) must equal the local session"
        );
        assert_eq!(
            process_threads(pid),
            baseline,
            "COMPOSE ({i},{j}) changed the daemon's thread count"
        );
    }

    // Concurrent phase: several connections at once, every answer still
    // bit-identical, and afterwards the count is back at the baseline —
    // no per-request or per-connection thread survives.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let pairs = pairs.clone();
            let expected: Vec<(usize, usize, String)> = (0..3)
                .map(|r| {
                    let (i, j) = pairs[(w * 3 + r) % pairs.len()];
                    (i, j, reference(i, j))
                })
                .collect();
            let models = models.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, j, want) in &expected {
                    let request = Request::Compose {
                        models_xml: vec![write_sbml(&models[*i]), write_sbml(&models[*j])],
                    };
                    match client.roundtrip(&request).expect("compose roundtrip") {
                        Response::Ok { code: 0, body } => {
                            assert_eq!(
                                body,
                                want.as_bytes(),
                                "worker {w}: concurrent COMPOSE ({i},{j})"
                            );
                        }
                        other => panic!("worker {w}: compose failed: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client worker");
    }
    assert_eq!(process_threads(pid), baseline, "concurrent load must not leak threads");

    let down = Command::new(bin)
        .args(["client", &addr.to_string(), "shutdown"])
        .output()
        .expect("client shutdown");
    assert!(down.status.success());
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_snapshot_serve_client_pipeline_round_trips() {
    let options = ComposeOptions::heavy();
    let models = corpus_slice(60..65);
    let dir = std::env::temp_dir().join(format!("sbmlserve_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // The corpus lives in its own subdirectory: `snapshot build` sweeps
    // every `.xml` in the directory it is pointed at, and the query file
    // must not be swept up with the corpus.
    let corpus_dir = dir.join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("scratch dir");
    for model in &models {
        std::fs::write(corpus_dir.join(format!("{}.xml", model.id)), write_sbml(model))
            .expect("write corpus model");
    }
    let snap = dir.join("corpus.snap");
    let query = query_fragment(&models[1], 0, 1);
    let query_path = dir.join("query.xml");
    std::fs::write(&query_path, write_sbml(&query)).expect("write query");

    let bin = env!("CARGO_BIN_EXE_sbmlcompose");
    let built = Command::new(bin)
        .args(["snapshot", "build", &corpus_dir.to_string_lossy(), "-o", &snap.to_string_lossy()])
        .output()
        .expect("snapshot build");
    assert!(built.status.success(), "stderr: {}", String::from_utf8_lossy(&built.stderr));

    let inspect = Command::new(bin)
        .args(["snapshot", "inspect", &snap.to_string_lossy()])
        .output()
        .expect("snapshot inspect");
    assert!(inspect.status.success());
    let info = String::from_utf8_lossy(&inspect.stdout);
    assert!(info.contains("version 2\n"), "inspect: {info}");
    assert!(info.contains("semantics heavy\n"), "inspect: {info}");
    assert!(info.contains("models 5\n"), "inspect: {info}");
    assert!(info.contains("shards 1\n"), "inspect: {info}");
    assert!(
        info.contains("shard 0 generation 5 live 5 dead 0 tombstone_fraction 0.000"),
        "inspect per-shard stats: {info}"
    );

    // Corrupt file → exit 3, structured diagnostic.
    let bad = dir.join("bad.snap");
    std::fs::write(&bad, b"SBMLSNAPgarbage").expect("write bad snapshot");
    let corrupt = Command::new(bin)
        .args(["snapshot", "inspect", &bad.to_string_lossy()])
        .output()
        .expect("inspect corrupt");
    assert_eq!(corrupt.status.code(), Some(3), "corrupt snapshots exit 3");

    // Serve the snapshot on an ephemeral port; the first stdout line
    // announces the bound address.
    let mut daemon = Command::new(bin)
        .args(["serve", &snap.to_string_lossy(), "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut announced = String::new();
    BufReader::new(daemon.stdout.take().expect("daemon stdout"))
        .read_line(&mut announced)
        .expect("read address line");
    let addr = announced
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announcement: {announced:?}"))
        .to_owned();

    // The daemon's answer must match the engine run in-process over the
    // same corpus (labels are model ids on both slots).
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let index = MatchIndex::build(&prepared, &options);
    let ids: Vec<String> = models.iter().map(|m| m.id.clone()).collect();
    let (want_code, want_text) = format_matches(&index.query_corpus(&query), &ids, &ids);

    let answer = Command::new(bin)
        .args(["client", &addr, "match", &query_path.to_string_lossy()])
        .output()
        .expect("client match");
    assert_eq!(answer.status.code(), Some(i32::from(want_code)), "client forwards the code");
    assert_eq!(
        String::from_utf8_lossy(&answer.stdout),
        want_text,
        "served answer equals the one-shot engine's"
    );

    let stats = Command::new(bin)
        .args(["client", &addr, "stats"])
        .output()
        .expect("client stats");
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("requests "), "stats body");

    let down = Command::new(bin)
        .args(["client", &addr, "shutdown"])
        .output()
        .expect("client shutdown");
    assert!(down.status.success());
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
