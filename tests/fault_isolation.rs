//! Deterministic fault-injection suite (tentpole of the robustness PR):
//! every injected fault must surface as a structured [`ExecError`] at the
//! site it was injected, survivors must be bit-identical to a fault-free
//! run, and the degradation ladder's serial fallback must reproduce the
//! pipelined result.
//!
//! Compiled only with the `fault-injection` feature (`ci.sh` runs
//! `cargo test --features fault-injection --test fault_isolation`); the
//! armed fail points live behind [`guard::fail_point`]. Plans are armed
//! through a global serial lock, so these tests never contaminate each
//! other even under the parallel test runner.

#![cfg(feature = "fault-injection")]

use sbmlcompose::compose::guard::injection::{with_plan, FailPlan, INJECTED};
use sbmlcompose::compose::{
    BatchComposer, Budget, ComposeOptions, Composer, CompositionSession, ExecError, ItemOutcome,
    Site,
};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{write_sbml, Model};

/// A linear pathway with `n` reactions over distinctly-named species;
/// `tag` keeps two chains overlapping but not identical.
fn chain(id: &str, tag: &str, n: usize) -> Model {
    let mut b = ModelBuilder::new(id).compartment("cell", 1.0);
    for i in 0..=n {
        b = b.species(&format!("S{tag}{i}"), i as f64);
    }
    for i in 0..n {
        b = b.parameter(&format!("k{tag}{i}"), 0.1 * (i + 1) as f64).reaction(
            &format!("r{tag}{i}"),
            &[&format!("S{tag}{i}")],
            &[&format!("S{tag}{}", i + 1)],
            &format!("k{tag}{i} * S{tag}{i}"),
        );
    }
    b.build()
}

/// A [`chain`] extended with every remaining component kind (functions,
/// units, types, initial assignments, rules, constraints, events). The
/// pipeline pre-marks a pass whose kind is absent from the incoming model
/// as done without running it, so a pushed model must populate all twelve
/// kinds for all twelve `Site::Pass` fail points to be reachable.
fn rich(id: &str, tag: &str, n: usize) -> Model {
    use sbmlcompose::units::{Unit, UnitDefinition, UnitKind};
    let mut b = ModelBuilder::new(id)
        .function(&format!("f{tag}"), &["x"], "x + 1")
        .unit_definition(UnitDefinition::new(
            format!("per_s_{tag}"),
            vec![Unit::of(UnitKind::Second).pow(-1)],
        ))
        .compartment_type(&format!("ct{tag}"))
        .species_type(&format!("st{tag}"))
        .compartment("cell", 1.0);
    for i in 0..=n {
        b = b.species(&format!("S{tag}{i}"), i as f64);
    }
    for i in 0..n {
        b = b.parameter(&format!("k{tag}{i}"), 0.1 * (i + 1) as f64).reaction(
            &format!("r{tag}{i}"),
            &[&format!("S{tag}{i}")],
            &[&format!("S{tag}{}", i + 1)],
            &format!("k{tag}{i} * S{tag}{i}"),
        );
    }
    b.initial_assignment(&format!("S{tag}0"), "1 + 1")
        .rate_rule(&format!("S{tag}1"), &format!("k{tag}0 * S{tag}0"))
        .constraint(&format!("S{tag}0 > 0"), None)
        .event(
            &format!("e{tag}"),
            &format!("S{tag}0 > 5"),
            &[(&format!("S{tag}1"), "0")],
        )
        .build()
}

/// Options that force the pipelined DAG executor on for every push, so
/// the `Site::Pass` fail points are actually reached.
fn pipelined_options() -> ComposeOptions {
    ComposeOptions::default()
        .with_parallel_push_threshold(1)
        .with_merge_pipeline(true)
        .with_pipeline_threads(2)
}

/// The merged output of a fault-free guarded two-model composition.
fn fault_free_reference(options: &ComposeOptions, a: &Model, b: &Model) -> (String, String) {
    let mut session = CompositionSession::new(options);
    session.push_guarded(a, None).expect("fault-free push");
    let outcome = session.push_guarded(b, None).expect("fault-free push");
    assert_eq!(outcome.degraded, None, "no fault, no degradation");
    let result = session.finish();
    (write_sbml(&result.model), result.log.to_text())
}

#[test]
fn injected_pass_fault_degrades_to_identical_serial_result() {
    let options = pipelined_options();
    let a = rich("a", "x", 6);
    let b = rich("b", "x", 9);
    let (want_xml, want_log) = fault_free_reference(&options, &a, &b);

    // Every one of the twelve merge passes is a containment boundary.
    for pass in 0..12 {
        let plan = FailPlan::new().fail_at(Site::Pass(pass));
        let (xml, log, outcome) = with_plan(plan, || {
            let mut session = CompositionSession::new(&options);
            session.push_guarded(&a, None).expect("first push adopts the base");
            let outcome = session.push_guarded(&b, None).expect("degraded, not failed");
            let result = session.finish();
            (write_sbml(&result.model), result.log.to_text(), outcome)
        });
        match outcome.degraded {
            Some(ExecError::Panicked { site, ref detail }) => {
                assert_eq!(site, Site::Pass(pass), "fault attributed to the injected site");
                assert!(detail.contains(INJECTED), "payload preserved: {detail}");
            }
            other => panic!("pass {pass}: expected a contained panic, got {other:?}"),
        }
        assert_eq!(xml, want_xml, "pass {pass}: serial fallback must reproduce the result");
        assert_eq!(log, want_log, "pass {pass}: decision log identical too");
    }
}

#[test]
fn pass_and_push_fault_fails_push_and_leaves_accumulator_intact() {
    let options = pipelined_options();
    let a = rich("a", "x", 6);
    let b = rich("b", "x", 9);

    // Base-only reference: what the session must still hold after the
    // second push fails on *both* rungs of the ladder.
    let base_only = {
        let mut session = CompositionSession::new(&options);
        session.push_guarded(&a, None).expect("push");
        let result = session.finish();
        (write_sbml(&result.model), result.log.to_text())
    };

    // Fail the pipelined attempt (any pass) and the serial retry (the
    // push-level fail point) — the whole push must error out.
    let plan = FailPlan::new().fail_at(Site::Pass(3)).fail_at(Site::Push(1));
    let (xml, log, err) = with_plan(plan, || {
        let mut session = CompositionSession::new(&options);
        session.push_guarded(&a, None).expect("first push adopts the base");
        let err = session.push_guarded(&b, None).expect_err("both rungs fail");
        let result = session.finish();
        (write_sbml(&result.model), result.log.to_text(), err)
    });
    match err {
        ExecError::Panicked { site, ref detail } => {
            assert_eq!(site, Site::Push(1), "attributed to the failed push");
            assert!(detail.contains(INJECTED), "{detail}");
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert_eq!(xml, base_only.0, "failed push must not change the accumulator");
    assert_eq!(log, base_only.1, "failed push must not leak log events");
}

#[test]
fn session_survives_a_failed_push_and_accepts_the_next() {
    let options = pipelined_options();
    let a = rich("a", "x", 6);
    let b = rich("b", "x", 9);

    let mut session = CompositionSession::new(&options);
    session.push_guarded(&a, None).expect("push");
    let plan = FailPlan::new().fail_at(Site::Pass(0)).fail_at(Site::Push(1));
    with_plan(plan, || {
        session.push_guarded(&b, None).expect_err("both rungs fail");
    });
    // Disarmed again: the same push now succeeds cleanly.
    let outcome = session.push_guarded(&b, None).expect("push after rollback");
    assert_eq!(outcome.degraded, None);
    let merged = session.finish().model;
    assert!(merged.species.len() >= b.species.len(), "second model actually merged");
}

#[test]
fn batch_shard_fault_is_contained_to_its_item() {
    let options = ComposeOptions::default();
    let batch = BatchComposer::new(Composer::new(options));
    let models: Vec<Model> =
        (0..5).map(|i| chain(&format!("m{i}"), "x", 3 + i)).collect();
    let prepared = batch.prepare_corpus(&models);
    let want = batch.all_pairs(&prepared); // 10 pairs, fault-free

    let faulty = 4; // pair ordinal, deterministic: (0,1)..(0,4),(1,2)..
    let report = with_plan(FailPlan::new().fail_at(Site::Shard(faulty)), || {
        batch.try_all_pairs(&prepared, &Budget::unlimited())
    });
    assert_eq!(report.items.len(), want.len());
    assert_eq!(report.failed_count(), 1, "exactly the faulted item failed");
    for (k, (item, want)) in report.items.iter().zip(&want).enumerate() {
        if k == faulty {
            match item {
                ItemOutcome::Failed(ExecError::Panicked { site, detail }) => {
                    assert_eq!(*site, Site::Shard(faulty));
                    assert!(detail.contains(INJECTED), "{detail}");
                }
                other => panic!("item {k}: expected a contained panic, got {other:?}"),
            }
        } else {
            assert_eq!(item, &ItemOutcome::Ok(want.clone()), "survivor {k} bit-identical");
        }
    }
}

#[test]
fn batch_step_budget_cuts_a_deterministic_suffix() {
    let options = ComposeOptions::default();
    let models: Vec<Model> =
        (0..6).map(|i| chain(&format!("m{i}"), "x", 4)).collect();
    // Allow exactly the first two items' worth of component steps.
    let allowance: u64 =
        models.iter().take(2).map(|m| m.component_count() as u64).sum();
    let budget = Budget::unlimited().with_max_steps(allowance);

    // Which items get cut must not depend on the worker count: the step
    // gate is a prefix sum over item order, not a race.
    let mut reports = Vec::new();
    for threads in [1, 4] {
        let batch = BatchComposer::new(Composer::new(options.clone())).with_threads(threads);
        let prepared = batch.prepare_corpus(&models);
        let report =
            batch.try_map_corpus(&prepared, &budget, |_, p| p.model().species.len());
        for (k, item) in report.items.iter().enumerate() {
            if k < 2 {
                assert!(item.is_ok(), "threads={threads}: item {k} fits the allowance");
            } else {
                match item {
                    ItemOutcome::Failed(ExecError::StepsExhausted { site, limit }) => {
                        assert_eq!(*site, Site::Shard(k));
                        assert_eq!(*limit, allowance);
                    }
                    other => panic!("threads={threads}, item {k}: {other:?}"),
                }
            }
        }
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "outcome pattern is schedule-independent");
}

#[test]
fn zero_deadline_fails_every_batch_item() {
    let options = ComposeOptions::default();
    let batch = BatchComposer::new(Composer::new(options));
    let models: Vec<Model> = (0..4).map(|i| chain(&format!("m{i}"), "x", 3)).collect();
    let prepared = batch.prepare_corpus(&models);
    let report = batch.try_map_corpus(
        &prepared,
        &Budget::unlimited().with_deadline_ms(0),
        |_, p| p.model().species.len(),
    );
    assert_eq!(report.ok_count(), 0);
    for (k, item) in report.items.iter().enumerate() {
        match item {
            ItemOutcome::Failed(ExecError::DeadlineExceeded { site, .. }) => {
                assert_eq!(*site, Site::Shard(k));
            }
            other => panic!("item {k}: {other:?}"),
        }
    }
}

#[test]
fn cow_failed_push_leaves_shared_base_unmaterialised() {
    use std::sync::Arc;

    let options = pipelined_options();
    let composer = Composer::new(options.clone());
    let base = rich("base", "x", 8);
    let prepared_base = Arc::new(composer.prepare(&base));
    let base_xml = write_sbml(prepared_base.model());
    let incoming = rich("b", "y", 6);

    // Fail every one of the twelve pass boundaries (pipelined rung), plus
    // the serial retry, while the accumulator still *is* the shared base.
    for pass in 0..12 {
        let mut session =
            CompositionSession::with_shared_base(&options, Arc::clone(&prepared_base));
        assert!(session.is_base_shared());
        let arcs_before = Arc::strong_count(&prepared_base);

        let plan = FailPlan::new().fail_at(Site::Pass(pass)).fail_at(Site::Push(0));
        let err = with_plan(plan, || {
            session.push_guarded(&incoming, None).expect_err("both rungs fail")
        });
        assert!(matches!(err, ExecError::Panicked { site: Site::Push(0), .. }), "{err:?}");

        // Rollback must re-adopt the base wholesale: no kind left
        // materialised, no extra Arc handle leaked, accumulator
        // byte-identical, log empty.
        assert!(session.is_base_shared(), "pass {pass}: base must stay shared");
        assert_eq!(Arc::strong_count(&prepared_base), arcs_before, "pass {pass}");
        assert_eq!(write_sbml(session.model()), base_xml, "pass {pass}");
        assert!(session.log().events.is_empty(), "pass {pass}");
    }
}

#[test]
fn cow_session_interleaved_entrypoints_under_faults_match_fault_free() {
    use std::sync::Arc;

    let options = pipelined_options();
    let composer = Composer::new(options.clone());
    let base = rich("base", "x", 8);
    let prepared_base = Arc::new(composer.prepare(&base));
    // A strict subset of the base: absorbed without materialising.
    let dup = composer.prepare(&rich("dup", "x", 5));
    // Overlapping but not contained: materialises when merged.
    let overlap = rich("ov", "x", 10);
    let stranger = rich("st", "z", 4);

    // Reference: the same interleaving without the doomed push.
    let want = {
        let mut session =
            CompositionSession::with_shared_base(&options, Arc::clone(&prepared_base));
        session.push_prepared(&dup);
        session.push(&stranger);
        session.push_guarded(&overlap, None).expect("fault-free");
        let result = session.finish();
        (write_sbml(&result.model), result.log.to_text())
    };

    for pass in 0..12 {
        let mut session =
            CompositionSession::with_shared_base(&options, Arc::clone(&prepared_base));
        // Duplicate-only prepared push: still zero-copy afterwards.
        session.push_prepared(&dup);
        assert!(session.is_base_shared(), "pass {pass}: duplicates must not materialise");

        // Guarded push faulted on both rungs: rolls back to the shared
        // base (the only push so far was absorbed, so the at-rest state
        // is Shared and rollback must restore exactly that).
        let plan = FailPlan::new().fail_at(Site::Pass(pass)).fail_at(Site::Push(1));
        with_plan(plan, || {
            session.push_guarded(&stranger, None).expect_err("both rungs fail");
        });
        assert!(session.is_base_shared(), "pass {pass}: rollback keeps the base shared");

        // Disarmed: the rest of the interleaving must land bit-identical
        // to the fault-free reference.
        session.push(&stranger);
        session.push_guarded(&overlap, None).expect("disarmed");
        assert!(!session.is_base_shared(), "pass {pass}: overlap materialises");
        let result = session.finish();
        assert_eq!(write_sbml(&result.model), want.0, "pass {pass}");
        assert_eq!(result.log.to_text(), want.1, "pass {pass}");
    }
}

#[test]
fn query_fault_is_contained_per_candidate() {
    use sbmlcompose::matching::MatchIndex;

    let options = ComposeOptions::default();
    let corpus: Vec<Model> = vec![
        chain("c0", "x", 6), // embeds the query
        chain("c1", "y", 4), // disjoint species: pruned from candidates
        chain("c2", "x", 9), // embeds the query
    ];
    let query = chain("q", "x", 3);
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&corpus);
    let index = MatchIndex::build(&prepared, &options);

    let clean = index.query_corpus(&query);
    let clean_hits: Vec<usize> = clean.exact.iter().map(|h| h.model).collect();
    assert_eq!(clean_hits, vec![0, 2], "fixture sanity");
    assert!(clean.failed.is_empty() && clean.truncated.is_empty());

    // Fail candidate ordinal 1 (= corpus model 2). The other candidate's
    // verdict and witness must be exactly the fault-free ones.
    let faulted = with_plan(FailPlan::new().fail_at(Site::Query(1)), || {
        index.query_corpus(&query)
    });
    assert_eq!(faulted.candidates, clean.candidates);
    assert_eq!(faulted.failed, vec![2], "the faulted candidate is reported");
    assert!(faulted.truncated.is_empty());
    let faulted_hits: Vec<usize> = faulted.exact.iter().map(|h| h.model).collect();
    assert_eq!(faulted_hits, vec![0]);
    assert_eq!(faulted.exact[0], clean.exact[0], "survivor embedding bit-identical");
}
