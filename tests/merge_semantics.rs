//! Workspace-level integration tests: the paper's Figures 1–3 merge
//! semantics exercised through the public facade, with XML round trips,
//! graph extraction agreement, and §4.1.1 textual verification.

use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::graph::{compose as graph_compose, species_reaction_graph, NoSemantics};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::Model;
use sbmlcompose::textdiff::sbml_equivalent;

fn fig1a() -> Model {
    ModelBuilder::new("fig1a")
        .compartment("cell", 1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.05)
        .parameter("k3", 0.02)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .build()
}

#[test]
fn figure1_self_composition_is_identity_textually() {
    let a = fig1a();
    let result = Composer::new(ComposeOptions::default()).compose(&a, &a);
    // a + a = a, down to the serialized SBML (§4.1.1 check).
    let original = sbmlcompose::model::write_sbml(&a);
    let composed = sbmlcompose::model::write_sbml(&result.model);
    assert!(sbml_equivalent(&original, &composed).unwrap());
}

#[test]
fn figure2_disjoint_union_through_xml() {
    // Feed the composer from *parsed SBML text*, not in-memory models —
    // the paper's actual input path.
    let m1_xml = sbmlcompose::model::write_sbml(&fig1a());
    let m2 = ModelBuilder::new("de")
        .compartment("cell", 1.0)
        .species("D", 5.0)
        .species("E", 0.0)
        .parameter("k4", 0.3)
        .reaction("r4", &["D"], &["E"], "k4*D")
        .build();
    let m2_xml = sbmlcompose::model::write_sbml(&m2);

    let a = sbmlcompose::model::parse_sbml(&m1_xml).unwrap();
    let b = sbmlcompose::model::parse_sbml(&m2_xml).unwrap();
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    assert_eq!(result.model.species.len(), 5);
    assert_eq!(result.model.reactions.len(), 4);
    assert_eq!(result.model.compartments.len(), 1);
}

#[test]
fn figure3_overlap_agrees_with_graph_composition() {
    // The SBML merge and the generic graph composition must agree on the
    // composed network shape for id-matched models.
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .species("D", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.2)
        .parameter("k3", 0.3)
        .parameter("k4", 0.4)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .reaction("r4", &["C"], &["D"], "k4*C")
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.2)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .build();

    let sbml_result = Composer::new(ComposeOptions::default()).compose(&m1, &m2);
    let sbml_graph = species_reaction_graph(&sbml_result.model);

    let (generic_graph, _) =
        graph_compose(&species_reaction_graph(&m1), &species_reaction_graph(&m2), &NoSemantics);

    assert_eq!(sbml_graph.node_count(), generic_graph.node_count());
    assert_eq!(sbml_graph.edge_count(), generic_graph.edge_count());
    assert_eq!(sbml_graph.node_count(), 4);
    assert_eq!(sbml_graph.edge_count(), 4);
}

#[test]
fn merge_is_usable_downstream_after_many_compositions() {
    // Chain ten overlapping fragments and confirm the result still parses,
    // validates, simulates and checks.
    let composer = Composer::new(ComposeOptions::default());
    let mut acc = fig1a();
    for i in 0..10 {
        let fresh = ModelBuilder::new(format!("frag{i}"))
            .compartment("cell", 1.0)
            .species("C", 0.0)
            .species(&format!("X{i}"), 1.0)
            .parameter(&format!("kx{i}"), 0.05)
            .reaction(
                &format!("rx{i}"),
                &["C"],
                &[format!("X{i}").as_str()],
                &format!("kx{i}*C"),
            )
            .build();
        acc = composer.compose(&acc, &fresh).model;
    }
    assert_eq!(acc.species.len(), 13); // A,B,C + X0..X9
    assert_eq!(acc.reactions.len(), 13);

    let issues = sbmlcompose::model::validate(&acc);
    assert!(issues.iter().all(|i| i.severity != sbmlcompose::model::Severity::Error), "{issues:?}");

    let trace = sbmlcompose::sim::ode::simulate_rk4(&acc, 5.0, 0.01).unwrap();
    assert!(trace.final_value("X0").unwrap() > 0.0, "mass flows into the added branches");
}

#[test]
fn log_records_every_decision() {
    let a = fig1a();
    let mut b = fig1a();
    b.parameters[0].value = Some(999.0); // conflict on k1
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    let log = result.log.to_text();
    assert!(log.contains("conflict"), "{log}");
    assert!(log.contains("k1"), "{log}");
    // every one of b's components got a decision
    assert!(result.log.events.len() >= b.component_count());
}
