//! Corrupt-snapshot hardening: *no* sequence of bytes handed to the
//! snapshot loader may panic, abort or allocate absurdly — every
//! truncation, bit flip and hostile length field must come back as a
//! structured [`SnapshotError`]. A daemon loads snapshots from disk at
//! startup; a half-written or bit-rotted file must produce a clean
//! diagnostic, not a crash.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sbmlcompose::compose::{BatchComposer, ComposeOptions, Composer};
use sbmlcompose::corpus::corpus_slice;
use sbmlcompose::matching::MatchIndex;
use sbmlcompose::serve::Snapshot;

/// Deterministic xorshift-style LCG — the mutation schedule must be
/// reproducible across runs (no process-dependent randomness).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn snapshot_bytes() -> (Vec<u8>, ComposeOptions) {
    let options = ComposeOptions::heavy();
    let models = corpus_slice(60..66);
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    // Shard the index: corruption must surface cleanly in the per-shard
    // header entries and section payloads too, not just a monolith.
    let index = MatchIndex::build(&prepared, &options).with_shards(3);
    (Snapshot::encode(&index, &options), options)
}

/// Feed `bytes` through every decode entry point; the only acceptable
/// outcomes are `Ok` (a benign mutation) or a structured error.
fn must_not_panic(bytes: &[u8], options: &ComposeOptions, what: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = Snapshot::inspect_bytes(bytes);
        let _ = Snapshot::load_bytes(bytes, options, 1);
    }));
    assert!(result.is_ok(), "decoder panicked on {what}");
}

#[test]
fn every_truncation_yields_a_structured_error() {
    let (bytes, options) = snapshot_bytes();
    // Every prefix through the header and section table, then stepped
    // cuts through the payload (every length would be quadratic in the
    // snapshot size for no extra coverage).
    let dense_prefix = 256.min(bytes.len());
    let mut cuts: Vec<usize> = (0..dense_prefix).collect();
    cuts.extend((dense_prefix..bytes.len()).step_by(37));
    for len in cuts {
        let cut = &bytes[..len];
        must_not_panic(cut, &options, &format!("truncation to {len} bytes"));
        assert!(
            Snapshot::load_bytes(cut, &options, 1).is_err(),
            "a snapshot cut to {len}/{} bytes cannot load successfully",
            bytes.len()
        );
    }
}

#[test]
fn random_byte_flips_never_panic() {
    let (bytes, options) = snapshot_bytes();
    let mut rng = Lcg(0x5eed_cafe);
    for round in 0..300 {
        let mut mutated = bytes.clone();
        // 1–4 independent single-byte corruptions per round.
        let flips = 1 + (rng.next() as usize % 4);
        for _ in 0..flips {
            let at = rng.next() as usize % mutated.len();
            let bit = 1u8 << (rng.next() % 8);
            mutated[at] ^= bit;
        }
        must_not_panic(&mutated, &options, &format!("bit-flip round {round}"));
    }
}

#[test]
fn hostile_length_fields_cannot_cause_huge_allocations() {
    let (bytes, options) = snapshot_bytes();
    let mut rng = Lcg(0xdead_2bad);
    // Overwrite 4- and 8-byte windows with all-ones and huge values:
    // every count and section length the format declares must be capped
    // against the bytes actually present before anything allocates.
    for round in 0..200 {
        let mut mutated = bytes.clone();
        let at = rng.next() as usize % mutated.len().saturating_sub(8);
        let value: u64 = match round % 3 {
            0 => u64::MAX,
            1 => u64::from(u32::MAX),
            _ => rng.next() | (1 << 40),
        };
        let width = if round % 2 == 0 { 8 } else { 4 };
        mutated[at..at + width].copy_from_slice(&value.to_le_bytes()[..width]);
        must_not_panic(&mutated, &options, &format!("length-bomb round {round} at {at}"));
    }
}

#[test]
fn garbage_and_empty_inputs_error_cleanly() {
    let (_, options) = snapshot_bytes();
    must_not_panic(&[], &options, "empty input");
    assert!(Snapshot::load_bytes(&[], &options, 1).is_err());

    let mut rng = Lcg(42);
    for len in [1usize, 7, 8, 9, 64, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        must_not_panic(&garbage, &options, &format!("{len} bytes of garbage"));
        assert!(Snapshot::load_bytes(&garbage, &options, 1).is_err());
    }
}
