//! Snapshot round-trip fidelity: write → load must yield bit-identical
//! match, query and compose results at every semantics level — a loaded
//! corpus is the *same* corpus, not a re-derived approximation.

use std::sync::Arc;

use sbmlcompose::compose::{
    BatchComposer, ComposeOptions, Composer, CompositionSession, PreparedModel, SemanticsLevel,
};
use sbmlcompose::corpus::{corpus_slice, query_fragment, synonym_variant};
use sbmlcompose::matching::MatchIndex;
use sbmlcompose::model::{write_sbml, Model};
use sbmlcompose::serve::{format_matches, preset_options, Snapshot, SnapshotError};

const LEVELS: [SemanticsLevel; 3] =
    [SemanticsLevel::Heavy, SemanticsLevel::Light, SemanticsLevel::None];

fn build(options: &ComposeOptions, models: &[Model]) -> (Vec<Arc<PreparedModel>>, MatchIndex) {
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(models);
    let index = MatchIndex::build(&prepared, options);
    (prepared, index)
}

fn queries(models: &[Model]) -> Vec<Model> {
    let mut queries = vec![
        query_fragment(&models[3], 1, 1),
        query_fragment(&models[7], 2, 2),
        synonym_variant(&query_fragment(&models[0], 0, 1)),
        Model::new("unrelated"), // definitive miss
    ];
    // A whole corpus model embeds trivially — the strongest exact hit.
    queries.push(models[5].clone());
    queries
}

#[test]
fn loaded_snapshot_answers_match_queries_bit_identically() {
    let models = corpus_slice(58..70);
    for semantics in LEVELS {
        let options = preset_options(semantics);
        let (prepared, index) = build(&options, &models);
        let ids: Vec<String> = models.iter().map(|m| m.id.clone()).collect();

        let bytes = Snapshot::encode(&index, &options);
        let loaded = Snapshot::load_bytes(&bytes, &options, 0)
            .unwrap_or_else(|e| panic!("{semantics:?}: load failed: {e}"));
        assert_eq!(loaded.corpus.len(), prepared.len());
        assert_eq!(loaded.info.models, prepared.len());
        assert_eq!(loaded.index.posting_stats(), index.posting_stats(), "{semantics:?}");

        for (qi, query) in queries(&models).iter().enumerate() {
            let fresh = format_matches(&index.query_corpus(query), &ids, &ids);
            let reloaded = format_matches(&loaded.index.query_corpus(query), &ids, &ids);
            assert_eq!(fresh, reloaded, "{semantics:?} query {qi}: answers must be bit-identical");
            assert_eq!(
                index.candidates(query),
                loaded.index.candidates(query),
                "{semantics:?} query {qi}: candidate sets must agree"
            );
        }
    }
}

#[test]
fn loaded_prepared_models_compose_bit_identically() {
    let models = corpus_slice(60..66);
    for semantics in LEVELS {
        let options = preset_options(semantics);
        let (prepared, index) = build(&options, &models);
        let bytes = Snapshot::encode(&index, &options);
        let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");

        // Fold the same chain once through the original preparations and
        // once through the reloaded ones.
        let mut fresh = CompositionSession::new(&options);
        for p in &prepared {
            fresh.push_prepared(p);
        }
        let mut reloaded = CompositionSession::new(&options);
        for p in &loaded.corpus {
            reloaded.push_prepared(p);
        }
        assert_eq!(
            write_sbml(&fresh.finish().model),
            write_sbml(&reloaded.finish().model),
            "{semantics:?}: composition through reloaded preparations must be bit-identical"
        );
    }
}

#[test]
fn snapshot_encoding_is_deterministic_and_idempotent() {
    let models = corpus_slice(60..68);
    let options = ComposeOptions::heavy();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);
    assert_eq!(bytes, Snapshot::encode(&index, &options), "same inputs, same bytes");

    // Snapshotting a loaded snapshot reproduces the file exactly: the
    // decode loses nothing the encode needs.
    let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");
    let again = Snapshot::encode(&loaded.index, &loaded.options);
    assert_eq!(bytes, again, "load → encode must be the identity on snapshot bytes");
}

#[test]
fn mutated_sharded_snapshot_round_trips() {
    let models = corpus_slice(58..70);
    let options = ComposeOptions::heavy();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let mut index = MatchIndex::build(&prepared[..8], &options).with_shards(3);
    index.insert(Arc::clone(&prepared[8]));
    index.insert(Arc::clone(&prepared[9]));
    assert!(index.remove(2).is_some());

    let bytes = Snapshot::encode(&index, &options);
    let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");
    assert_eq!(loaded.index.len(), index.len());
    assert_eq!(loaded.index.shard_count(), 3);
    assert_eq!(loaded.index.generation(), index.generation());
    assert_eq!(loaded.index.tombstoned_len(), index.tombstoned_len());
    let ids: Vec<String> = index.corpus().iter().map(|p| p.model().id.clone()).collect();
    for (qi, query) in queries(&models).iter().enumerate() {
        assert_eq!(
            format_matches(&index.query_corpus(query), &ids, &ids),
            format_matches(&loaded.index.query_corpus(query), &ids, &ids),
            "query {qi}: a mutated sharded index must reload bit-identically"
        );
    }
}

#[test]
fn encode_update_reuses_unchanged_shard_sections() {
    let models = corpus_slice(58..68);
    let options = ComposeOptions::heavy();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let mut index = MatchIndex::build(&prepared[..9], &options).with_shards(4);

    let before = Snapshot::encode(&index, &options);
    index.insert(Arc::clone(&prepared[9]));
    let (after, reused) = Snapshot::encode_update(&index, &options, Some(&before));
    assert_eq!(reused, 3, "an insert touches one shard; the other three splice through");
    assert_eq!(
        after,
        Snapshot::encode(&index, &options),
        "shard-section reuse must be byte-transparent"
    );

    // An unreadable previous file disables reuse without corrupting the
    // output — incremental writes always fall back to a full encode.
    let (full, reused) = Snapshot::encode_update(&index, &options, Some(b"not a snapshot"));
    assert_eq!(reused, 0);
    assert_eq!(full, after);
}

#[test]
fn fingerprint_mismatch_is_a_structured_error() {
    let models = corpus_slice(60..64);
    let options = ComposeOptions::heavy();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);

    let wrong = ComposeOptions::light();
    match Snapshot::load_bytes(&bytes, &wrong, 0) {
        Err(SnapshotError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, wrong.fingerprint().stable_hash());
            assert_eq!(found, options.fingerprint().stable_hash());
        }
        Err(other) => panic!("expected FingerprintMismatch, got {other:?}"),
        Ok(_) => panic!("expected FingerprintMismatch, got a successful load"),
    }

    // Same semantics level, different knobs: still a mismatch — the
    // fingerprint covers every option that shapes preparation.
    let mut tweaked = ComposeOptions::heavy();
    tweaked.cache_patterns = !tweaked.cache_patterns;
    assert!(
        matches!(
            Snapshot::load_bytes(&bytes, &tweaked, 0),
            Err(SnapshotError::FingerprintMismatch { .. })
        ),
        "a single toggled option must be rejected"
    );
}

#[test]
fn inspect_reports_the_header_without_decoding() {
    let models = corpus_slice(60..65);
    let options = ComposeOptions::light();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);

    let info = Snapshot::inspect_bytes(&bytes).expect("inspect");
    assert_eq!(info.version, sbmlcompose::serve::FORMAT_VERSION);
    assert_eq!(info.semantics, SemanticsLevel::Light);
    assert_eq!(info.fingerprint, options.fingerprint().stable_hash());
    assert_eq!(info.models, 5);
    assert_eq!(info.generation, index.generation());
    assert_eq!(info.bytes, bytes.len());
    let (nodes, edges, participants) = index.posting_stats();
    assert_eq!(info.node_postings, nodes);
    assert_eq!(info.edge_postings, edges);
    assert_eq!(info.participant_postings, participants);
    assert_eq!(info.shards.len(), 1, "a default build is single-shard");
    assert_eq!(info.shards[0].live, 5);
    assert_eq!(info.shards[0].dead, 0);
    assert_eq!(info.shards[0].tombstone_fraction(), 0.0);
}

/// The two ways to stand up a shard daemon's corpus — carving the
/// in-memory index and slicing the snapshot bytes — must agree exactly:
/// same cluster identity, same local corpus, bit-identical answers.
#[test]
fn load_shard_matches_the_in_memory_carve() {
    let models = corpus_slice(58..70);
    let options = ComposeOptions::heavy();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let mut index = MatchIndex::build_sharded(&prepared, &options, 0, 3);
    // A tombstone keeps the slot universe honest: slots are never
    // reused, so universe stays at 12 while only 11 models live.
    index.remove(4);
    let bytes = Snapshot::encode(&index, &options);

    for shard in 0..3 {
        let carved = sbmlcompose::cluster::carve(&index, &options, 0, shard)
            .unwrap_or_else(|e| panic!("carve shard {shard}: {e}"));
        let loaded = Snapshot::load_shard_bytes(&bytes, &options, 0, shard, 3)
            .unwrap_or_else(|e| panic!("load shard {shard}: {e}"));
        let (local, identity) = carved;
        let cluster = loaded.cluster.unwrap_or_else(|| panic!("shard {shard} identity"));
        assert_eq!(cluster.shard, shard);
        assert_eq!(cluster.shards, 3);
        assert_eq!(cluster.universe, identity.universe, "slot universe agrees");
        assert_eq!(
            cluster.global_slots(&loaded.index),
            identity.global_slots,
            "shard {shard}: global slot maps agree"
        );
        assert_eq!(loaded.index.len(), local.len(), "shard {shard}: corpus size");
        let ids: Vec<String> =
            loaded.index.corpus().iter().map(|p| p.model().id.clone()).collect();
        let carved_ids: Vec<String> =
            local.corpus().iter().map(|p| p.model().id.clone()).collect();
        assert_eq!(ids, carved_ids, "shard {shard}: same models in the same order");
        for (qi, query) in queries(&models).iter().enumerate() {
            assert_eq!(
                format_matches(&loaded.index.query_corpus(query), &ids, &ids),
                format_matches(&local.query_corpus(query), &ids, &ids),
                "shard {shard} query {qi}: answers must be bit-identical"
            );
        }
    }
    // Out-of-range and mismatched widths are structured errors, not
    // silently empty shards.
    assert!(Snapshot::load_shard_bytes(&bytes, &options, 0, 3, 3).is_err());
    assert!(Snapshot::load_shard_bytes(&bytes, &options, 0, 0, 2).is_err());
}

/// `split` emits one self-contained snapshot per shard: each loads on
/// its own, remembers its place in the cluster, and together they cover
/// the corpus exactly once.
#[test]
fn split_files_load_standalone_and_partition_the_corpus() {
    let models = corpus_slice(58..68);
    let options = ComposeOptions::light();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let index = MatchIndex::build_sharded(&prepared, &options, 0, 4);
    let bytes = Snapshot::encode(&index, &options);

    let parts = Snapshot::split_bytes(&bytes).expect("split");
    assert_eq!(parts.len(), 4, "one file per physical shard");
    let mut seen: Vec<String> = Vec::new();
    for (shard, part) in parts.iter().enumerate() {
        let info = Snapshot::cluster_info_bytes(part)
            .expect("readable part")
            .unwrap_or_else(|| panic!("part {shard} must carry its identity"));
        assert_eq!((info.shard, info.shards, info.universe), (shard, 4, 10));
        let loaded = Snapshot::load_bytes(part, &options, 0)
            .unwrap_or_else(|e| panic!("part {shard}: {e}"));
        assert_eq!(loaded.cluster, Some(info), "identity survives the load");
        for p in loaded.index.corpus() {
            seen.push(p.model().id.clone());
        }
        // Every model in this part belongs to this residue class.
        for (rank, p) in loaded.index.corpus().iter().enumerate() {
            let global = info.global_slot(rank as u32) as usize;
            assert_eq!(global % 4, shard, "{} owned by the wrong shard", p.model().id);
        }
    }
    seen.sort();
    let mut all: Vec<String> = models.iter().map(|m| m.id.clone()).collect();
    all.sort();
    assert_eq!(seen, all, "the parts partition the corpus exactly");

    // A full snapshot has no cluster identity to report.
    assert_eq!(Snapshot::cluster_info_bytes(&bytes).expect("readable"), None);
}
