//! Snapshot round-trip fidelity: write → load must yield bit-identical
//! match, query and compose results at every semantics level — a loaded
//! corpus is the *same* corpus, not a re-derived approximation.

use std::sync::Arc;

use sbmlcompose::compose::{
    BatchComposer, ComposeOptions, Composer, CompositionSession, PreparedModel, SemanticsLevel,
};
use sbmlcompose::corpus::{corpus_slice, query_fragment, synonym_variant};
use sbmlcompose::matching::MatchIndex;
use sbmlcompose::model::{write_sbml, Model};
use sbmlcompose::serve::{format_matches, preset_options, Snapshot, SnapshotError};

const LEVELS: [SemanticsLevel; 3] =
    [SemanticsLevel::Heavy, SemanticsLevel::Light, SemanticsLevel::None];

fn build(options: &ComposeOptions, models: &[Model]) -> (Vec<Arc<PreparedModel>>, MatchIndex) {
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(models);
    let index = MatchIndex::build(&prepared, options);
    (prepared, index)
}

fn queries(models: &[Model]) -> Vec<Model> {
    let mut queries = vec![
        query_fragment(&models[3], 1, 1),
        query_fragment(&models[7], 2, 2),
        synonym_variant(&query_fragment(&models[0], 0, 1)),
        Model::new("unrelated"), // definitive miss
    ];
    // A whole corpus model embeds trivially — the strongest exact hit.
    queries.push(models[5].clone());
    queries
}

#[test]
fn loaded_snapshot_answers_match_queries_bit_identically() {
    let models = corpus_slice(58..70);
    for semantics in LEVELS {
        let options = preset_options(semantics);
        let (prepared, index) = build(&options, &models);
        let ids: Vec<String> = models.iter().map(|m| m.id.clone()).collect();

        let bytes = Snapshot::encode(&index, &options);
        let loaded = Snapshot::load_bytes(&bytes, &options, 0)
            .unwrap_or_else(|e| panic!("{semantics:?}: load failed: {e}"));
        assert_eq!(loaded.corpus.len(), prepared.len());
        assert_eq!(loaded.info.models, prepared.len());
        assert_eq!(loaded.index.posting_stats(), index.posting_stats(), "{semantics:?}");

        for (qi, query) in queries(&models).iter().enumerate() {
            let fresh = format_matches(&index.query_corpus(query), &ids, &ids);
            let reloaded = format_matches(&loaded.index.query_corpus(query), &ids, &ids);
            assert_eq!(fresh, reloaded, "{semantics:?} query {qi}: answers must be bit-identical");
            assert_eq!(
                index.candidates(query),
                loaded.index.candidates(query),
                "{semantics:?} query {qi}: candidate sets must agree"
            );
        }
    }
}

#[test]
fn loaded_prepared_models_compose_bit_identically() {
    let models = corpus_slice(60..66);
    for semantics in LEVELS {
        let options = preset_options(semantics);
        let (prepared, index) = build(&options, &models);
        let bytes = Snapshot::encode(&index, &options);
        let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");

        // Fold the same chain once through the original preparations and
        // once through the reloaded ones.
        let mut fresh = CompositionSession::new(&options);
        for p in &prepared {
            fresh.push_prepared(p);
        }
        let mut reloaded = CompositionSession::new(&options);
        for p in &loaded.corpus {
            reloaded.push_prepared(p);
        }
        assert_eq!(
            write_sbml(&fresh.finish().model),
            write_sbml(&reloaded.finish().model),
            "{semantics:?}: composition through reloaded preparations must be bit-identical"
        );
    }
}

#[test]
fn snapshot_encoding_is_deterministic_and_idempotent() {
    let models = corpus_slice(60..68);
    let options = ComposeOptions::heavy();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);
    assert_eq!(bytes, Snapshot::encode(&index, &options), "same inputs, same bytes");

    // Snapshotting a loaded snapshot reproduces the file exactly: the
    // decode loses nothing the encode needs.
    let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");
    let again = Snapshot::encode(&loaded.index, &loaded.options);
    assert_eq!(bytes, again, "load → encode must be the identity on snapshot bytes");
}

#[test]
fn mutated_sharded_snapshot_round_trips() {
    let models = corpus_slice(58..70);
    let options = ComposeOptions::heavy();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let mut index = MatchIndex::build(&prepared[..8], &options).with_shards(3);
    index.insert(Arc::clone(&prepared[8]));
    index.insert(Arc::clone(&prepared[9]));
    assert!(index.remove(2).is_some());

    let bytes = Snapshot::encode(&index, &options);
    let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("load");
    assert_eq!(loaded.index.len(), index.len());
    assert_eq!(loaded.index.shard_count(), 3);
    assert_eq!(loaded.index.generation(), index.generation());
    assert_eq!(loaded.index.tombstoned_len(), index.tombstoned_len());
    let ids: Vec<String> = index.corpus().iter().map(|p| p.model().id.clone()).collect();
    for (qi, query) in queries(&models).iter().enumerate() {
        assert_eq!(
            format_matches(&index.query_corpus(query), &ids, &ids),
            format_matches(&loaded.index.query_corpus(query), &ids, &ids),
            "query {qi}: a mutated sharded index must reload bit-identically"
        );
    }
}

#[test]
fn encode_update_reuses_unchanged_shard_sections() {
    let models = corpus_slice(58..68);
    let options = ComposeOptions::heavy();
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    let mut index = MatchIndex::build(&prepared[..9], &options).with_shards(4);

    let before = Snapshot::encode(&index, &options);
    index.insert(Arc::clone(&prepared[9]));
    let (after, reused) = Snapshot::encode_update(&index, &options, Some(&before));
    assert_eq!(reused, 3, "an insert touches one shard; the other three splice through");
    assert_eq!(
        after,
        Snapshot::encode(&index, &options),
        "shard-section reuse must be byte-transparent"
    );

    // An unreadable previous file disables reuse without corrupting the
    // output — incremental writes always fall back to a full encode.
    let (full, reused) = Snapshot::encode_update(&index, &options, Some(b"not a snapshot"));
    assert_eq!(reused, 0);
    assert_eq!(full, after);
}

#[test]
fn fingerprint_mismatch_is_a_structured_error() {
    let models = corpus_slice(60..64);
    let options = ComposeOptions::heavy();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);

    let wrong = ComposeOptions::light();
    match Snapshot::load_bytes(&bytes, &wrong, 0) {
        Err(SnapshotError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, wrong.fingerprint().stable_hash());
            assert_eq!(found, options.fingerprint().stable_hash());
        }
        Err(other) => panic!("expected FingerprintMismatch, got {other:?}"),
        Ok(_) => panic!("expected FingerprintMismatch, got a successful load"),
    }

    // Same semantics level, different knobs: still a mismatch — the
    // fingerprint covers every option that shapes preparation.
    let mut tweaked = ComposeOptions::heavy();
    tweaked.cache_patterns = !tweaked.cache_patterns;
    assert!(
        matches!(
            Snapshot::load_bytes(&bytes, &tweaked, 0),
            Err(SnapshotError::FingerprintMismatch { .. })
        ),
        "a single toggled option must be rejected"
    );
}

#[test]
fn inspect_reports_the_header_without_decoding() {
    let models = corpus_slice(60..65);
    let options = ComposeOptions::light();
    let (prepared, index) = build(&options, &models);
    let bytes = Snapshot::encode(&index, &options);

    let info = Snapshot::inspect_bytes(&bytes).expect("inspect");
    assert_eq!(info.version, sbmlcompose::serve::FORMAT_VERSION);
    assert_eq!(info.semantics, SemanticsLevel::Light);
    assert_eq!(info.fingerprint, options.fingerprint().stable_hash());
    assert_eq!(info.models, 5);
    assert_eq!(info.generation, index.generation());
    assert_eq!(info.bytes, bytes.len());
    let (nodes, edges, participants) = index.posting_stats();
    assert_eq!(info.node_postings, nodes);
    assert_eq!(info.edge_postings, edges);
    assert_eq!(info.participant_postings, participants);
    assert_eq!(info.shards.len(), 1, "a default build is single-shard");
    assert_eq!(info.shards[0].live, 5);
    assert_eq!(info.shards[0].dead, 0);
    assert_eq!(info.shards[0].tombstone_fraction(), 0.0);
}
