//! End-to-end pipeline tests: compose → simulate → RSS (§4.1.3) → MC2
//! (§4.1.4), engine agreement with the semanticSBML baseline, and corpus
//! determinism — the full evaluation loop of the paper in one test file.

use sbmlcompose::baseline::SemanticBaseline;
use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::mc2::{check_probability, check_trace, Formula};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::Model;
use sbmlcompose::sim::ode::simulate_rk4;
use sbmlcompose::sim::ssa::simulate_ssa;
use sbmlcompose::sim::trace::rss_aligned;

fn upstream() -> Model {
    ModelBuilder::new("upstream")
        .compartment("cell", 1.0)
        .species("S", 100.0)
        .species("M", 0.0)
        .parameter("k1", 0.2)
        .reaction("step1", &["S"], &["M"], "k1*S")
        .build()
}

fn downstream() -> Model {
    ModelBuilder::new("downstream")
        .compartment("cell", 1.0)
        .species("M", 0.0)
        .species("P", 0.0)
        .parameter("k2", 0.1)
        .reaction("step2", &["M"], &["P"], "k2*M")
        .build()
}

fn hand_written_cascade() -> Model {
    ModelBuilder::new("upstream")
        .compartment("cell", 1.0)
        .species("S", 100.0)
        .species("M", 0.0)
        .species("P", 0.0)
        .parameter("k1", 0.2)
        .parameter("k2", 0.1)
        .reaction("step1", &["S"], &["M"], "k1*S")
        .reaction("step2", &["M"], &["P"], "k2*M")
        .build()
}

#[test]
fn composed_model_simulates_like_hand_written_rss_near_zero() {
    // §4.1.2/§4.1.3: the composed model's trajectories must match the
    // hand-written equivalent with RSS ≈ 0.
    let result = Composer::new(ComposeOptions::default()).compose(&upstream(), &downstream());
    let composed = simulate_rk4(&result.model, 40.0, 0.01).unwrap();
    let expected = simulate_rk4(&hand_written_cascade(), 40.0, 0.01).unwrap();
    let rss = rss_aligned(&expected, &composed).unwrap();
    assert!(rss < 1e-9, "RSS {rss} should be ≈ 0 for identical dynamics");
}

#[test]
fn divergent_merge_detected_by_rss() {
    // A wrong merge (dropped reaction) must show up as RSS >> 0 — the
    // paper's §4.1.3 is a *detector*, so verify it actually detects.
    let result = Composer::new(ComposeOptions::default()).compose(&upstream(), &downstream());
    let mut broken = result.model.clone();
    broken.reactions.pop();
    let good = simulate_rk4(&result.model, 40.0, 0.01).unwrap();
    let bad = simulate_rk4(&broken, 40.0, 0.01).unwrap();
    let rss = rss_aligned(&good, &bad).unwrap();
    assert!(rss > 1.0, "missing reaction must produce large RSS, got {rss}");
}

#[test]
fn mc2_verifies_composed_model_properties() {
    // §4.1.4: temporal properties on the composed model.
    let result = Composer::new(ComposeOptions::default()).compose(&upstream(), &downstream());
    let model = &result.model;

    // Deterministic check on the ODE trace.
    let trace = simulate_rk4(model, 60.0, 0.01).unwrap();
    for (formula, expected) in [
        ("G(S >= 0)", true),
        ("G(S + M + P <= 100.0001)", true), // conservation
        ("F(P > 90)", true),                // almost everything converts
        ("F(P > 101)", false),
        ("(P < 50) U (M > 10)", true),
    ] {
        let phi = Formula::parse(formula).unwrap();
        assert_eq!(check_trace(&trace, &phi).unwrap(), expected, "{formula}");
    }

    // Probabilistic check over SSA runs.
    let phi = Formula::parse("F(P > 80)").unwrap();
    let verdict = check_probability(model, &phi, 20, 60.0, 0.9).unwrap();
    assert!(verdict.satisfied, "{verdict:?}");
}

#[test]
fn ssa_and_ode_agree_on_means_for_composed_model() {
    let result = Composer::new(ComposeOptions::default()).compose(&upstream(), &downstream());
    let ode = simulate_rk4(&result.model, 10.0, 0.01).unwrap();
    let mut p_final = Vec::new();
    for seed in 0..30 {
        let t = simulate_ssa(&result.model, 10.0, 1.0, seed).unwrap();
        p_final.push(t.final_value("P").unwrap());
    }
    let mean: f64 = p_final.iter().sum::<f64>() / p_final.len() as f64;
    let ode_p = ode.final_value("P").unwrap();
    assert!(
        (mean - ode_p).abs() < 10.0,
        "SSA mean {mean} should track ODE {ode_p} for 100-molecule system"
    );
}

#[test]
fn both_engines_agree_on_shape_for_annotated_corpus() {
    // Fig. 9's two engines must produce the same composed *network shape*
    // on the 17-model corpus (id-matched components only there).
    let models = sbmlcompose::corpus::corpus_17();
    let composer = Composer::new(ComposeOptions::default());
    let baseline = SemanticBaseline::default();
    for i in [0usize, 5, 11] {
        for j in [2usize, 8, 16] {
            let ours = composer.compose(&models[i], &models[j]);
            let theirs = baseline.merge(&models[i], &models[j]);
            assert_eq!(
                ours.model.species.len(),
                theirs.model.species.len(),
                "pair ({i},{j}) species"
            );
            assert_eq!(
                ours.model.reactions.len(),
                theirs.model.reactions.len(),
                "pair ({i},{j}) reactions"
            );
        }
    }
}

#[test]
fn corpus_is_deterministic_across_calls() {
    let a = sbmlcompose::corpus::corpus_187();
    let b = sbmlcompose::corpus::corpus_187();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
    // And stable through SBML round trips (what the benches rely on).
    let m = &a[100];
    let xml = sbmlcompose::model::write_sbml(m);
    assert_eq!(&sbmlcompose::model::parse_sbml(&xml).unwrap(), m);
}

#[test]
fn composed_corpus_pair_full_pipeline() {
    // One corpus pair through the entire evaluation pipeline.
    let corpus = sbmlcompose::corpus::corpus_187();
    let (a, b) = (&corpus[40], &corpus[41]);
    let result = Composer::new(ComposeOptions::default()).compose(a, b);

    // valid
    let issues = sbmlcompose::model::validate(&result.model);
    assert!(
        issues.iter().all(|i| i.severity != sbmlcompose::model::Severity::Error),
        "{issues:?}"
    );
    // serializable + reparseable
    let xml = sbmlcompose::model::write_sbml(&result.model);
    let back = sbmlcompose::model::parse_sbml(&xml).unwrap();
    assert_eq!(back, result.model);
    // simulable
    let trace = simulate_rk4(&result.model, 1.0, 0.01).unwrap();
    assert!(trace.len() > 50);
    // checkable: all species non-negative... generated kinetics keep mass
    // positive but reversible laws may transiently undershoot; use a loose
    // invariant that must hold structurally.
    let first = result.model.species.first().unwrap().id.clone();
    let phi = Formula::parse(&format!("F({first} >= 0)")).unwrap();
    assert!(check_trace(&trace, &phi).unwrap());
}

#[test]
fn baseline_reports_annotations_and_passes() {
    let models = sbmlcompose::corpus::corpus_17();
    let r = SemanticBaseline::default().merge(&models[0], &models[1]);
    assert!(r.annotations_resolved > 0, "annotated corpus must resolve in the DB");
    assert_eq!(r.xml_passes, 3, "documented multi-pass behaviour");
}
