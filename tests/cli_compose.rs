//! Integration tests for the `sbmlcompose compose` CLI, including the
//! multi-file chain form (>2 inputs through one prepared-model session).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use sbmlcompose::compose::{compose_many, Composer};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{parse_sbml, write_sbml, Model};

fn chain_model(i: usize) -> Model {
    ModelBuilder::new(format!("part{i}"))
        .compartment("cell", 1.0)
        .species(&format!("S{i}"), i as f64)
        .species(&format!("S{}", i + 1), 0.0)
        .parameter(&format!("k{i}"), 0.1 * (i + 1) as f64)
        .reaction(
            &format!("r{i}"),
            &[format!("S{i}").as_str()],
            &[format!("S{}", i + 1).as_str()],
            &format!("k{i}*S{i}"),
        )
        .build()
}

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sbmlcompose_cli_{tag}_{}_{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "_"),
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_inputs(dir: &std::path::Path, models: &[Model]) -> Vec<String> {
    models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let path = dir.join(format!("in{i}.xml"));
            fs::write(&path, write_sbml(m)).expect("write input model");
            path.to_string_lossy().into_owned()
        })
        .collect()
}

#[test]
fn compose_two_files_matches_library() {
    let dir = scratch("two");
    let models = [chain_model(0), chain_model(1)];
    let inputs = write_inputs(&dir, &models);
    let out = dir.join("merged.xml");
    let log = dir.join("merge.log");

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &out.to_string_lossy(), "--log", &log.to_string_lossy()])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success());

    let merged = parse_sbml(&fs::read_to_string(&out).unwrap()).unwrap();
    let expected = Composer::default().compose(&models[0], &models[1]);
    assert_eq!(merged, expected.model);
    let log_text = fs::read_to_string(&log).unwrap();
    assert_eq!(log_text, expected.log.to_text());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_chains_more_than_two_files() {
    let dir = scratch("chain");
    let models: Vec<Model> = (0..4).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);
    let out = dir.join("merged.xml");

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &out.to_string_lossy(), "--log", &dir.join("m.log").to_string_lossy()])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success());

    let merged = parse_sbml(&fs::read_to_string(&out).unwrap()).unwrap();
    let expected = compose_many(&Composer::default(), &models);
    assert_eq!(merged, expected.model, "CLI chain must equal library compose_many");
    // S0..S4 shared along the chain: 5 species, 4 reactions.
    assert_eq!(merged.species.len(), 5);
    assert_eq!(merged.reactions.len(), 4);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_pipeline_flags_do_not_change_output() {
    // The merge-pass pipeline is an execution detail: --pipeline off and
    // an explicit --pipeline-threads bound must produce byte-identical
    // merged SBML.
    let dir = scratch("pipeline");
    let models: Vec<Model> = (0..3).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);

    let run = |extra: &[&str], out: &std::path::Path| {
        let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
            .arg("compose")
            .args(&inputs)
            .args(["-o", &out.to_string_lossy(), "--log", &dir.join("p.log").to_string_lossy()])
            .args(extra)
            .status()
            .expect("run sbmlcompose");
        assert!(status.success());
        fs::read_to_string(out).expect("read merged output")
    };
    let default = run(&[], &dir.join("default.xml"));
    let off = run(&["--pipeline", "off"], &dir.join("off.xml"));
    let threaded = run(&["--pipeline-threads", "4"], &dir.join("threads.xml"));
    assert_eq!(default, off);
    assert_eq!(default, threaded);

    // Bad values are usage errors.
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["--pipeline", "sideways"])
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(2));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_rejects_single_file() {
    let dir = scratch("single");
    let inputs = write_inputs(&dir, &[chain_model(0)]);
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(2), "usage error expected");
    assert!(String::from_utf8_lossy(&output.stderr).contains("at least two"));
    let _ = fs::remove_dir_all(&dir);
}
