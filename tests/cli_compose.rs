//! Integration tests for the `sbmlcompose compose` CLI, including the
//! multi-file chain form (>2 inputs through one prepared-model session).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use sbmlcompose::compose::{compose_many, Composer};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{parse_sbml, write_sbml, Model};

fn chain_model(i: usize) -> Model {
    ModelBuilder::new(format!("part{i}"))
        .compartment("cell", 1.0)
        .species(&format!("S{i}"), i as f64)
        .species(&format!("S{}", i + 1), 0.0)
        .parameter(&format!("k{i}"), 0.1 * (i + 1) as f64)
        .reaction(
            &format!("r{i}"),
            &[format!("S{i}").as_str()],
            &[format!("S{}", i + 1).as_str()],
            &format!("k{i}*S{i}"),
        )
        .build()
}

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sbmlcompose_cli_{tag}_{}_{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "_"),
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_inputs(dir: &std::path::Path, models: &[Model]) -> Vec<String> {
    models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let path = dir.join(format!("in{i}.xml"));
            fs::write(&path, write_sbml(m)).expect("write input model");
            path.to_string_lossy().into_owned()
        })
        .collect()
}

#[test]
fn compose_two_files_matches_library() {
    let dir = scratch("two");
    let models = [chain_model(0), chain_model(1)];
    let inputs = write_inputs(&dir, &models);
    let out = dir.join("merged.xml");
    let log = dir.join("merge.log");

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &out.to_string_lossy(), "--log", &log.to_string_lossy()])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success());

    let merged = parse_sbml(&fs::read_to_string(&out).unwrap()).unwrap();
    let expected = Composer::default().compose(&models[0], &models[1]);
    assert_eq!(merged, expected.model);
    let log_text = fs::read_to_string(&log).unwrap();
    assert_eq!(log_text, expected.log.to_text());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_chains_more_than_two_files() {
    let dir = scratch("chain");
    let models: Vec<Model> = (0..4).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);
    let out = dir.join("merged.xml");

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &out.to_string_lossy(), "--log", &dir.join("m.log").to_string_lossy()])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success());

    let merged = parse_sbml(&fs::read_to_string(&out).unwrap()).unwrap();
    let expected = compose_many(&Composer::default(), &models);
    assert_eq!(merged, expected.model, "CLI chain must equal library compose_many");
    // S0..S4 shared along the chain: 5 species, 4 reactions.
    assert_eq!(merged.species.len(), 5);
    assert_eq!(merged.reactions.len(), 4);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_pipeline_flags_do_not_change_output() {
    // The merge-pass pipeline is an execution detail: --pipeline off and
    // an explicit --pipeline-threads bound must produce byte-identical
    // merged SBML.
    let dir = scratch("pipeline");
    let models: Vec<Model> = (0..3).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);

    let run = |extra: &[&str], out: &std::path::Path| {
        let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
            .arg("compose")
            .args(&inputs)
            .args(["-o", &out.to_string_lossy(), "--log", &dir.join("p.log").to_string_lossy()])
            .args(extra)
            .status()
            .expect("run sbmlcompose");
        assert!(status.success());
        fs::read_to_string(out).expect("read merged output")
    };
    let default = run(&[], &dir.join("default.xml"));
    let off = run(&["--pipeline", "off"], &dir.join("off.xml"));
    let threaded = run(&["--pipeline-threads", "4"], &dir.join("threads.xml"));
    assert_eq!(default, off);
    assert_eq!(default, threaded);

    // Bad values are usage errors.
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["--pipeline", "sideways"])
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(2));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_input_is_a_one_line_diagnostic_and_exit_3() {
    let dir = scratch("missing");
    let inputs = write_inputs(&dir, &[chain_model(0)]);
    let ghost = dir.join("does_not_exist.xml");
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .arg(&inputs[0])
        .arg(&ghost)
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(3), "input error exits 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    assert!(stderr.contains("does_not_exist.xml"), "names the file: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_input_is_a_one_line_diagnostic_and_exit_3() {
    let dir = scratch("malformed");
    let inputs = write_inputs(&dir, &[chain_model(0)]);
    let bad = dir.join("bad.xml");
    fs::write(&bad, "<sbml><model id='x'").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .arg(&inputs[0])
        .arg(&bad)
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(3), "parse error exits 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn generous_budget_flags_do_not_change_output() {
    let dir = scratch("budget_ok");
    let models: Vec<Model> = (0..3).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);
    let plain = dir.join("plain.xml");
    let guarded = dir.join("guarded.xml");

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &plain.to_string_lossy()])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success());

    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &guarded.to_string_lossy()])
        .args(["--max-steps", "1000000", "--deadline-ms", "60000"])
        .status()
        .expect("run sbmlcompose");
    assert!(status.success(), "a budget nobody hits must not change the exit code");
    assert_eq!(
        fs::read_to_string(&plain).unwrap(),
        fs::read_to_string(&guarded).unwrap(),
        "budgets are observability, not semantics"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_budget_writes_partial_output_and_exits_4() {
    let dir = scratch("budget_cut");
    let models: Vec<Model> = (0..2).map(chain_model).collect();
    let inputs = write_inputs(&dir, &models);
    let out = dir.join("partial.xml");

    // Exactly enough steps for the first model: the second push must be
    // refused, the first model still written, and the exit code distinct.
    let allowance = models[0].component_count();
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .args(["-o", &out.to_string_lossy()])
        .args(["--max-steps", &allowance.to_string()])
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(4), "partial result exits 4");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("partial"), "stderr: {stderr}");
    assert!(stderr.contains("in1.xml"), "names the model it stopped before: {stderr}");
    let written = parse_sbml(&fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(written, models[0], "everything merged before the cut is kept");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compose_rejects_single_file() {
    let dir = scratch("single");
    let inputs = write_inputs(&dir, &[chain_model(0)]);
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("compose")
        .args(&inputs)
        .output()
        .expect("run sbmlcompose");
    assert_eq!(output.status.code(), Some(2), "usage error expected");
    assert!(String::from_utf8_lossy(&output.stderr).contains("at least two"));
    let _ = fs::remove_dir_all(&dir);
}
