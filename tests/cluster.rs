//! In-process cluster tests: real shard daemons and a real coordinator
//! on ephemeral loopback ports, checked bit-for-bit against a
//! single-process daemon over the same corpus.
//!
//! The load-bearing property: every `MATCH`/`QUERY`/`UPSERT`/`REMOVE`
//! answer a coordinator gives is the exact bytes the single-process
//! daemon gives, at every shard count and semantics level, including
//! under randomized write interleavings. Fault injection rides the same
//! harness: a killed shard degrades reads to a partial answer (exit 4,
//! shard named) and fails writes loudly.

use std::net::SocketAddr;
use std::thread;

use sbmlcompose::cluster::{carve_all, Coordinator, CoordinatorConfig, RetryPolicy};
use sbmlcompose::compose::{BatchComposer, ComposeOptions, Composer};
use sbmlcompose::corpus::{corpus_slice, query_fragment, scale_model};
use sbmlcompose::matching::MatchIndex;
use sbmlcompose::model::{write_sbml, Model};
use sbmlcompose::serve::{Client, Request, Response, Server, ServerConfig};

/// A deterministic LCG — the tests need reproducible "random"
/// interleavings, not entropy.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

struct Cluster {
    coordinator: SocketAddr,
    shards: Vec<SocketAddr>,
    shard_handles: Vec<Option<thread::JoinHandle<()>>>,
    coordinator_handle: Option<thread::JoinHandle<()>>,
}

impl Cluster {
    /// Carve `index` into one daemon per physical shard, bind each on an
    /// ephemeral port, and put a coordinator in front.
    fn spawn(
        index: &MatchIndex,
        options: &ComposeOptions,
        retry: RetryPolicy,
        cache_capacity: usize,
    ) -> Cluster {
        let carved = carve_all(index, options, 2).expect("carve every shard");
        let mut shards = Vec::new();
        let mut addr_strings = Vec::new();
        let mut shard_handles = Vec::new();
        for (local, identity) in carved {
            let config =
                ServerConfig { threads: 2, cache_capacity, ..ServerConfig::default() };
            let server =
                Server::bind_shard("127.0.0.1:0", local, options.clone(), config, identity)
                    .expect("bind shard daemon");
            let addr = server.local_addr();
            shards.push(addr);
            addr_strings.push(addr.to_string());
            shard_handles.push(Some(thread::spawn(move || {
                let _ = server.run();
            })));
        }
        let config = CoordinatorConfig {
            threads: 2,
            cache_capacity,
            retry,
            ..CoordinatorConfig::default()
        };
        let coordinator = Coordinator::bind("127.0.0.1:0", &addr_strings, config)
            .expect("bind coordinator");
        let addr = coordinator.local_addr();
        let coordinator_handle = Some(thread::spawn(move || {
            let _ = coordinator.run();
        }));
        Cluster { coordinator: addr, shards, shard_handles, coordinator_handle }
    }

    /// SHUTDOWN one shard daemon and wait for its thread to exit — only
    /// then is the port certifiably dead (the daemon drains in-flight
    /// requests before closing, so a live socket could still answer).
    fn kill_shard(&mut self, shard: usize) {
        let mut victim = Client::connect(self.shards[shard]).expect("connect victim");
        match victim.roundtrip(&Request::Shutdown).expect("shutdown victim") {
            Response::Ok { code: 0, .. } => {}
            other => panic!("victim shutdown not acknowledged: {other:?}"),
        }
        if let Some(handle) = self.shard_handles[shard].take() {
            handle.join().expect("victim daemon thread exits");
        }
    }

    /// Shut everything down (coordinator first) and join the threads.
    /// Already-dead daemons are fine — fault tests kill shards early.
    fn shutdown(self) {
        for addr in std::iter::once(self.coordinator).chain(self.shards) {
            if let Ok(mut client) = Client::connect(addr) {
                let _ = client.roundtrip(&Request::Shutdown);
            }
        }
        for handle in
            self.shard_handles.into_iter().chain(std::iter::once(self.coordinator_handle))
        {
            let _ = handle.map(|h| h.join());
        }
    }
}

/// Bind a single-process daemon over `index` — the oracle the cluster
/// must be indistinguishable from.
fn spawn_oracle(
    index: MatchIndex,
    options: &ComposeOptions,
    cache_capacity: usize,
) -> (SocketAddr, thread::JoinHandle<()>) {
    let config = ServerConfig { threads: 2, cache_capacity, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", index, options.clone(), config)
        .expect("bind oracle daemon");
    let addr = server.local_addr();
    let handle = thread::spawn(move || {
        let _ = server.run();
    });
    (addr, handle)
}

fn prepare(options: &ComposeOptions, models: &[Model]) -> Vec<std::sync::Arc<sbmlcompose::compose::PreparedModel>> {
    BatchComposer::new(Composer::new(options.clone())).with_threads(2).prepare_corpus(models)
}

/// Send `request` to both daemons and require byte-identical frames —
/// response header, exit code, and body all at once.
fn lockstep(oracle: &mut Client, cluster: &mut Client, request: &Request, what: &str) {
    let want = oracle.roundtrip_raw(request).expect("oracle roundtrip");
    let got = cluster.roundtrip_raw(request).expect("cluster roundtrip");
    assert_eq!(
        got,
        want,
        "{what}: coordinator answer diverged from the single-process daemon\n\
         oracle:  {:?}\ncluster: {:?}",
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(&got),
    );
}

/// The core property: at shard counts 1, 2 and 4, a freshly carved
/// cluster answers every read bit-identically, stays bit-identical
/// through a randomized UPSERT/REMOVE interleaving, and the writes
/// themselves echo the same bytes.
fn bit_identity_under_interleaving(options: ComposeOptions, seed: u64) {
    let models = corpus_slice(58..70);
    let prepared = prepare(&options, &models);
    let queries: Vec<Model> = (0..4)
        .map(|i| query_fragment(&models[(i * 3) % models.len()], i, 1 + i % 2))
        .collect();

    for shards in [1usize, 2, 4] {
        let index = MatchIndex::build_sharded(&prepared, &options, 2, shards);
        let oracle_index = MatchIndex::build_sharded(&prepared, &options, 2, shards);
        let cluster = Cluster::spawn(&index, &options, RetryPolicy::default(), 16);
        let (oracle_addr, oracle_handle) = spawn_oracle(oracle_index, &options, 16);
        let mut oracle = Client::connect(oracle_addr).expect("connect oracle");
        let mut coord = Client::connect(cluster.coordinator).expect("connect coordinator");

        for (i, query) in queries.iter().enumerate() {
            let xml = write_sbml(query);
            lockstep(
                &mut oracle,
                &mut coord,
                &Request::Match { query_xml: xml.clone() },
                &format!("{shards} shard(s), MATCH query {i}"),
            );
            lockstep(
                &mut oracle,
                &mut coord,
                &Request::Query { query_xml: xml },
                &format!("{shards} shard(s), QUERY query {i}"),
            );
        }

        // A randomized write interleaving, replayed in lockstep. Fresh
        // inserts, same-id replacements, removals of live and absent
        // ids — reads re-checked after every write.
        let mut rng = seed ^ shards as u64;
        let mut ids: Vec<String> = models.iter().map(|m| m.id.clone()).collect();
        for step in 0..10 {
            let what = format!("{shards} shard(s), step {step}");
            match lcg(&mut rng) % 4 {
                0 => {
                    let fresh = scale_model(200 + step);
                    ids.push(fresh.id.clone());
                    let request =
                        Request::Upsert { model_xml: write_sbml(&fresh), slot: None };
                    lockstep(&mut oracle, &mut coord, &request, &(what + ", fresh UPSERT"));
                }
                1 => {
                    let target = &models[lcg(&mut rng) as usize % models.len()];
                    let request =
                        Request::Upsert { model_xml: write_sbml(target), slot: None };
                    lockstep(&mut oracle, &mut coord, &request, &(what + ", replace UPSERT"));
                }
                2 if !ids.is_empty() => {
                    let id = ids.remove(lcg(&mut rng) as usize % ids.len());
                    let request = Request::Remove { model_id: id };
                    lockstep(&mut oracle, &mut coord, &request, &(what + ", REMOVE"));
                }
                _ => {
                    let request = Request::Remove { model_id: "no_such_model".into() };
                    lockstep(&mut oracle, &mut coord, &request, &(what + ", miss REMOVE"));
                }
            }
            let query = write_sbml(&queries[step % queries.len()]);
            lockstep(
                &mut oracle,
                &mut coord,
                &Request::Match { query_xml: query.clone() },
                &format!("{shards} shard(s), step {step}, MATCH after write"),
            );
            lockstep(
                &mut oracle,
                &mut coord,
                &Request::Query { query_xml: query },
                &format!("{shards} shard(s), step {step}, QUERY after write"),
            );
        }

        if let Ok(mut client) = Client::connect(oracle_addr) {
            let _ = client.roundtrip(&Request::Shutdown);
        }
        let _ = oracle_handle.join();
        cluster.shutdown();
    }
}

#[test]
fn coordinator_is_bit_identical_heavy() {
    bit_identity_under_interleaving(ComposeOptions::heavy(), 0xfeed);
}

#[test]
fn coordinator_is_bit_identical_light() {
    bit_identity_under_interleaving(ComposeOptions::light(), 0xbeef);
}

#[test]
fn coordinator_is_bit_identical_none() {
    bit_identity_under_interleaving(ComposeOptions::none(), 0xcafe);
}

#[test]
fn killed_shard_degrades_reads_and_fails_writes_loudly() {
    let options = ComposeOptions::heavy();
    let models = corpus_slice(58..67);
    let prepared = prepare(&options, &models);
    let index = MatchIndex::build_sharded(&prepared, &options, 2, 3);
    // No cache (a degraded answer must be recomputed, never replayed)
    // and a fast retry policy so the dead shard is declared quickly.
    let retry = RetryPolicy { attempts: 2, backoff_ms: 1 };
    let mut cluster = Cluster::spawn(&index, &options, retry, 0);
    let mut coord = Client::connect(cluster.coordinator).expect("connect coordinator");
    let query = write_sbml(&query_fragment(&models[2], 0, 1));

    // Baseline: all shards up, the read is whole.
    match coord.roundtrip(&Request::Match { query_xml: query.clone() }).expect("match") {
        Response::Ok { code, body } => {
            assert_ne!(code, 4, "healthy cluster must not be partial");
            assert!(
                !String::from_utf8_lossy(&body).contains("dead shard"),
                "healthy cluster must not report dead shards"
            );
        }
        other => panic!("healthy MATCH failed: {other:?}"),
    }

    // Kill shard 1 mid-flight (drained SHUTDOWN straight to the daemon).
    cluster.kill_shard(1);

    // Reads degrade: partial exit code, the dead shard named, and the
    // surviving shards' answer still present after the marker lines.
    match coord.roundtrip(&Request::Match { query_xml: query.clone() }).expect("match") {
        Response::Ok { code, body } => {
            let text = String::from_utf8_lossy(&body).into_owned();
            assert_eq!(code, 4, "a dead shard must yield the partial exit code: {text}");
            assert!(text.contains("dead shard 1 ("), "names the dead shard: {text}");
            let tail = text.lines().skip_while(|l| l.starts_with("dead ")).count();
            assert!(tail > 0, "the surviving shards' answer must follow: {text}");
        }
        other => panic!("degraded MATCH must still answer: {other:?}"),
    }
    match coord.roundtrip(&Request::Query { query_xml: query }).expect("query") {
        Response::Ok { code, body } => {
            let text = String::from_utf8_lossy(&body).into_owned();
            assert_eq!(code, 4, "QUERY degrades like MATCH: {text}");
            assert!(text.contains("dead shard 1 ("), "names the dead shard: {text}");
            assert!(text.contains("candidates "), "merged summary survives: {text}");
        }
        other => panic!("degraded QUERY must still answer: {other:?}"),
    }

    // Writes never degrade silently: the cluster would hold a model the
    // client believes gone (or miss one it believes present).
    match coord
        .roundtrip(&Request::Remove { model_id: models[0].id.clone() })
        .expect("remove")
    {
        Response::Err { message, .. } => {
            assert!(message.contains("shard 1 ("), "names the dead shard: {message}");
        }
        other => panic!("REMOVE through a dead shard must fail loudly: {other:?}"),
    }
    match coord
        .roundtrip(&Request::Upsert { model_xml: write_sbml(&scale_model(300)), slot: None })
        .expect("upsert")
    {
        Response::Err { message, .. } => {
            assert!(message.contains("shard "), "names a shard: {message}");
        }
        other => panic!("UPSERT through a dead cluster member must fail loudly: {other:?}"),
    }

    cluster.shutdown();
}

#[test]
fn coordinator_bind_fails_named_for_a_never_up_shard() {
    let options = ComposeOptions::light();
    let models = corpus_slice(60..64);
    let prepared = prepare(&options, &models);
    let index = MatchIndex::build_sharded(&prepared, &options, 2, 2);
    let carved = carve_all(&index, &options, 2).expect("carve");
    // Bring up shard 0 only; shard 1's port is bound-then-dropped so
    // nothing ever listens there.
    let (shard0, identity0) = carved.into_iter().next().expect("shard 0");
    let server = Server::bind_shard(
        "127.0.0.1:0",
        shard0,
        options.clone(),
        ServerConfig { threads: 2, ..ServerConfig::default() },
        identity0,
    )
    .expect("bind shard 0");
    let addr0 = server.local_addr();
    let handle = thread::spawn(move || {
        let _ = server.run();
    });
    let ghost = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
        probe.local_addr().expect("probe addr").to_string()
    };
    let config = CoordinatorConfig {
        retry: RetryPolicy { attempts: 2, backoff_ms: 1 },
        ..CoordinatorConfig::default()
    };
    let err = match Coordinator::bind("127.0.0.1:0", &[addr0.to_string(), ghost], config) {
        Err(err) => err,
        Ok(_) => panic!("a never-up shard must fail the bind"),
    };
    assert!(err.to_string().contains("shard 1 ("), "names the shard: {err}");

    let mut client = Client::connect(addr0).expect("connect shard 0");
    let _ = client.roundtrip(&Request::Shutdown);
    let _ = handle.join();
}

#[test]
fn cluster_stats_aggregate_per_shard_counters() {
    let options = ComposeOptions::none();
    let models = corpus_slice(58..66);
    let prepared = prepare(&options, &models);
    let index = MatchIndex::build_sharded(&prepared, &options, 2, 2);
    let cluster = Cluster::spawn(&index, &options, RetryPolicy::default(), 16);
    let mut coord = Client::connect(cluster.coordinator).expect("connect coordinator");

    let query = write_sbml(&query_fragment(&models[1], 0, 1));
    let _ = coord.roundtrip(&Request::Match { query_xml: query }).expect("match");

    let body = match coord.roundtrip(&Request::Stats).expect("stats") {
        Response::Ok { code: 0, body } => String::from_utf8(body).expect("utf-8 stats"),
        other => panic!("STATS failed: {other:?}"),
    };
    assert!(body.contains("coordinator_shards 2\n"), "cluster topology: {body}");
    assert!(body.contains("universe 8\n"), "slot universe: {body}");
    assert!(body.contains("match 1\n"), "coordinator counters: {body}");
    for shard in 0..2 {
        assert!(body.contains(&format!("-- shard {shard} (")), "per-shard block: {body}");
        assert!(body.contains(&format!("shard_index {shard}\n")), "shard identity: {body}");
    }
    assert!(body.contains("shard_total 2\n"), "shard identity: {body}");

    cluster.shutdown();
}
