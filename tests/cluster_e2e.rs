//! Cluster end-to-end through the real binary: `snapshot build` →
//! `snapshot split` → shard daemons (`serve`) → `coordinator` →
//! `client`/`cluster status`, all over loopback on ephemeral ports.
//!
//! No sleeps anywhere: every daemon announces `listening on <addr> ...`
//! on stdout when it is ready, and the harness blocks on that line.
//! The correctness oracle is a single-process daemon over the same
//! snapshot — the coordinator's client-visible answers must be
//! byte-identical to it.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Output, Stdio};

use sbmlcompose::corpus::{corpus_slice, query_fragment, scale_model};
use sbmlcompose::model::write_sbml;

const BIN: &str = env!("CARGO_BIN_EXE_sbmlcompose");

/// Spawn a daemon and block until it announces its bound address.
fn spawn_ready(args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {args:?}: {e}"));
    let mut announced = String::new();
    BufReader::new(child.stdout.take().expect("daemon stdout"))
        .read_line(&mut announced)
        .expect("read ready line");
    let addr = announced
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announcement from {args:?}: {announced:?}"))
        .parse()
        .expect("announced address parses");
    (child, addr)
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().unwrap_or_else(|e| panic!("run {args:?}: {e}"))
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn split_serve_coordinate_and_query_over_subprocesses() {
    let dir = std::env::temp_dir().join(format!("sbmlcluster_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus_dir = dir.join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("scratch dir");
    let models = corpus_slice(58..66);
    for model in &models {
        std::fs::write(corpus_dir.join(format!("{}.xml", model.id)), write_sbml(model))
            .expect("write corpus model");
    }
    let query_path = dir.join("query.xml");
    std::fs::write(&query_path, write_sbml(&query_fragment(&models[2], 0, 1)))
        .expect("write query");
    let miss_path = dir.join("miss.xml");
    std::fs::write(&miss_path, write_sbml(&query_fragment(&scale_model(400), 0, 1)))
        .expect("write miss query");
    let upsert_path = dir.join("upsert.xml");
    std::fs::write(&upsert_path, write_sbml(&scale_model(410))).expect("write upsert model");

    // Build a 2-shard snapshot, then carve it into per-shard files.
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();
    let built =
        run(&["snapshot", "build", &corpus_dir.to_string_lossy(), "-o", &snap, "--shards", "2"]);
    assert!(built.status.success(), "build: {}", String::from_utf8_lossy(&built.stderr));
    let split = run(&["snapshot", "split", &snap, "-o", &snap]);
    assert!(split.status.success(), "split: {}", String::from_utf8_lossy(&split.stderr));
    let part0 = format!("{snap}.shard0");
    let part1 = format!("{snap}.shard1");

    // `inspect --shard` describes one shard; a split file also carries
    // its cluster identity (which plain inspect prints too).
    let inspected = run(&["snapshot", "inspect", &part0, "--shard", "0"]);
    assert!(inspected.status.success());
    let text = stdout_of(&inspected);
    assert!(text.contains("shard 0/1\n"), "split files hold one physical shard: {text}");
    assert!(text.contains("owned_slots 4\n"), "half of 8 slots: {text}");
    assert!(text.contains("cluster_shard 0/2\n"), "cluster identity: {text}");
    assert!(text.contains("cluster_universe 8\n"), "cluster identity: {text}");
    let inspected = run(&["snapshot", "inspect", &part1]);
    assert!(inspected.status.success());
    let text = stdout_of(&inspected);
    assert!(text.contains("models 4\n"), "shard 1 owns 4 models: {text}");
    assert!(text.contains("cluster_shard 1/2\n"), "cluster identity: {text}");

    // Shard 0 boots from its split file (identity on disk); shard 1
    // slices the full snapshot at load time — both paths must converge.
    let (mut shard0, addr0) = spawn_ready(&["serve", &part0, "--addr", "127.0.0.1:0"]);
    let (mut shard1, addr1) =
        spawn_ready(&["serve", &snap, "--shard", "1/2", "--addr", "127.0.0.1:0"]);
    let shard_list = format!("{addr0},{addr1}");
    let (mut coordinator, coord_addr) =
        spawn_ready(&["coordinator", "--shards", &shard_list, "--addr", "127.0.0.1:0"]);
    // The oracle: one process over the whole snapshot.
    let (mut oracle, oracle_addr) = spawn_ready(&["serve", &snap, "--addr", "127.0.0.1:0"]);

    let coord = coord_addr.to_string();
    let single = oracle_addr.to_string();
    let lockstep = |verb_args: &[&str]| {
        let got = run(&[&["client", &coord], verb_args].concat());
        let want = run(&[&["client", &single], verb_args].concat());
        assert_eq!(
            (got.status.code(), stdout_of(&got)),
            (want.status.code(), stdout_of(&want)),
            "client {verb_args:?} diverged from the single-process daemon",
        );
    };
    let query = query_path.to_string_lossy().into_owned();
    let miss = miss_path.to_string_lossy().into_owned();
    let upsert = upsert_path.to_string_lossy().into_owned();
    lockstep(&["match", &query]);
    lockstep(&["query", &query]);
    lockstep(&["match", &miss]);
    lockstep(&["upsert", &upsert]);
    lockstep(&["match", &query]);
    lockstep(&["remove", &models[0].id]);
    lockstep(&["remove", "no_such_model"]);
    lockstep(&["query", &query]);

    // `cluster status` aggregates the whole topology in one report.
    let status = run(&["cluster", "status", &coord]);
    assert!(status.status.success(), "status: {}", String::from_utf8_lossy(&status.stderr));
    let text = stdout_of(&status);
    assert!(text.contains("coordinator_shards 2\n"), "topology: {text}");
    assert!(text.contains("-- shard 0 ("), "per-shard block: {text}");
    assert!(text.contains("-- shard 1 ("), "per-shard block: {text}");
    assert!(text.contains("shard_total 2\n"), "shard identity: {text}");

    // Clean teardown: coordinator first, then the daemons; every
    // process must exit 0 (the drained-shutdown contract).
    for (name, addr) in [("coordinator", &coord), ("shard0", &addr0.to_string()),
        ("shard1", &addr1.to_string()), ("oracle", &single)]
    {
        let down = run(&["client", addr, "shutdown"]);
        assert!(down.status.success(), "{name} shutdown");
    }
    for (name, child) in [
        ("coordinator", &mut coordinator),
        ("shard0", &mut shard0),
        ("shard1", &mut shard1),
        ("oracle", &mut oracle),
    ] {
        let status = child.wait().unwrap_or_else(|e| panic!("wait {name}: {e}"));
        assert!(status.success(), "{name} must exit cleanly after SHUTDOWN");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_a_mismatched_shard_spec() {
    let dir = std::env::temp_dir().join(format!("sbmlcluster_spec_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus_dir = dir.join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("scratch dir");
    for model in corpus_slice(60..64) {
        std::fs::write(corpus_dir.join(format!("{}.xml", model.id)), write_sbml(&model))
            .expect("write corpus model");
    }
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();
    let built =
        run(&["snapshot", "build", &corpus_dir.to_string_lossy(), "-o", &snap, "--shards", "2"]);
    assert!(built.status.success());
    let split = run(&["snapshot", "split", &snap, "-o", &snap]);
    assert!(split.status.success());

    // A split file knows which shard it is; lying about it is exit 3.
    let wrong = run(&[
        "serve",
        &format!("{snap}.shard0"),
        "--shard",
        "1/2",
        "--addr",
        "127.0.0.1:0",
    ]);
    assert_eq!(wrong.status.code(), Some(3), "identity mismatch is bad input");
    let err = String::from_utf8_lossy(&wrong.stderr);
    assert!(err.contains("shard 0/2"), "says what the file is: {err}");
    // Malformed spec is a usage error.
    let bad = run(&["serve", &snap, "--shard", "2/2", "--addr", "127.0.0.1:0"]);
    assert_eq!(bad.status.code(), Some(2), "out-of-range spec is a usage error");
    let _ = std::fs::remove_dir_all(&dir);
}
