//! Differential test harness for the zero-copy session machinery.
//!
//! Proves the two execution-detail layers introduced with copy-on-write
//! base adoption — the COW accumulator itself and the session-lifetime
//! [`WorkerPool`](sbml_compose::WorkerPool) — bit-identical to the eager
//! clone-on-adopt reference across:
//!
//! * all three semantics levels × the knob ablations (content-key cache,
//!   incremental initial values, merge pipeline, forced-parallel pushes),
//! * worker counts 1..8,
//! * every push entry point (raw / prepared / guarded),
//! * rollback: a failed guarded push must leave the shared base
//!   untouched (covered against injected faults in
//!   `tests/fault_isolation.rs`; budget-exhaustion rollback here).
//!
//! The comparison engine lives in `compose_bench::oracle` so the fig8
//! bench binary measures exactly the workload proven here.

use std::sync::Arc;

use compose_bench::oracle::{
    self, assert_cow_matches_clone, base_model, duplicate_push, overlap_push, PushMode,
};
use sbml_compose::{
    Budget, ComposeOptions, Composer, CompositionSession, SemanticsLevel, SharedModel,
};

fn semantics_levels() -> [ComposeOptions; 3] {
    [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
}

/// The knob ablations the COW path must be neutral under, applied to a
/// base options value.
fn ablations(options: &ComposeOptions) -> Vec<(&'static str, ComposeOptions)> {
    vec![
        ("default", options.clone()),
        ("no-content-key-cache", options.clone().with_content_key_cache(false)),
        ("no-incremental-ivs", options.clone().with_incremental_initial_values(false)),
        ("no-merge-pipeline", options.clone().with_merge_pipeline(false)),
        ("forced-parallel-push", options.clone().with_parallel_push_threshold(0)),
        ("no-initial-values", options.clone().with_initial_values(false)),
    ]
}

#[test]
fn cow_equals_clone_across_semantics_ablations_and_workers() {
    let base = base_model(6);
    let pushes = [overlap_push(1), duplicate_push(3), overlap_push(2)];
    for options in semantics_levels() {
        for (name, options) in ablations(&options) {
            for workers in 1..=8usize {
                for mode in [PushMode::Raw, PushMode::Prepared, PushMode::Guarded] {
                    let outcome =
                        assert_cow_matches_clone(&options, &base, &pushes, mode, workers);
                    assert!(
                        !outcome.base_stayed_shared,
                        "overlap pushes must materialise ({name}, workers={workers})"
                    );
                }
            }
        }
    }
}

#[test]
fn duplicate_only_composition_never_copies_the_base() {
    let base = base_model(6);
    let pushes = [duplicate_push(3), duplicate_push(5), duplicate_push(2)];
    for options in semantics_levels() {
        for (name, options) in ablations(&options) {
            for mode in [PushMode::Raw, PushMode::Prepared, PushMode::Guarded] {
                let outcome = assert_cow_matches_clone(&options, &base, &pushes, mode, 4);
                assert!(
                    outcome.base_stayed_shared,
                    "pure-duplicate pushes must leave the base shared ({name}, {mode:?})"
                );
            }
        }
    }
}

#[test]
fn match_miss_empty_push_keeps_base_shared() {
    // A push with nothing new *and* nothing matching still must not
    // materialise: zero additions means zero copies.
    let options = ComposeOptions::default();
    let base = base_model(4);
    let outcome = assert_cow_matches_clone(
        &options,
        &base,
        &[duplicate_push(1)],
        PushMode::Prepared,
        2,
    );
    assert!(outcome.base_stayed_shared);
}

#[test]
fn compose_shared_duplicate_pair_returns_the_base_arc() {
    let options = ComposeOptions::default();
    let composer = Composer::new(options);
    let base = Arc::new(composer.prepare(&base_model(5)));
    let dup = composer.prepare(&duplicate_push(4));
    let result = composer.compose_shared(Arc::clone(&base), &dup);
    match &result.model {
        SharedModel::Base(returned) => {
            assert!(Arc::ptr_eq(returned, &base), "must be the very same Arc")
        }
        SharedModel::Owned(_) => panic!("duplicate-only pair must not materialise"),
    }
    // And the shared result matches the eager pairwise compose.
    let reference =
        oracle::reference_compose(composer.options(), base.model(), dup.model());
    assert_eq!(result.model.as_model(), &reference.model);
    assert_eq!(result.log.events, reference.log.events);
    assert_eq!(result.mappings, reference.mappings);
}

#[test]
fn budget_exhausted_push_rolls_back_to_shared_base() {
    let options = ComposeOptions::default();
    let composer = Composer::new(options.clone());
    let base = Arc::new(composer.prepare(&base_model(6)));
    let mut session = CompositionSession::with_shared_base(&options, Arc::clone(&base));
    assert!(session.is_base_shared());

    // A one-step budget dies mid-push; the session must roll back to the
    // untouched shared base.
    let budget = Budget::unlimited().with_max_steps(1);
    let meter = budget.start();
    let overlap = overlap_push(7);
    session.push_guarded(&overlap, Some(&meter)).expect_err("1 step cannot finish a push");
    assert!(
        session.is_base_shared(),
        "failed push must re-adopt the shared base, not keep a half-copy"
    );
    assert_eq!(session.model(), base.model(), "accumulator must be byte-identical");
    assert_eq!(session.pushes(), 0);
    assert!(session.log().events.is_empty());

    // The session is still fully usable and still zero-copy afterwards.
    session.push(&duplicate_push(3));
    assert!(session.is_base_shared());
    let shared = session.finish_shared();
    assert!(matches!(shared.model, SharedModel::Base(_)));
}

#[test]
fn cow_session_interleaves_materialising_and_absorbed_pushes() {
    // Duplicate, then overlap (materialises), then more pushes on the now
    // owned accumulator — equality must hold through the transition, at
    // every worker count.
    let base = base_model(5);
    let pushes =
        [duplicate_push(2), overlap_push(3), duplicate_push(4), overlap_push(9)];
    for workers in [1, 2, 5, 8] {
        for mode in [PushMode::Raw, PushMode::Prepared, PushMode::Guarded] {
            let outcome = assert_cow_matches_clone(
                &ComposeOptions::default(),
                &base,
                &pushes,
                mode,
                workers,
            );
            assert!(!outcome.base_stayed_shared);
        }
    }
}

#[test]
fn semantics_none_duplicates_still_share() {
    // Under SemanticsLevel::None the id-equality path decides duplicates;
    // the COW invariants are semantics-independent.
    let options = ComposeOptions::default().with_semantics(SemanticsLevel::None);
    let base = base_model(4);
    let outcome = assert_cow_matches_clone(
        &options,
        &base,
        &[duplicate_push(2)],
        PushMode::Raw,
        3,
    );
    assert!(outcome.base_stayed_shared);
}

#[test]
fn one_pool_serves_many_sessions_against_one_base() {
    // The serving shape: one hot base, one long-lived pool, many
    // sessions. Every composition must match the clone oracle and the
    // base Arc must end with no session still holding it.
    let options = ComposeOptions::default().with_parallel_push_threshold(0);
    let composer = Composer::new(options.clone());
    let base = Arc::new(composer.prepare(&base_model(6)));
    let pool = Arc::new(sbml_compose::WorkerPool::new(4));
    for seed in 0..6 {
        let push = if seed % 2 == 0 { duplicate_push(3) } else { overlap_push(seed) };
        let prepared_push = composer.prepare(&push);
        let result = composer.compose_shared_on(
            Arc::clone(&base),
            &prepared_push,
            Some(Arc::clone(&pool)),
        );
        let reference = oracle::reference_compose(&options, base.model(), &push);
        assert_eq!(result.model.as_model(), &reference.model, "seed={seed}");
        assert_eq!(result.log.events, reference.log.events, "seed={seed}");
        assert_eq!(result.mappings, reference.mappings, "seed={seed}");
        assert_eq!(result.model.is_base(), seed % 2 == 0, "seed={seed}");
    }
    // Only our own handle remains.
    assert_eq!(Arc::strong_count(&base), 1);
}
