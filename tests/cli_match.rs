//! Integration tests for the `sbmlcompose match` / `query` CLI: corpus
//! search with exact embeddings, approximate fallback, and exit codes.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{write_sbml, Model};

fn glycolysis() -> Model {
    ModelBuilder::new("glyco")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 5.0)
        .species("G6P", 0.0)
        .species("F6P", 0.0)
        .parameter("k1", 0.4)
        .parameter("k2", 0.3)
        .reaction("hex", &["glc"], &["G6P"], "k1*glc")
        .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
        .build()
}

fn tca() -> Model {
    ModelBuilder::new("tca")
        .compartment("cell", 1.0)
        .species("citrate", 1.0)
        .species("isocitrate", 0.0)
        .parameter("k", 0.1)
        .reaction("aco", &["citrate"], &["isocitrate"], "k*citrate")
        .build()
}

fn fragment() -> Model {
    ModelBuilder::new("frag")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 5.0)
        .species("G6P", 0.0)
        .parameter("k1", 0.4)
        .reaction("hex", &["glc"], &["G6P"], "k1*glc")
        .build()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sbmlcompose_cli_match_{tag}_{}_{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").replace("::", "_"),
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write(dir: &std::path::Path, name: &str, m: &Model) -> String {
    let path = dir.join(name);
    fs::write(&path, write_sbml(m)).expect("write model");
    path.to_string_lossy().into_owned()
}

#[test]
fn match_reports_exact_hit_with_mapping() {
    let dir = scratch("hit");
    let q = write(&dir, "query.xml", &fragment());
    let a = write(&dir, "glyco.xml", &glycolysis());
    let b = write(&dir, "tca.xml", &tca());

    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &q, &a, &b])
        .output()
        .expect("run sbmlcompose match");
    assert!(output.status.success(), "exact hit must exit 0");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("exact"), "stdout: {stdout}");
    assert!(stdout.contains("glyco"), "stdout: {stdout}");
    assert!(!stdout.contains("tca.xml"), "tca does not contain the fragment: {stdout}");
    assert!(stdout.contains("glc->glc"), "species mapping reported: {stdout}");
    assert!(stdout.contains("hex->hex"), "reaction mapping reported: {stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn query_alias_and_semantics_flag() {
    let dir = scratch("alias");
    // The query names glucose by a synonym; only synonym-aware levels hit.
    let mut syn = fragment();
    syn.species[0].name = Some("dextrose".into());
    let q = write(&dir, "query.xml", &syn);
    let a = write(&dir, "glyco.xml", &glycolysis());

    let hit = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["query", &q, &a, "--semantics", "heavy"])
        .output()
        .expect("run sbmlcompose query");
    assert!(hit.status.success(), "synonym query hits under heavy semantics");

    let miss = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["query", &q, &a, "--semantics", "none"])
        .output()
        .expect("run sbmlcompose query");
    assert!(!miss.status.success(), "no-semantics must miss the synonym");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn miss_ranks_approximate_matches_and_exits_nonzero() {
    let dir = scratch("miss");
    // Shares species with glycolysis but with kinetics no model carries.
    let near = ModelBuilder::new("near")
        .compartment("cell", 1.0)
        .species("G6P", 0.0)
        .species("F6P", 0.0)
        .parameter("vmax", 2.0)
        .parameter("km", 3.0)
        .reaction("iso", &["G6P"], &["F6P"], "vmax*G6P/(km+G6P)")
        .build();
    let q = write(&dir, "query.xml", &near);
    let a = write(&dir, "glyco.xml", &glycolysis());
    let b = write(&dir, "tca.xml", &tca());

    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &q, &a, &b, "--top", "1", "--threads", "2"])
        .output()
        .expect("run sbmlcompose match");
    assert!(!output.status.success(), "a miss must exit nonzero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("no exact embedding"), "stdout: {stdout}");
    assert!(stdout.contains("approx"), "ranked fallback shown: {stdout}");
    assert!(stdout.contains("glyco.xml"), "glycolysis is the nearest model: {stdout}");
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with("approx ")).count(),
        1,
        "--top 1 bounds the ranking: {stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_query_is_a_one_line_diagnostic_and_exit_3() {
    let dir = scratch("missing");
    let a = write(&dir, "glyco.xml", &glycolysis());
    let ghost = dir.join("no_query.xml");
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &ghost.to_string_lossy(), &a])
        .output()
        .expect("run sbmlcompose match");
    assert_eq!(output.status.code(), Some(3), "input error exits 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    assert!(stderr.contains("no_query.xml"), "names the file: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_corpus_file_exits_3() {
    let dir = scratch("badcorpus");
    let q = write(&dir, "query.xml", &fragment());
    let bad = dir.join("bad.xml");
    fs::write(&bad, "<sbml><model").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &q, &bad.to_string_lossy()])
        .output()
        .expect("run sbmlcompose match");
    assert_eq!(output.status.code(), Some(3), "parse error exits 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_refinement_budget_reports_truncation_and_exits_4() {
    let dir = scratch("truncated");
    let q = write(&dir, "query.xml", &fragment());
    let a = write(&dir, "glyco.xml", &glycolysis());

    // Zero search steps: the candidate survives filtering but refinement
    // cannot reach a verdict — partial result, distinct exit code.
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &q, &a, "--max-steps", "0"])
        .output()
        .expect("run sbmlcompose match");
    assert_eq!(output.status.code(), Some(4), "truncated verdicts exit 4");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("truncated"), "stdout: {stdout}");
    assert!(stdout.contains("glyco.xml"), "names the candidate: {stdout}");

    // A budget the search never hits behaves exactly like no budget.
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", &q, &a, "--max-steps", "1000000", "--deadline-ms", "60000"])
        .output()
        .expect("run sbmlcompose match");
    assert!(output.status.success(), "generous budget still finds the exact hit");
    assert!(String::from_utf8_lossy(&output.stdout).contains("exact"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn match_requires_query_and_corpus() {
    let status = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .args(["match", "only_one.xml"])
        .status()
        .expect("run sbmlcompose match");
    assert_eq!(status.code(), Some(2), "usage error exits 2");
}

#[test]
fn help_documents_match() {
    let output = Command::new(env!("CARGO_BIN_EXE_sbmlcompose"))
        .arg("--help")
        .output()
        .expect("run sbmlcompose --help");
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("sbmlcompose match"), "help: {text}");
    assert!(text.contains("--top"), "help: {text}");
}
