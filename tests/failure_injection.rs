//! Failure-injection tests: every layer must reject malformed input with a
//! clean error (never a panic), and the merge must stay robust when fed
//! pathological but well-formed models.

use sbmlcompose::compose::{ComposeOptions, Composer};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{parse_sbml, ModelError};

#[test]
fn malformed_xml_rejected_cleanly() {
    let cases = [
        "",
        "<",
        "<sbml>",
        "<sbml><model></sbml>",
        "<sbml><model id='x'/></sbml><extra/>",
        "<sbml><model id=\"unterminated></sbml>",
        "<sbml>&undefined;</sbml>",
        "<sbml><model id=\"a\" id=\"b\"/></sbml>",
    ];
    for text in cases {
        let result = parse_sbml(text);
        assert!(result.is_err(), "{text:?} must be rejected");
    }
}

#[test]
fn structurally_invalid_sbml_rejected_with_context() {
    // species without compartment
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfSpecies><species id=\"A\"/></listOfSpecies></model></sbml>",
    )
    .unwrap_err();
    assert!(matches!(err, ModelError::Structure { .. }), "{err}");
    assert!(err.to_string().contains("compartment"), "{err}");

    // kinetic law without math
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfReactions><reaction id=\"r\"><kineticLaw/></reaction></listOfReactions></model></sbml>",
    )
    .unwrap_err();
    assert!(err.to_string().contains("math"), "{err}");

    // bad number in attribute
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfParameters><parameter id=\"k\" value=\"lots\"/></listOfParameters></model></sbml>",
    )
    .unwrap_err();
    assert!(err.to_string().contains("lots"), "{err}");
}

#[test]
fn bad_mathml_rejected_with_context() {
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfRules><assignmentRule variable=\"x\"><math><apply><divide/><cn>1</cn></apply></math></assignmentRule></listOfRules></model></sbml>",
    )
    .unwrap_err();
    assert!(matches!(err, ModelError::Math { .. }), "{err}");
}

#[test]
fn merge_survives_models_with_cyclic_function_definitions() {
    // Validation flags the cycle; composition must not hang or crash.
    let cyclic = ModelBuilder::new("cyclic").function("f", &["x"], "f(x)").build();
    let issues = sbmlcompose::model::validate(&cyclic);
    assert!(issues.iter().any(|i| i.message.contains("recursive")));

    let other = ModelBuilder::new("other").function("f", &["x"], "x + 1").build();
    let result = Composer::new(ComposeOptions::default()).compose(&cyclic, &other);
    // Same id, different body: conflict, first model wins.
    assert_eq!(result.model.function_definitions.len(), 1);
    assert_eq!(result.log.conflict_count(), 1);
}

#[test]
fn merge_survives_nan_and_infinite_values() {
    let mut weird = ModelBuilder::new("weird")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .parameter("k", 1.0)
        .build();
    weird.parameters[0].value = Some(f64::INFINITY);
    weird.species[0].initial_amount = Some(f64::NAN);

    let normal = ModelBuilder::new("normal")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .parameter("k", 1.0)
        .build();
    // Both directions must terminate and produce *some* model.
    let r1 = Composer::new(ComposeOptions::default()).compose(&weird, &normal);
    let r2 = Composer::new(ComposeOptions::default()).compose(&normal, &weird);
    assert_eq!(r1.model.species.len(), 1);
    assert_eq!(r2.model.species.len(), 1);
    // NaN initial amounts can never "agree" — must be flagged, not merged
    // silently as equal.
    assert!(r1.log.conflict_count() + r2.log.conflict_count() >= 1);
}

#[test]
fn merge_survives_unicode_and_hostile_names() {
    let a = ModelBuilder::new("a")
        .compartment("cell", 1.0)
        .species_named("s1", "α-D-糖 <& \"quoted\">", 1.0)
        .build();
    let b = ModelBuilder::new("b")
        .compartment("cell", 1.0)
        .species_named("s2", "α-D-糖 <& \"quoted\">", 1.0)
        .build();
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    assert_eq!(result.model.species.len(), 1, "same hostile name must unify");
    // ...and the result must survive an XML round trip with escaping.
    let xml = sbmlcompose::model::write_sbml(&result.model);
    let back = parse_sbml(&xml).unwrap();
    assert_eq!(back, result.model);
}

#[test]
fn simulation_rejects_unsimulable_models_cleanly() {
    // Reaction math references an identifier that does not exist.
    let broken = ModelBuilder::new("broken")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .reaction("r", &["A"], &[], "ghost_parameter*A")
        .build();
    let err = sbmlcompose::sim::ode::simulate_rk4(&broken, 1.0, 0.1).unwrap_err();
    assert!(err.to_string().contains("ghost_parameter"), "{err}");

    let err = sbmlcompose::sim::ssa::simulate_ssa(&broken, 1.0, 0.1, 0).unwrap_err();
    assert!(err.to_string().contains("ghost_parameter"), "{err}");
}

#[test]
fn mc2_surfaces_atom_errors() {
    let model = ModelBuilder::new("m")
        .compartment("cell", 1.0)
        .species("A", 5.0)
        .parameter("k", 1.0)
        .reaction("r", &["A"], &[], "k*A")
        .build();
    let phi = sbmlcompose::mc2::Formula::parse("G(no_such_species > 0)").unwrap();
    let err = sbmlcompose::mc2::check_probability(&model, &phi, 3, 1.0, 0.5).unwrap_err();
    assert!(err.contains("no_such_species"), "{err}");
}

#[test]
fn huge_id_collision_chains_resolve() {
    // Force a long rename chain: both models define k, k_1, k_2 with
    // different values — renames must keep probing forward, never clobber.
    let mut a = ModelBuilder::new("a").compartment("c", 1.0).build();
    let mut b = ModelBuilder::new("b").compartment("c", 1.0).build();
    for i in 0..10 {
        let id = if i == 0 { "k".to_owned() } else { format!("k_{i}") };
        a.parameters.push(sbmlcompose::model::Parameter::new(&id, i as f64));
        b.parameters.push(sbmlcompose::model::Parameter::new(&id, 100.0 + i as f64));
    }
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    assert_eq!(result.model.parameters.len(), 20, "all parameters kept");
    // ids unique
    let ids: std::collections::BTreeSet<_> =
        result.model.parameters.iter().map(|p| p.id.clone()).collect();
    assert_eq!(ids.len(), 20);
}

#[test]
fn empty_vs_empty() {
    let empty = sbmlcompose::model::Model::new("e");
    let result = Composer::new(ComposeOptions::default()).compose(&empty, &empty);
    assert!(result.model.is_empty());
    assert!(result.log.events.is_empty());
}

#[test]
fn deeply_nested_math_round_trips() {
    // 64 levels of nesting through parser, pattern, writer.
    let mut formula = String::from("x");
    for _ in 0..64 {
        formula = format!("({formula} + 1)");
    }
    let expr = sbmlcompose::math::infix::parse(&formula).unwrap();
    let pattern = sbmlcompose::math::pattern::Pattern::of(&expr);
    assert!(!pattern.as_str().is_empty());
    let xml_el = sbmlcompose::math::to_mathml(&expr);
    let back = sbmlcompose::math::parse_mathml(&xml_el).unwrap();
    assert_eq!(back, expr);
}
