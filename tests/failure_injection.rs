//! Failure-injection tests: every layer must reject malformed input with a
//! clean error (never a panic), and the merge must stay robust when fed
//! pathological but well-formed models.

use sbmlcompose::compose::{
    Budget, ComposeOptions, Composer, CompositionSession, ExecError, Site,
};
use sbmlcompose::model::builder::ModelBuilder;
use sbmlcompose::model::{parse_sbml, write_sbml, ModelError};

#[test]
fn malformed_xml_rejected_cleanly() {
    let cases = [
        "",
        "<",
        "<sbml>",
        "<sbml><model></sbml>",
        "<sbml><model id='x'/></sbml><extra/>",
        "<sbml><model id=\"unterminated></sbml>",
        "<sbml>&undefined;</sbml>",
        "<sbml><model id=\"a\" id=\"b\"/></sbml>",
    ];
    for text in cases {
        let result = parse_sbml(text);
        assert!(result.is_err(), "{text:?} must be rejected");
    }
}

#[test]
fn structurally_invalid_sbml_rejected_with_context() {
    // species without compartment
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfSpecies><species id=\"A\"/></listOfSpecies></model></sbml>",
    )
    .unwrap_err();
    assert!(matches!(err, ModelError::Structure { .. }), "{err}");
    assert!(err.to_string().contains("compartment"), "{err}");

    // kinetic law without math
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfReactions><reaction id=\"r\"><kineticLaw/></reaction></listOfReactions></model></sbml>",
    )
    .unwrap_err();
    assert!(err.to_string().contains("math"), "{err}");

    // bad number in attribute
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfParameters><parameter id=\"k\" value=\"lots\"/></listOfParameters></model></sbml>",
    )
    .unwrap_err();
    assert!(err.to_string().contains("lots"), "{err}");
}

#[test]
fn bad_mathml_rejected_with_context() {
    let err = parse_sbml(
        "<sbml><model id=\"m\"><listOfRules><assignmentRule variable=\"x\"><math><apply><divide/><cn>1</cn></apply></math></assignmentRule></listOfRules></model></sbml>",
    )
    .unwrap_err();
    assert!(matches!(err, ModelError::Math { .. }), "{err}");
}

#[test]
fn merge_survives_models_with_cyclic_function_definitions() {
    // Validation flags the cycle; composition must not hang or crash.
    let cyclic = ModelBuilder::new("cyclic").function("f", &["x"], "f(x)").build();
    let issues = sbmlcompose::model::validate(&cyclic);
    assert!(issues.iter().any(|i| i.message.contains("recursive")));

    let other = ModelBuilder::new("other").function("f", &["x"], "x + 1").build();
    let result = Composer::new(ComposeOptions::default()).compose(&cyclic, &other);
    // Same id, different body: conflict, first model wins.
    assert_eq!(result.model.function_definitions.len(), 1);
    assert_eq!(result.log.conflict_count(), 1);
}

#[test]
fn merge_survives_nan_and_infinite_values() {
    let mut weird = ModelBuilder::new("weird")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .parameter("k", 1.0)
        .build();
    weird.parameters[0].value = Some(f64::INFINITY);
    weird.species[0].initial_amount = Some(f64::NAN);

    let normal = ModelBuilder::new("normal")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .parameter("k", 1.0)
        .build();
    // Both directions must terminate and produce *some* model.
    let r1 = Composer::new(ComposeOptions::default()).compose(&weird, &normal);
    let r2 = Composer::new(ComposeOptions::default()).compose(&normal, &weird);
    assert_eq!(r1.model.species.len(), 1);
    assert_eq!(r2.model.species.len(), 1);
    // NaN initial amounts can never "agree" — must be flagged, not merged
    // silently as equal.
    assert!(r1.log.conflict_count() + r2.log.conflict_count() >= 1);
}

#[test]
fn merge_survives_unicode_and_hostile_names() {
    let a = ModelBuilder::new("a")
        .compartment("cell", 1.0)
        .species_named("s1", "α-D-糖 <& \"quoted\">", 1.0)
        .build();
    let b = ModelBuilder::new("b")
        .compartment("cell", 1.0)
        .species_named("s2", "α-D-糖 <& \"quoted\">", 1.0)
        .build();
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    assert_eq!(result.model.species.len(), 1, "same hostile name must unify");
    // ...and the result must survive an XML round trip with escaping.
    let xml = sbmlcompose::model::write_sbml(&result.model);
    let back = parse_sbml(&xml).unwrap();
    assert_eq!(back, result.model);
}

#[test]
fn simulation_rejects_unsimulable_models_cleanly() {
    // Reaction math references an identifier that does not exist.
    let broken = ModelBuilder::new("broken")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .reaction("r", &["A"], &[], "ghost_parameter*A")
        .build();
    let err = sbmlcompose::sim::ode::simulate_rk4(&broken, 1.0, 0.1).unwrap_err();
    assert!(err.to_string().contains("ghost_parameter"), "{err}");

    let err = sbmlcompose::sim::ssa::simulate_ssa(&broken, 1.0, 0.1, 0).unwrap_err();
    assert!(err.to_string().contains("ghost_parameter"), "{err}");
}

#[test]
fn mc2_surfaces_atom_errors() {
    let model = ModelBuilder::new("m")
        .compartment("cell", 1.0)
        .species("A", 5.0)
        .parameter("k", 1.0)
        .reaction("r", &["A"], &[], "k*A")
        .build();
    let phi = sbmlcompose::mc2::Formula::parse("G(no_such_species > 0)").unwrap();
    let err = sbmlcompose::mc2::check_probability(&model, &phi, 3, 1.0, 0.5).unwrap_err();
    assert!(err.contains("no_such_species"), "{err}");
}

#[test]
fn huge_id_collision_chains_resolve() {
    // Force a long rename chain: both models define k, k_1, k_2 with
    // different values — renames must keep probing forward, never clobber.
    let mut a = ModelBuilder::new("a").compartment("c", 1.0).build();
    let mut b = ModelBuilder::new("b").compartment("c", 1.0).build();
    for i in 0..10 {
        let id = if i == 0 { "k".to_owned() } else { format!("k_{i}") };
        a.parameters.push(sbmlcompose::model::Parameter::new(&id, i as f64));
        b.parameters.push(sbmlcompose::model::Parameter::new(&id, 100.0 + i as f64));
    }
    let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
    assert_eq!(result.model.parameters.len(), 20, "all parameters kept");
    // ids unique
    let ids: std::collections::BTreeSet<_> =
        result.model.parameters.iter().map(|p| p.id.clone()).collect();
    assert_eq!(ids.len(), 20);
}

#[test]
fn empty_vs_empty() {
    let empty = sbmlcompose::model::Model::new("e");
    let result = Composer::new(ComposeOptions::default()).compose(&empty, &empty);
    assert!(result.model.is_empty());
    assert!(result.log.events.is_empty());
}

#[test]
fn hostile_infix_nesting_errors_instead_of_overflowing() {
    // Each of these would recurse once per level in the parser; at 10k
    // levels only the explicit depth limit stands between a clean error
    // and a stack overflow.
    let n = 10_000;
    let hostile = [
        format!("{}x{}", "(".repeat(n), ")".repeat(n)),
        format!("{}x", "-".repeat(n)),
        format!("{}x", "!".repeat(n)),
        format!("{}x", "+".repeat(n)),
        format!("x{}", "^x".repeat(n)),
        format!("{}x{}", "f(".repeat(n), ")".repeat(n)),
    ];
    for formula in &hostile {
        let err = sbmlcompose::math::infix::parse(formula)
            .expect_err("hostile nesting must be rejected");
        assert!(err.to_string().contains("nesting"), "{err}");
    }
}

/// A minimal multiplicative congruential generator — deterministic
/// "randomness" without pulling in a dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn mutated_sbml_never_panics_through_parse_and_push() {
    // Serialize a well-formed model, then feed deterministic truncations
    // and byte corruptions through the full parse → prepare → push path.
    // Whatever still parses must also still compose; nothing may panic.
    let base = ModelBuilder::new("base")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .parameter("k", 0.5)
        .reaction("r", &["A"], &["B"], "k * A")
        .initial_assignment("A", "2 + 2")
        .assignment_rule("B", "A / 2")
        .constraint("A > 0", None)
        .event("e", "A > 5", &[("B", "0")])
        .build();
    let xml = write_sbml(&base);
    let bytes = xml.as_bytes();

    let mut rng = Lcg(0x5bd1e995);
    let mut parsed_ok = 0usize;
    for trial in 0..200 {
        let mutated = if trial % 2 == 0 {
            // Truncate at a pseudo-random offset.
            let cut = (rng.next() as usize) % bytes.len();
            String::from_utf8_lossy(&bytes[..cut]).into_owned()
        } else {
            // Corrupt a handful of bytes.
            let mut copy = bytes.to_vec();
            for _ in 0..1 + rng.next() % 4 {
                let at = (rng.next() as usize) % copy.len();
                copy[at] = (rng.next() % 256) as u8;
            }
            String::from_utf8_lossy(&copy).into_owned()
        };
        if let Ok(model) = parse_sbml(&mutated) {
            parsed_ok += 1;
            let options = ComposeOptions::default();
            let mut session = CompositionSession::new(&options);
            session.push_guarded(&base, None).expect("clean base push");
            session.push_guarded(&model, None).expect("mutant merges or is rejected earlier");
        }
    }
    // Sanity: the corruption actually exercised both outcomes.
    assert!(parsed_ok > 0, "some mutants must survive parsing");
    assert!(parsed_ok < 200, "some mutants must be rejected");
}

#[test]
fn budget_exhausted_push_leaves_accumulator_unchanged() {
    let a = ModelBuilder::new("a")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .parameter("k", 0.5)
        .reaction("r", &["A"], &[], "k * A")
        .build();
    let b = ModelBuilder::new("b")
        .compartment("cell", 1.0)
        .species("B", 2.0)
        .parameter("j", 0.25)
        .reaction("s", &[], &["B"], "j")
        .build();

    // Exactly enough steps for the first push; the second must exhaust.
    let options = ComposeOptions::default();
    let budget = Budget::unlimited().with_max_steps(a.component_count() as u64);
    let meter = budget.start();
    let mut session = CompositionSession::new(&options);
    session.push_guarded(&a, Some(&meter)).expect("first push fits");
    let err = session.push_guarded(&b, Some(&meter)).expect_err("second push exhausts");
    match err {
        ExecError::StepsExhausted { site, limit } => {
            assert_eq!(site, Site::Push(1));
            assert_eq!(limit, a.component_count() as u64);
        }
        other => panic!("expected steps exhaustion, got {other:?}"),
    }

    // The failed push must be invisible: same model, same log as a
    // single-push session.
    let after = session.finish();
    let reference = {
        let mut s = CompositionSession::new(&options);
        s.push_guarded(&a, None).expect("push");
        s.finish()
    };
    assert_eq!(write_sbml(&after.model), write_sbml(&reference.model));
    assert_eq!(after.log.to_text(), reference.log.to_text());
}

#[test]
fn deeply_nested_math_round_trips() {
    // 64 levels of nesting through parser, pattern, writer.
    let mut formula = String::from("x");
    for _ in 0..64 {
        formula = format!("({formula} + 1)");
    }
    let expr = sbmlcompose::math::infix::parse(&formula).unwrap();
    let pattern = sbmlcompose::math::pattern::Pattern::of(&expr);
    assert!(!pattern.as_str().is_empty());
    let xml_el = sbmlcompose::math::to_mathml(&expr);
    let back = sbmlcompose::math::parse_mathml(&xml_el).unwrap();
    assert_eq!(back, expr);
}
