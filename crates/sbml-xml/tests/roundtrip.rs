//! Property tests: arbitrary generated DOM trees must survive
//! serialize → parse → serialize unchanged.

use proptest::prelude::*;
use sbml_xml::{
    dom::{Document, Element, Node},
    writer::{write_with, WriteOptions},
};

/// Generate plausible XML names.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,11}"
}

/// Attribute/text values, including characters that require escaping.
fn value_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z').prop_map(|c| c.to_string()),
            Just("<".to_owned()),
            Just(">".to_owned()),
            Just("&".to_owned()),
            Just("\"".to_owned()),
            Just("'".to_owned()),
            Just(" ".to_owned()),
            Just("α".to_owned()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), proptest::collection::vec((name_strategy(), value_strategy()), 0..4))
        .prop_map(|(name, raw_attrs)| {
            let mut e = Element::new(name);
            for (k, v) in raw_attrs {
                e.set_attr(k, v); // dedups repeated keys
            }
            e
        });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), value_strategy()), 0..4),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    value_strategy().prop_filter("non-empty text", |v| !v.is_empty()).prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, raw_attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in raw_attrs {
                    e.set_attr(k, v);
                }
                // Adjacent text nodes merge on reparse; coalesce up front so
                // equality holds structurally.
                for node in children {
                    match (&node, e.children.last_mut()) {
                        (Node::Text(t), Some(Node::Text(prev))) => prev.push_str(t),
                        _ => e.children.push(node),
                    }
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compact_round_trip(root in element_strategy()) {
        let doc = Document { declaration: None, root };
        let opts = WriteOptions { indent: None, declaration: false };
        let text = write_with(&doc, opts);
        let reparsed = Document::parse(&text).unwrap();
        prop_assert_eq!(doc.root.clone(), reparsed.root);
        // And a second trip is byte-stable.
        let text2 = write_with(&Document::parse(&text).unwrap(), opts);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn pretty_round_trip_preserves_non_whitespace(root in element_strategy()) {
        let doc = Document { declaration: None, root };
        let pretty = write_with(&doc, WriteOptions { indent: Some(2), declaration: false });
        // Must always reparse.
        let reparsed = Document::parse(&pretty);
        prop_assert!(reparsed.is_ok(), "pretty output failed to reparse: {pretty}");
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,256}") {
        let _ = Document::parse(&input); // may error, must not panic
    }

    #[test]
    fn parser_never_panics_on_tag_soup(input in "[<>&;a-z \"'=/!-]{0,128}") {
        let _ = Document::parse(&input);
    }
}

