//! Pull tokenizer for the XML subset used by SBML.
//!
//! The tokenizer walks the input string once and yields [`Token`]s. It owns
//! no allocation for the input; token payloads are owned `String`s because
//! entity unescaping may rewrite them anyway and because the DOM stores owned
//! data (SBML merge mutates the tree in place).

use crate::error::{Position, XmlError};
use crate::escape::unescape;

/// One lexical event in an XML document.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<?xml version="1.0" ...?>` — payload is the raw pseudo-attribute text.
    Declaration {
        /// Raw text between `<?xml` and `?>`.
        content: String,
        /// Start position.
        at: Position,
    },
    /// An opening tag, possibly self-closing (`<a x="1">` or `<a/>`).
    StartTag {
        /// Qualified element name (prefix preserved).
        name: String,
        /// Attributes in document order, values already unescaped.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
        /// Start position of `<`.
        at: Position,
    },
    /// A closing tag `</a>`.
    EndTag {
        /// Qualified element name.
        name: String,
        /// Start position of `<`.
        at: Position,
    },
    /// Character data between tags, already unescaped.
    Text {
        /// Unescaped content.
        content: String,
        /// Start position of the run.
        at: Position,
    },
    /// `<![CDATA[...]]>` content, verbatim.
    CData {
        /// Verbatim content.
        content: String,
        /// Start position of `<`.
        at: Position,
    },
    /// `<!-- ... -->` content, verbatim.
    Comment {
        /// Verbatim content.
        content: String,
        /// Start position of `<`.
        at: Position,
    },
    /// `<?target data?>` (other than the XML declaration).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
        /// Start position of `<`.
        at: Position,
    },
    /// A `<!DOCTYPE ...>` that was recognised and skipped.
    DoctypeSkipped {
        /// Start position of `<`.
        at: Position,
    },
}

impl Token {
    /// The source position where this token starts.
    pub fn position(&self) -> Position {
        match self {
            Token::Declaration { at, .. }
            | Token::StartTag { at, .. }
            | Token::EndTag { at, .. }
            | Token::Text { at, .. }
            | Token::CData { at, .. }
            | Token::Comment { at, .. }
            | Token::ProcessingInstruction { at, .. }
            | Token::DoctypeSkipped { at } => *at,
        }
    }
}

/// Streaming tokenizer over a borrowed input string.
pub struct Tokenizer<'a> {
    input: &'a str,
    /// Byte offset of the cursor.
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0, line: 1, column: 1 }
    }

    /// Current position (1-based line/column).
    pub fn current_position(&self) -> Position {
        Position { line: self.line, column: self.column }
    }

    /// True when the whole input has been consumed.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn advance_bytes(&mut self, n: usize) {
        // Only called with n on a char boundary within rest().
        let taken = &self.input[self.pos..self.pos + n];
        for c in taken.chars() {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, expected: char, what: &'static str) -> Result<(), XmlError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(XmlError::UnexpectedChar {
                found: c,
                expected: what,
                at: self.current_position(),
            }),
            None => Err(XmlError::UnexpectedEof { context: what, at: self.current_position() }),
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c,
                    expected: "a name",
                    at: self.current_position(),
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof { context: "a name", at: self.current_position() })
            }
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    /// Pull the next token, or `Ok(None)` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, XmlError> {
        if self.at_eof() {
            return Ok(None);
        }
        let at = self.current_position();
        if self.peek() != Some('<') {
            return self.read_text(at).map(Some);
        }
        // A markup construct.
        let rest = self.rest();
        if rest.starts_with("<!--") {
            return self.read_comment(at).map(Some);
        }
        if rest.starts_with("<![CDATA[") {
            return self.read_cdata(at).map(Some);
        }
        if rest.starts_with("<!DOCTYPE") {
            return self.read_doctype(at).map(Some);
        }
        if rest.starts_with("<?") {
            return self.read_pi(at).map(Some);
        }
        if rest.starts_with("</") {
            return self.read_end_tag(at).map(Some);
        }
        self.read_start_tag(at).map(Some)
    }

    fn read_text(&mut self, at: Position) -> Result<Token, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '<' {
                break;
            }
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        let content = unescape(raw, at)?;
        Ok(Token::Text { content, at })
    }

    fn read_comment(&mut self, at: Position) -> Result<Token, XmlError> {
        self.advance_bytes(4); // "<!--"
        let Some(end) = self.rest().find("-->") else {
            return Err(XmlError::UnexpectedEof { context: "a comment", at });
        };
        let content = self.rest()[..end].to_owned();
        self.advance_bytes(end + 3);
        Ok(Token::Comment { content, at })
    }

    fn read_cdata(&mut self, at: Position) -> Result<Token, XmlError> {
        self.advance_bytes(9); // "<![CDATA["
        let Some(end) = self.rest().find("]]>") else {
            return Err(XmlError::UnexpectedEof { context: "a CDATA section", at });
        };
        let content = self.rest()[..end].to_owned();
        self.advance_bytes(end + 3);
        Ok(Token::CData { content, at })
    }

    fn read_doctype(&mut self, at: Position) -> Result<Token, XmlError> {
        self.advance_bytes(9); // "<!DOCTYPE"
        // Skip to the matching '>', tracking '[' ... ']' internal subsets.
        let mut depth = 0i32;
        loop {
            match self.bump() {
                Some('[') => depth += 1,
                Some(']') => depth -= 1,
                Some('>') if depth <= 0 => break,
                Some(_) => {}
                None => {
                    return Err(XmlError::UnexpectedEof { context: "a DOCTYPE", at });
                }
            }
        }
        Ok(Token::DoctypeSkipped { at })
    }

    fn read_pi(&mut self, at: Position) -> Result<Token, XmlError> {
        self.advance_bytes(2); // "<?"
        let target = self.read_name()?;
        let Some(end) = self.rest().find("?>") else {
            return Err(XmlError::UnexpectedEof { context: "a processing instruction", at });
        };
        let data = self.rest()[..end].trim().to_owned();
        self.advance_bytes(end + 2);
        if target.eq_ignore_ascii_case("xml") {
            Ok(Token::Declaration { content: data, at })
        } else {
            Ok(Token::ProcessingInstruction { target, data, at })
        }
    }

    fn read_end_tag(&mut self, at: Position) -> Result<Token, XmlError> {
        self.advance_bytes(2); // "</"
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat('>', "'>' closing an end tag")?;
        Ok(Token::EndTag { name, at })
    }

    fn read_start_tag(&mut self, at: Position) -> Result<Token, XmlError> {
        self.eat('<', "'<'")?;
        let name = self.read_name()?;
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    return Ok(Token::StartTag { name, attrs, self_closing: false, at });
                }
                Some('/') => {
                    self.bump();
                    self.eat('>', "'>' after '/'")?;
                    return Ok(Token::StartTag { name, attrs, self_closing: true, at });
                }
                Some(c) if is_name_start(c) => {
                    let attr_at = self.current_position();
                    let key = self.read_name()?;
                    self.skip_whitespace();
                    self.eat('=', "'=' in an attribute")?;
                    self.skip_whitespace();
                    let value = self.read_attr_value(attr_at)?;
                    if attrs.iter().any(|(k, _)| k == &key) {
                        return Err(XmlError::DuplicateAttribute { name: key, at: attr_at });
                    }
                    attrs.push((key, value));
                }
                Some(c) => {
                    return Err(XmlError::UnexpectedChar {
                        found: c,
                        expected: "an attribute, '>' or '/>'",
                        at: self.current_position(),
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEof { context: "a start tag", at });
                }
            }
        }
    }

    fn read_attr_value(&mut self, attr_at: Position) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c,
                    expected: "a quoted attribute value",
                    at: self.current_position(),
                })
            }
            None => {
                return Err(XmlError::UnexpectedEof {
                    context: "an attribute value",
                    at: self.current_position(),
                })
            }
        };
        self.bump();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = &self.input[start..self.pos];
                let value = unescape(raw, attr_at)?;
                self.bump();
                return Ok(value);
            }
            self.bump();
        }
        Err(XmlError::UnexpectedEof { context: "an attribute value", at: attr_at })
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Result<Token, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token().transpose()
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(input: &str) -> Vec<Token> {
        Tokenizer::new(input).collect::<Result<Vec<_>, _>>().unwrap()
    }

    #[test]
    fn simple_element() {
        let toks = all("<a>hi</a>");
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[0], Token::StartTag { name, self_closing: false, .. } if name == "a"));
        assert!(matches!(&toks[1], Token::Text { content, .. } if content == "hi"));
        assert!(matches!(&toks[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn self_closing_with_attrs() {
        let toks = all(r#"<species id="A" name="glucose"/>"#);
        match &toks[0] {
            Token::StartTag { name, attrs, self_closing, .. } => {
                assert_eq!(name, "species");
                assert!(*self_closing);
                assert_eq!(attrs[0], ("id".to_owned(), "A".to_owned()));
                assert_eq!(attrs[1], ("name".to_owned(), "glucose".to_owned()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn attr_value_entities_unescaped() {
        let toks = all(r#"<p v="a&lt;b&amp;c"/>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "a<b&c"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn single_quoted_attr() {
        let toks = all(r#"<p v='x "y"'/>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "x \"y\""),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn declaration_and_pi() {
        let toks = all("<?xml version=\"1.0\"?><?mypi some data?><r/>");
        assert!(matches!(&toks[0], Token::Declaration { content, .. } if content.contains("version")));
        assert!(
            matches!(&toks[1], Token::ProcessingInstruction { target, data, .. } if target == "mypi" && data == "some data")
        );
    }

    #[test]
    fn comment_and_cdata() {
        let toks = all("<r><!-- a <comment> --><![CDATA[x < y && z]]></r>");
        assert!(matches!(&toks[1], Token::Comment { content, .. } if content == " a <comment> "));
        assert!(matches!(&toks[2], Token::CData { content, .. } if content == "x < y && z"));
    }

    #[test]
    fn doctype_skipped_with_subset() {
        let toks = all("<!DOCTYPE sbml [ <!ENTITY x \"y\"> ]><r/>");
        assert!(matches!(&toks[0], Token::DoctypeSkipped { .. }));
        assert!(matches!(&toks[1], Token::StartTag { .. }));
    }

    #[test]
    fn positions_tracked_across_lines() {
        let mut t = Tokenizer::new("<a>\n  <b/>\n</a>");
        let _ = t.next_token().unwrap(); // <a>
        let _ = t.next_token().unwrap(); // text
        let tok = t.next_token().unwrap().unwrap(); // <b/>
        assert_eq!(tok.position(), Position::new(2, 3));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Tokenizer::new(r#"<a x="1" x="2"/>"#)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(matches!(err, XmlError::DuplicateAttribute { ref name, .. } if name == "x"));
    }

    #[test]
    fn eof_errors() {
        for bad in ["<a", "<a href=", "<a href=\"x", "<!-- never closed", "<![CDATA[open", "</"] {
            let res = Tokenizer::new(bad).collect::<Result<Vec<_>, _>>();
            assert!(res.is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let toks = all(r#"<math xmlns="http://www.w3.org/1998/Math/MathML"><m:ci xmlns:m="u">x</m:ci></math>"#);
        assert!(matches!(&toks[1], Token::StartTag { name, .. } if name == "m:ci"));
    }

    #[test]
    fn unicode_text() {
        let toks = all("<a>αβγ→δ</a>");
        assert!(matches!(&toks[1], Token::Text { content, .. } if content == "αβγ→δ"));
    }

    #[test]
    fn bad_entity_in_text() {
        let err = Tokenizer::new("<a>&nope;</a>").collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(matches!(err, XmlError::BadEntity { .. }));
    }
}
