//! An ordered-attribute DOM built from the token stream.
//!
//! SBML merging (the paper's Fig. 4/5 algorithms) repeatedly navigates and
//! mutates element trees, so [`Element`] keeps attributes in document order
//! in a `Vec` (SBML elements have few attributes; linear scans beat hashing)
//! and exposes builder-style constructors used heavily by `sbml-model`.

use crate::error::{Position, XmlError};
use crate::tokenizer::{Token, Tokenizer};

/// A node in the element tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A run of character data (already unescaped).
    Text(String),
    /// A CDATA section (kept verbatim, serialized back as CDATA).
    CData(String),
    /// A comment.
    Comment(String),
}

impl Node {
    /// This node as an element, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// This node as a mutable element, if it is one.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Text payload of text/CDATA nodes.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: qualified name, ordered attributes, ordered children.
///
/// Equality is structural — `position` (provenance only) is ignored.
#[derive(Debug, Clone, Default)]
pub struct Element {
    /// Qualified tag name (namespace prefix preserved verbatim).
    pub name: String,
    /// Attributes in document order; values are unescaped.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
    /// Source position of the opening tag (`Position::START` for built trees).
    pub position: Position,
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.attrs == other.attrs && self.children == other.children
    }
}

impl Eq for Element {}

impl Element {
    /// Create an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            position: Position::START,
        }
    }

    /// Builder: add an attribute.
    #[must_use]
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Builder: append a child element.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: append a text node.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Set (replace or append) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Remove an attribute; returns its previous value if present.
    pub fn remove_attr(&mut self, key: &str) -> Option<String> {
        let idx = self.attrs.iter().position(|(k, _)| k == key)?;
        Some(self.attrs.remove(idx).1)
    }

    /// Iterate over element children only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterate mutably over element children only.
    pub fn child_elements_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.children.iter_mut().filter_map(Node::as_element_mut)
    }

    /// First element child with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// First element child with the given tag name (mutable).
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.child_elements_mut().find(|e| e.name == name)
    }

    /// All element children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Depth-first iterator over all descendant elements (not including
    /// `self`) whose name matches.
    pub fn find_descendants<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        let mut stack: Vec<&Element> = self.child_elements().collect();
        stack.reverse();
        std::iter::from_fn(move || {
            while let Some(e) = stack.pop() {
                let mut kids: Vec<&Element> = e.child_elements().collect();
                kids.reverse();
                stack.extend(kids);
                if e.name == name {
                    return Some(e);
                }
            }
            None
        })
    }

    /// Append a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Concatenated text content of all text/CDATA descendants.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for node in &self.children {
            match node {
                Node::Text(t) | Node::CData(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
                Node::Comment(_) => {}
            }
        }
    }

    /// Number of elements in the subtree rooted here (including `self`).
    pub fn subtree_size(&self) -> usize {
        1 + self.child_elements().map(Element::subtree_size).sum::<usize>()
    }

    /// True when the element has no attributes and no non-comment children.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
            && self
                .children
                .iter()
                .all(|n| matches!(n, Node::Comment(_)) || matches!(n, Node::Text(t) if t.trim().is_empty()))
    }
}

/// A parsed document: optional XML declaration plus a single root element.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Raw pseudo-attribute text of the `<?xml ...?>` declaration, if present.
    pub declaration: Option<String>,
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wrap an element as a document with the standard declaration.
    pub fn with_root(root: Element) -> Self {
        Document {
            declaration: Some("version=\"1.0\" encoding=\"UTF-8\"".to_owned()),
            root,
        }
    }

    /// Parse a full document from text.
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        let mut tokens = Tokenizer::new(input);
        let mut declaration = None;
        let mut root: Option<Element> = None;
        // Stack of open elements; the bottom one becomes the root.
        let mut stack: Vec<Element> = Vec::new();

        while let Some(token) = tokens.next_token()? {
            match token {
                Token::Declaration { content, .. } => declaration = Some(content),
                Token::DoctypeSkipped { .. } | Token::ProcessingInstruction { .. } => {}
                Token::Comment { content, .. } => {
                    if let Some(open) = stack.last_mut() {
                        open.children.push(Node::Comment(content));
                    }
                    // Comments in the prolog/epilog are dropped.
                }
                Token::Text { content, at } => {
                    if let Some(open) = stack.last_mut() {
                        open.children.push(Node::Text(content));
                    } else if !content.trim().is_empty() {
                        return Err(XmlError::ContentOutsideRoot { at });
                    }
                }
                Token::CData { content, at } => {
                    if let Some(open) = stack.last_mut() {
                        open.children.push(Node::CData(content));
                    } else {
                        return Err(XmlError::ContentOutsideRoot { at });
                    }
                }
                Token::StartTag { name, attrs, self_closing, at } => {
                    if root.is_some() && stack.is_empty() {
                        return Err(XmlError::MultipleRoots { at });
                    }
                    let element = Element { name, attrs, children: Vec::new(), position: at };
                    if self_closing {
                        Self::close(element, &mut stack, &mut root);
                    } else {
                        stack.push(element);
                    }
                }
                Token::EndTag { name, at } => {
                    let Some(open) = stack.pop() else {
                        return Err(XmlError::UnopenedTag { name, at });
                    };
                    if open.name != name {
                        return Err(XmlError::MismatchedTag { open: open.name, close: name, at });
                    }
                    Self::close(open, &mut stack, &mut root);
                }
            }
        }

        if let Some(open) = stack.pop() {
            return Err(XmlError::UnclosedTag { name: open.name, at: open.position });
        }
        let Some(root) = root else {
            return Err(XmlError::NoRootElement);
        };
        Ok(Document { declaration, root })
    }

    fn close(done: Element, stack: &mut [Element], root: &mut Option<Element>) {
        if let Some(parent) = stack.last_mut() {
            parent.children.push(Node::Element(done));
        } else {
            *root = Some(done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nested() {
        let doc = Document::parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children_named("b").count(), 2);
        assert!(doc.root.child("b").unwrap().child("c").is_some());
    }

    #[test]
    fn declaration_captured() {
        let doc = Document::parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r/>").unwrap();
        assert!(doc.declaration.unwrap().contains("UTF-8"));
    }

    #[test]
    fn attribute_helpers() {
        let mut e = Element::new("species").with_attr("id", "A").with_attr("name", "glc");
        assert_eq!(e.attr("id"), Some("A"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("id", "B");
        assert_eq!(e.attr("id"), Some("B"));
        assert_eq!(e.attrs.len(), 2, "set_attr must replace, not append");
        assert_eq!(e.remove_attr("name"), Some("glc".to_owned()));
        assert_eq!(e.remove_attr("name"), None);
    }

    #[test]
    fn text_concatenation() {
        let doc = Document::parse("<p>a<b>b</b>c<!-- skip --><![CDATA[d]]></p>").unwrap();
        assert_eq!(doc.root.text(), "abcd");
    }

    #[test]
    fn find_descendants_depth_first_document_order() {
        let doc = Document::parse(
            "<m><l1><s id='1'/><s id='2'/></l1><l2><x><s id='3'/></x></l2></m>",
        )
        .unwrap();
        let ids: Vec<_> = doc.root.find_descendants("s").filter_map(|e| e.attr("id")).collect();
        assert_eq!(ids, ["1", "2", "3"]);
    }

    #[test]
    fn subtree_size_counts_elements() {
        let doc = Document::parse("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(doc.root.subtree_size(), 4);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            Document::parse("<a><b></a></b>").unwrap_err(),
            XmlError::MismatchedTag { .. }
        ));
        assert!(matches!(Document::parse("<a>").unwrap_err(), XmlError::UnclosedTag { .. }));
        assert!(matches!(Document::parse("</a>").unwrap_err(), XmlError::UnopenedTag { .. }));
    }

    #[test]
    fn root_constraints() {
        assert!(matches!(Document::parse("  \n ").unwrap_err(), XmlError::NoRootElement));
        assert!(matches!(
            Document::parse("<a/><b/>").unwrap_err(),
            XmlError::MultipleRoots { .. }
        ));
        assert!(matches!(
            Document::parse("stray<a/>").unwrap_err(),
            XmlError::ContentOutsideRoot { .. }
        ));
    }

    #[test]
    fn prolog_comment_and_doctype_ok() {
        let doc =
            Document::parse("<!-- header --><!DOCTYPE sbml><r><!-- kept --></r>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
        assert!(matches!(&doc.root.children[0], Node::Comment(c) if c == " kept "));
    }

    #[test]
    fn is_empty() {
        assert!(Element::new("x").is_empty());
        assert!(Document::parse("<x>  \n </x>").unwrap().root.is_empty());
        assert!(!Element::new("x").with_attr("a", "1").is_empty());
        assert!(!Element::new("x").with_text("t").is_empty());
    }

    #[test]
    fn whitespace_text_inside_elements_preserved() {
        let doc = Document::parse("<a> <b/> </a>").unwrap();
        // two whitespace text nodes plus the element
        assert_eq!(doc.root.children.len(), 3);
    }
}
