//! XML entity escaping and unescaping.
//!
//! Supports the five predefined entities (`&lt; &gt; &amp; &apos; &quot;`)
//! plus decimal (`&#38;`) and hexadecimal (`&#x26;`) character references,
//! which appear in real BioModels SBML files inside notes and names.

use crate::error::{Position, XmlError};

/// Escape text content: `&`, `<`, `>` are replaced. Quotes are left alone,
/// which is valid in text nodes and keeps output readable.
pub fn escape_text(s: &str) -> String {
    escape(s, false)
}

/// Escape an attribute value for inclusion in double quotes:
/// `&`, `<`, `>`, `"` are replaced.
pub fn escape_attr(s: &str) -> String {
    escape(s, true)
}

fn escape(s: &str, quotes: bool) -> String {
    // Fast path: no escapable characters at all (the common case for ids).
    if !s
        .bytes()
        .any(|b| b == b'&' || b == b'<' || b == b'>' || (quotes && (b == b'"' || b == b'\'')))
    {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if quotes => out.push_str("&quot;"),
            '\'' if quotes => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolve a single entity body (the text between `&` and `;`).
///
/// Returns `None` for unknown names or malformed character references.
pub fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = body.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Unescape a run of character data, resolving entity references.
///
/// `at` is the position of the start of `s`, used for error reporting only
/// (column arithmetic inside the run is approximate for multi-line runs; the
/// tokenizer always reports the run start).
pub fn unescape(s: &str, at: Position) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(XmlError::BadEntity { entity: truncate(after), at });
        };
        let body = &after[..semi];
        // Entity bodies are short; anything long is certainly malformed.
        if body.len() > 12 {
            return Err(XmlError::BadEntity { entity: truncate(body), at });
        }
        let Some(c) = resolve_entity(body) else {
            return Err(XmlError::BadEntity { entity: body.to_owned(), at });
        };
        out.push(c);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

fn truncate(s: &str) -> String {
    s.chars().take(16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basics() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
        // Quotes untouched in text context.
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&apos;c");
        assert_eq!(escape_attr("x<y"), "x&lt;y");
    }

    #[test]
    fn resolve_named_entities() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("nbsp"), None);
    }

    #[test]
    fn resolve_numeric_entities() {
        assert_eq!(resolve_entity("#38"), Some('&'));
        assert_eq!(resolve_entity("#x26"), Some('&'));
        assert_eq!(resolve_entity("#X26"), Some('&'));
        assert_eq!(resolve_entity("#x3B1"), Some('α'));
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        // Surrogate code points are not chars.
        assert_eq!(resolve_entity("#xD800"), None);
    }

    #[test]
    fn unescape_round_trip() {
        let original = "k1 < k2 & \"rate\" 'x' α";
        let escaped = escape_attr(original);
        let back = unescape(&escaped, Position::START).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unescape_plain_fast_path() {
        assert_eq!(unescape("no entities", Position::START).unwrap(), "no entities");
    }

    #[test]
    fn unescape_errors() {
        assert!(unescape("&unterminated", Position::START).is_err());
        assert!(unescape("&bogus;", Position::START).is_err());
        assert!(unescape("&waytoolongentityname;", Position::START).is_err());
    }

    #[test]
    fn unescape_mixed_content() {
        assert_eq!(
            unescape("a&lt;b&#32;c&gt;d", Position::START).unwrap(),
            "a<b c>d"
        );
    }
}
