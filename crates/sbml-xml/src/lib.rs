//! From-scratch XML parsing and serialization for SBML documents.
//!
//! The EDBT 2010 paper ("Biochemical network matching and composition")
//! operates on biochemical models encoded in SBML, an XML dialect. The Rust
//! ecosystem has no SBML-aware XML layer, so this crate provides one built
//! from first principles:
//!
//! * [`tokenizer`] — a pull tokenizer producing a stream of
//!   [`tokenizer::Token`]s with line/column positions,
//! * [`dom`] — an ordered-attribute DOM ([`Element`]/[`Node`]) built from the
//!   token stream, with navigation and mutation helpers tailored to the merge
//!   algorithms in `sbml-compose`,
//! * [`writer`] — compact and pretty serializers that round-trip documents,
//! * [`escape`] — entity escaping/unescaping including numeric character
//!   references.
//!
//! The parser is deliberately a *subset* of XML 1.0 sufficient for SBML and
//! MathML: elements, attributes, text, CDATA, comments, processing
//! instructions and the XML declaration. DOCTYPE internal subsets are
//! skipped. Namespace prefixes are preserved verbatim in names (SBML merging
//! compares qualified names textually, so prefix-rewriting is not needed).
//!
//! # Example
//!
//! ```
//! use sbml_xml::parse_document;
//!
//! let doc = parse_document(
//!     "<model id=\"m1\"><listOfSpecies><species id=\"A\"/></listOfSpecies></model>",
//! )
//! .unwrap();
//! assert_eq!(doc.root.name, "model");
//! assert_eq!(doc.root.attr("id"), Some("m1"));
//! assert_eq!(doc.root.find_descendants("species").count(), 1);
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod tokenizer;
pub mod writer;

pub use dom::{Document, Element, Node};
pub use error::{Position, XmlError};
pub use tokenizer::{Token, Tokenizer};
pub use writer::{write_compact, write_pretty, WriteOptions};

/// Parse a complete XML document into a DOM [`Document`].
///
/// Returns an error when the input is not well formed (mismatched tags,
/// bad entities, stray content after the root element, ...).
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    dom::Document::parse(input)
}

/// Parse a single XML element (fragment); leading/trailing whitespace,
/// comments and processing instructions around it are permitted.
pub fn parse_element(input: &str) -> Result<Element, XmlError> {
    Ok(dom::Document::parse(input)?.root)
}
