//! Error and source-position types for the XML layer.

use std::fmt;

/// A line/column position inside the source text (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters, not bytes).
    pub column: u32,
}

impl Position {
    /// The start of a document.
    pub const START: Position = Position { line: 1, column: 1 };

    /// Create a position.
    pub fn new(line: u32, column: u32) -> Self {
        Position { line, column }
    }
}

impl Default for Position {
    fn default() -> Self {
        Position::START
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while tokenizing or building a DOM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was reading when input ran out.
        context: &'static str,
        /// Where the construct started.
        at: Position,
    },
    /// A character that cannot start/continue the current construct.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// What was expected instead.
        expected: &'static str,
        /// Where the character was found.
        at: Position,
    },
    /// `</b>` closing `<a>`.
    MismatchedTag {
        /// Name of the element that was open.
        open: String,
        /// Name found in the closing tag.
        close: String,
        /// Position of the closing tag.
        at: Position,
    },
    /// A closing tag with no matching open element.
    UnopenedTag {
        /// Name found in the stray closing tag.
        name: String,
        /// Position of the closing tag.
        at: Position,
    },
    /// Elements left open at end of input.
    UnclosedTag {
        /// Name of the innermost unclosed element.
        name: String,
        /// Where it was opened.
        at: Position,
    },
    /// An attribute appeared twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
        /// Position of the second occurrence.
        at: Position,
    },
    /// `&name;` with an unknown entity name, or a malformed reference.
    BadEntity {
        /// The raw entity text (without `&`/`;`).
        entity: String,
        /// Position of the reference.
        at: Position,
    },
    /// Non-whitespace content outside the root element.
    ContentOutsideRoot {
        /// Position of the stray content.
        at: Position,
    },
    /// The document contains no root element at all.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots {
        /// Position of the second root.
        at: Position,
    },
}

impl XmlError {
    /// The source position most relevant to the error, if known.
    pub fn position(&self) -> Option<Position> {
        match self {
            XmlError::UnexpectedEof { at, .. }
            | XmlError::UnexpectedChar { at, .. }
            | XmlError::MismatchedTag { at, .. }
            | XmlError::UnopenedTag { at, .. }
            | XmlError::UnclosedTag { at, .. }
            | XmlError::DuplicateAttribute { at, .. }
            | XmlError::BadEntity { at, .. }
            | XmlError::ContentOutsideRoot { at }
            | XmlError::MultipleRoots { at } => Some(*at),
            XmlError::NoRootElement => None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context, at } => {
                write!(f, "{at}: unexpected end of input while reading {context}")
            }
            XmlError::UnexpectedChar { found, expected, at } => {
                write!(f, "{at}: unexpected character {found:?}, expected {expected}")
            }
            XmlError::MismatchedTag { open, close, at } => {
                write!(f, "{at}: closing tag </{close}> does not match open element <{open}>")
            }
            XmlError::UnopenedTag { name, at } => {
                write!(f, "{at}: closing tag </{name}> has no matching open element")
            }
            XmlError::UnclosedTag { name, at } => {
                write!(f, "{at}: element <{name}> is never closed")
            }
            XmlError::DuplicateAttribute { name, at } => {
                write!(f, "{at}: duplicate attribute {name:?}")
            }
            XmlError::BadEntity { entity, at } => {
                write!(f, "{at}: unknown or malformed entity reference &{entity};")
            }
            XmlError::ContentOutsideRoot { at } => {
                write!(f, "{at}: non-whitespace content outside the root element")
            }
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::MultipleRoots { at } => {
                write!(f, "{at}: document has more than one root element")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(3, 14).to_string(), "3:14");
        assert_eq!(Position::START.to_string(), "1:1");
        assert_eq!(Position::default(), Position::START);
    }

    #[test]
    fn error_display_mentions_position() {
        let e = XmlError::MismatchedTag {
            open: "a".into(),
            close: "b".into(),
            at: Position::new(2, 5),
        };
        let s = e.to_string();
        assert!(s.contains("2:5"), "{s}");
        assert!(s.contains("</b>"), "{s}");
        assert!(s.contains("<a>"), "{s}");
    }

    #[test]
    fn position_accessor() {
        assert_eq!(XmlError::NoRootElement.position(), None);
        let e = XmlError::ContentOutsideRoot { at: Position::new(9, 1) };
        assert_eq!(e.position(), Some(Position::new(9, 1)));
    }
}
