//! VF2-style subgraph monomorphism search over [`MatchGraph`]s.
//!
//! An **embedding** of a query graph `Q` into a target graph `G` is an
//! injective node map `m` such that every query node is key-compatible
//! with its image and every query edge `(u, v, k)` has *some* target edge
//! `(m(u), m(v), k')` with `k = k'` (a multigraph may satisfy several
//! parallel query edges with one target edge — "the query network occurs
//! in the model", not an induced or edge-injective isomorphism).
//!
//! The search follows the VF2 discipline: grow a partial map one query
//! node at a time in a connectivity-first order, generate candidates from
//! the already-mapped neighbourhood (falling back to the target's
//! node-key index for the first node of each component), and backtrack on
//! the first infeasibility. Two cheap whole-graph rejections run first —
//! the pigeonhole test (each node key needs at least as many carriers in
//! the target as in the query) and the edge-key test (every query edge
//! key must occur in the target at all).
//!
//! The search is deterministic (candidates ascend by target node id) and
//! bounded by a step `budget`; an exhausted budget reports
//! [`SearchOutcome::BudgetExhausted`] rather than looping on adversarial
//! self-similar graphs. [`find_embedding_limited`] additionally accepts a
//! wall-clock deadline ([`SearchLimits`]), checked every
//! [`DEADLINE_CHECK_INTERVAL`] steps, which exhausts the search the same
//! way — the outcome vocabulary stays the same, only the cause differs.

use std::time::Instant;

use crate::graph::MatchGraph;

/// Result of one embedding search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// An embedding exists; `mapping[q]` is the target node of query
    /// node `q`.
    Found(Vec<u32>),
    /// No embedding exists.
    NotFound,
    /// The step budget (or the wall-clock deadline of
    /// [`SearchLimits`]) ran out before the search space was exhausted.
    BudgetExhausted,
}

/// Steps between wall-clock checks in a deadline-bounded search: rare
/// enough that `Instant::now()` never shows up in profiles, frequent
/// enough to bound overrun to microseconds of feasibility work.
pub const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// Resource limits for one embedding search.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Feasibility-step budget (as in [`find_embedding`]).
    pub budget: u64,
    /// Optional absolute wall-clock cutoff.
    pub deadline: Option<Instant>,
}

impl SearchOutcome {
    /// The mapping, if an embedding was found.
    pub fn mapping(&self) -> Option<&[u32]> {
        match self {
            SearchOutcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

/// Search order: start each connected component at its node with the
/// fewest target candidates, then grow connectivity-first (most mapped
/// neighbours first; ties by fewer target candidates, then by node id).
fn search_order(query: &MatchGraph, target: &MatchGraph) -> Vec<u32> {
    let n = query.node_count();
    let mut ordered: Vec<u32> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let candidates = |q: u32| target.nodes_with_key(query.node_key(q)).len();
    while ordered.len() < n {
        // Mapped-neighbour counts of every unplaced node.
        let mut best: Option<(usize, usize, u32)> = None; // (-connectivity, candidates, id)
        for q in 0..n as u32 {
            if placed[q as usize] {
                continue;
            }
            let connectivity = query
                .out_edges(q)
                .iter()
                .chain(query.in_edges(q))
                .filter(|(nbr, _)| placed[*nbr as usize])
                .count();
            let score = (usize::MAX - connectivity, candidates(q), q);
            if best.map_or(true, |b| score < b) {
                best = Some(score);
            }
        }
        let (_, _, q) = best.expect("unplaced node exists");
        placed[q as usize] = true;
        ordered.push(q);
    }
    ordered
}

struct Search<'a> {
    query: &'a MatchGraph,
    target: &'a MatchGraph,
    order: &'a [u32],
    /// query node → target node (u32::MAX = unmapped).
    mapping: Vec<u32>,
    used: Vec<bool>,
    budget: u64,
    deadline: Option<Instant>,
    /// Steps until the next deadline check.
    until_check: u64,
}

const UNMAPPED: u32 = u32::MAX;

impl Search<'_> {
    /// Is mapping `qn → tn` consistent with the partial map?
    fn feasible(&mut self, qn: u32, tn: u32) -> bool {
        if self.used[tn as usize] || self.query.node_key(qn) != self.target.node_key(tn) {
            return false;
        }
        // Every query edge between qn and an already-mapped node (or qn
        // itself — a self-loop) needs a key-equal target edge between the
        // images.
        for &(nbr, e) in self.query.out_edges(qn) {
            let t_nbr = if nbr == qn { tn } else { self.mapping[nbr as usize] };
            if t_nbr == UNMAPPED {
                continue;
            }
            let key = &self.query.edge(e).key;
            if !self
                .target
                .out_edges(tn)
                .iter()
                .any(|&(t2, te)| t2 == t_nbr && &self.target.edge(te).key == key)
            {
                return false;
            }
        }
        for &(nbr, e) in self.query.in_edges(qn) {
            if nbr == qn {
                continue; // self-loop already checked from the out side
            }
            let t_nbr = self.mapping[nbr as usize];
            if t_nbr == UNMAPPED {
                continue;
            }
            let key = &self.query.edge(e).key;
            if !self
                .target
                .in_edges(tn)
                .iter()
                .any(|&(t2, te)| t2 == t_nbr && &self.target.edge(te).key == key)
            {
                return false;
            }
        }
        true
    }

    /// Candidate target nodes for query node `qn`, ascending: the
    /// key-compatible neighbourhood of a mapped query neighbour when one
    /// exists (the smallest such adjacency list), the node-key index
    /// otherwise.
    fn candidates(&self, qn: u32) -> Vec<u32> {
        let mut anchored: Option<Vec<u32>> = None;
        for &(nbr, _) in self.query.out_edges(qn) {
            if nbr == qn || self.mapping[nbr as usize] == UNMAPPED {
                continue;
            }
            let from_t = self.target.in_edges(self.mapping[nbr as usize]);
            if anchored.as_ref().map_or(true, |a| from_t.len() < a.len()) {
                anchored = Some(from_t.iter().map(|&(n, _)| n).collect());
            }
        }
        for &(nbr, _) in self.query.in_edges(qn) {
            if nbr == qn || self.mapping[nbr as usize] == UNMAPPED {
                continue;
            }
            let from_t = self.target.out_edges(self.mapping[nbr as usize]);
            if anchored.as_ref().map_or(true, |a| from_t.len() < a.len()) {
                anchored = Some(from_t.iter().map(|&(n, _)| n).collect());
            }
        }
        let mut cands = match anchored {
            Some(c) => c,
            None => self.target.nodes_with_key(self.query.node_key(qn)).to_vec(),
        };
        cands.sort_unstable();
        cands.dedup();
        cands
    }

    /// Extend the partial map at `depth`; `Ok(true)` = embedding
    /// completed, `Err(())` = budget exhausted.
    fn extend(&mut self, depth: usize) -> Result<bool, ()> {
        if depth == self.order.len() {
            return Ok(true);
        }
        let qn = self.order[depth];
        for tn in self.candidates(qn) {
            if self.budget == 0 {
                return Err(());
            }
            self.budget -= 1;
            if let Some(deadline) = self.deadline {
                self.until_check = self.until_check.saturating_sub(1);
                if self.until_check == 0 {
                    if Instant::now() >= deadline {
                        return Err(());
                    }
                    self.until_check = DEADLINE_CHECK_INTERVAL;
                }
            }
            if !self.feasible(qn, tn) {
                continue;
            }
            self.mapping[qn as usize] = tn;
            self.used[tn as usize] = true;
            let done = self.extend(depth + 1)?;
            if done {
                return Ok(true);
            }
            self.mapping[qn as usize] = UNMAPPED;
            self.used[tn as usize] = false;
        }
        Ok(false)
    }
}

/// Search for an embedding of `query` in `target` within `budget`
/// feasibility steps; see the [module docs](self).
pub fn find_embedding(query: &MatchGraph, target: &MatchGraph, budget: u64) -> SearchOutcome {
    find_embedding_limited(query, target, SearchLimits { budget, deadline: None })
}

/// [`find_embedding`] under full [`SearchLimits`]: a step budget plus an
/// optional wall-clock deadline. A passed deadline reports
/// [`SearchOutcome::BudgetExhausted`], exactly like an exhausted step
/// budget — callers degrade the same way for both.
pub fn find_embedding_limited(
    query: &MatchGraph,
    target: &MatchGraph,
    limits: SearchLimits,
) -> SearchOutcome {
    let SearchLimits { budget, deadline } = limits;
    if query.node_count() == 0 {
        return SearchOutcome::Found(Vec::new());
    }
    // Pigeonhole: the node map is injective, so each key needs enough
    // carriers on the target side.
    for (key, count) in query.node_key_counts() {
        if target.nodes_with_key(key).len() < count {
            return SearchOutcome::NotFound;
        }
    }
    // Every query edge key must occur in the target at all.
    for key in query.edge_keys() {
        if !target.has_edge_key(key) {
            return SearchOutcome::NotFound;
        }
    }
    let order = search_order(query, target);
    let mut search = Search {
        query,
        target,
        order: &order,
        mapping: vec![UNMAPPED; query.node_count()],
        used: vec![false; target.node_count()],
        budget,
        deadline,
        // First check on the first step: an already-passed deadline must
        // cut the search off promptly, not after one full interval.
        until_check: 1,
    };
    match search.extend(0) {
        Err(()) => SearchOutcome::BudgetExhausted,
        Ok(true) => SearchOutcome::Found(search.mapping),
        Ok(false) => SearchOutcome::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::MatchSemantics;
    use sbml_compose::ComposeOptions;
    use sbml_model::builder::ModelBuilder;
    use sbml_model::Model;

    fn graph(m: &Model, options: &ComposeOptions) -> MatchGraph {
        MatchGraph::build(m, &MatchSemantics::from_options(options), options, None)
    }

    fn chain(id: &str, names: &[&str]) -> Model {
        let mut b = ModelBuilder::new(id).compartment("cell", 1.0);
        for n in names {
            b = b.species(n, 1.0);
        }
        b = b.parameter("k", 1.0);
        for w in names.windows(2) {
            b = b.reaction(
                &format!("r_{}_{}", w[0], w[1]),
                &[w[0]],
                &[w[1]],
                &format!("k*{}", w[0]),
            );
        }
        b.build()
    }

    #[test]
    fn model_embeds_in_itself() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let m = chain("self", &["A", "B", "C"]);
            let g = graph(&m, &options);
            let found = find_embedding(&g, &g, 10_000);
            let mapping = found.mapping().expect("self-embedding must exist");
            assert_eq!(mapping, &[0, 1, 2], "distinct keys force the identity");
        }
    }

    #[test]
    fn fragment_embeds_in_superchain() {
        let options = ComposeOptions::none();
        let host = chain("host", &["A", "B", "C", "D"]);
        let frag = chain("frag", &["B", "C"]);
        let (hg, fg) = (graph(&host, &options), graph(&frag, &options));
        let mapping = find_embedding(&fg, &hg, 10_000).mapping().unwrap().to_vec();
        assert_eq!(mapping, vec![1, 2]);
        // The reverse direction cannot embed: the host has nodes the
        // fragment lacks.
        assert_eq!(find_embedding(&hg, &fg, 10_000), SearchOutcome::NotFound);
    }

    #[test]
    fn edge_labels_gate_matching() {
        let options = ComposeOptions::none();
        let host = chain("host", &["A", "B"]);
        // Same species, different reaction id: under none-semantics the
        // edge labels differ, so no embedding.
        let mut other = chain("other", &["A", "B"]);
        other.reactions[0].id = "different".into();
        let (hg, og) = (graph(&host, &options), graph(&other, &options));
        assert_eq!(find_embedding(&og, &hg, 10_000), SearchOutcome::NotFound);
        // Heavy semantics compares content keys — identical kinetics and
        // participants match regardless of the reaction id.
        let heavy = ComposeOptions::heavy();
        let (hg, og) = (graph(&host, &heavy), graph(&other, &heavy));
        assert!(find_embedding(&og, &hg, 10_000).mapping().is_some());
    }

    #[test]
    fn empty_query_embeds_anywhere() {
        let options = ComposeOptions::none();
        let host = chain("host", &["A"]);
        let empty = Model::new("empty");
        let (hg, eg) = (graph(&host, &options), graph(&empty, &options));
        assert_eq!(find_embedding(&eg, &hg, 10), SearchOutcome::Found(Vec::new()));
    }

    #[test]
    fn pigeonhole_rejects_duplicate_keys_fast() {
        let options = ComposeOptions::light();
        // Two query species normalise to the same key; the target carries
        // only one node with it.
        let query = ModelBuilder::new("q")
            .compartment("cell", 1.0)
            .species_named("a", "glucose", 1.0)
            .species_named("b", "dextrose", 1.0)
            .build();
        let target = ModelBuilder::new("t")
            .compartment("cell", 1.0)
            .species_named("x", "Glucose", 1.0)
            .build();
        let (qg, tg) = (graph(&query, &options), graph(&target, &options));
        assert_eq!(find_embedding(&qg, &tg, 10_000), SearchOutcome::NotFound);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let options = ComposeOptions::none();
        let m = chain("m", &["A", "B", "C", "D", "E"]);
        let g = graph(&m, &options);
        assert_eq!(find_embedding(&g, &g, 1), SearchOutcome::BudgetExhausted);
    }

    #[test]
    fn passed_deadline_exhausts_the_search() {
        let options = ComposeOptions::none();
        let m = chain("m", &["A", "B", "C", "D", "E"]);
        let g = graph(&m, &options);
        let limits = SearchLimits { budget: u64::MAX, deadline: Some(Instant::now()) };
        assert_eq!(find_embedding_limited(&g, &g, limits), SearchOutcome::BudgetExhausted);
        // No deadline: same limits type, normal completion.
        let open = SearchLimits { budget: 10_000, deadline: None };
        assert!(find_embedding_limited(&g, &g, open).mapping().is_some());
    }
}
