//! **sbml-match** — biochemical network *matching*: find where a query
//! subnetwork occurs inside a model, and which models of a corpus contain
//! it.
//!
//! The source paper is titled *"Biochemical network matching and
//! composition"*; the sibling crate [`sbml_compose`] reproduces the
//! composition half, and this crate completes the matching half at the
//! subnetwork level (motivated by Holme et al.'s subnetwork hierarchies:
//! pathways recur as fragments of larger models, not as whole-model
//! identities). It answers two questions:
//!
//! * **embedding** — does the query network occur in *this* model, and
//!   under which concrete species/reaction mapping? ([`MatchIndex::query_model`],
//!   the VF2-style refiner in [`vf2`])
//! * **corpus search** — which models of a prepared corpus contain the
//!   query, ranked approximately when none does?
//!   ([`MatchIndex::query_corpus`])
//!
//! Matching runs over the same artefacts composition already maintains: a
//! corpus of [`sbml_compose::PreparedModel`]s (their cached canonical
//! content keys become the index postings) and the
//! [`bio_graph::extract::model_graph`] species/reaction graph (modifier
//! edges included, so regulatory structure participates). Semantics are
//! pluggable ([`MatchSemantics`]): exact labels, synonym-closed labels
//! ([`bio_synonyms`]), or heavy content-key equality reusing the compose
//! engine's reaction keys. The data flow is
//! **candidate generation → VF2 refinement → ranking**; see the
//! [`index`] module docs for the posting-list layout.
//!
//! The index is *mutable in place* — [`MatchIndex::insert`] appends one
//! model's postings without a rebuild, [`MatchIndex::remove`] tombstones
//! a model behind a deletion bitmap (compacted once the tombstone
//! fraction crosses [`MatchIndex::with_compaction_threshold`]) — and
//! *sharded*: [`MatchIndex::with_shards`] partitions the posting lists
//! into [`IndexShard`]s whose candidate generation and refinement fan
//! out shard-per-worker and merge by a rank-stable gather. Both are
//! answer-preserving: a mutated or sharded index is property-tested to
//! answer every query identically to a fresh single-shard build over the
//! same live models.
//!
//! # Querying a corpus
//!
//! ```
//! use sbml_compose::{BatchComposer, ComposeOptions, Composer};
//! use sbml_match::MatchIndex;
//! use sbml_model::builder::ModelBuilder;
//!
//! // A two-model corpus: upper glycolysis and a TCA fragment.
//! let glycolysis = ModelBuilder::new("glycolysis")
//!     .compartment("cell", 1.0)
//!     .species_named("glc", "glucose", 5.0)
//!     .species("G6P", 0.0)
//!     .species("F6P", 0.0)
//!     .parameter("k1", 0.4)
//!     .parameter("k2", 0.3)
//!     .reaction("hexokinase", &["glc"], &["G6P"], "k1*glc")
//!     .reaction("isomerase", &["G6P"], &["F6P"], "k2*G6P")
//!     .build();
//! let tca = ModelBuilder::new("tca")
//!     .compartment("cell", 1.0)
//!     .species("citrate", 1.0)
//!     .species("isocitrate", 0.0)
//!     .parameter("k", 0.1)
//!     .reaction("aconitase", &["citrate"], &["isocitrate"], "k*citrate")
//!     .build();
//!
//! let options = ComposeOptions::default();
//! let batch = BatchComposer::new(Composer::new(options.clone()));
//! let corpus = batch.prepare_corpus(&[glycolysis, tca]);
//! let index = MatchIndex::build(&corpus, &options);
//!
//! // "Where does glucose -> G6P occur?"
//! let query = ModelBuilder::new("query")
//!     .compartment("cell", 1.0)
//!     .species_named("glc", "glucose", 5.0)
//!     .species("G6P", 0.0)
//!     .parameter("k1", 0.4)
//!     .reaction("hexokinase", &["glc"], &["G6P"], "k1*glc")
//!     .build();
//! let matches = index.query_corpus(&query);
//! assert_eq!(matches.exact.len(), 1);
//! let hit = &matches.exact[0];
//! assert_eq!(hit.model, 0, "only glycolysis contains the step");
//! assert!(hit.embedding.species.contains(&("glc".into(), "glc".into())));
//! assert!(hit.embedding.reactions.contains(&("hexokinase".into(), "hexokinase".into())));
//! ```

pub mod graph;
pub mod index;
pub mod semantics;
pub mod vf2;

pub use graph::{MatchGraph, RawGraph};
pub use index::{
    ApproxHit, CorpusHit, CorpusMatches, Embedding, IndexShard, MatchIndex, PreparedQuery,
    RawIndex, RawShard, DEFAULT_BUDGET, DEFAULT_COMPACTION_THRESHOLD,
};
pub use semantics::MatchSemantics;
pub use vf2::{find_embedding, SearchOutcome};
