//! The matcher's view of one model: the extracted species/reaction graph
//! with every node and edge label resolved to its canonical key under a
//! [`MatchSemantics`], plus adjacency lists and a node-key index so the
//! VF2 refiner never touches raw labels or linear scans.

use std::sync::Arc;

use bio_graph::extract::{model_graph, modifier_edge_label, EdgeRole};
use sbml_compose::equality::MatchContext;
use sbml_compose::index::{FastMap, FastSet};
use sbml_compose::ComposeOptions;
use sbml_model::Model;

use crate::semantics::MatchSemantics;

/// One keyed edge of a [`MatchGraph`].
#[derive(Debug, Clone)]
pub(crate) struct EdgeRec {
    pub(crate) from: u32,
    pub(crate) to: u32,
    /// Canonical edge key: the extracted edge label under none/light
    /// semantics, the reaction content key (`mod:`-prefixed for
    /// regulatory edges) under heavy semantics.
    pub(crate) key: Arc<str>,
}

/// The serialisable skeleton of a [`MatchGraph`]: exactly the state that
/// cannot be derived in O(nodes + edges) — canonical node keys (synonym
/// closure is *not* re-run at load), keyed edges, and which model
/// reaction each edge came from. See [`MatchGraph::to_raw`] /
/// [`MatchGraph::from_raw`].
#[derive(Debug, Clone, Default)]
pub struct RawGraph {
    /// Canonical node key per node (node `i` is `model.species[i]`).
    pub node_keys: Vec<Arc<str>>,
    /// Edges as `(from, to, canonical key)` in extraction order.
    pub edges: Vec<(u32, u32, Arc<str>)>,
    /// Edge `e` came from `model.reactions[edge_reaction[e]]`.
    pub edge_reaction: Vec<usize>,
}

/// A model's graph prepared for matching; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct MatchGraph {
    /// Canonical node key per node.
    node_keys: Vec<Arc<str>>,
    edges: Vec<EdgeRec>,
    /// Out-adjacency: node → `(neighbour, edge index)` in edge order.
    out: Vec<Vec<(u32, u32)>>,
    /// In-adjacency: node → `(neighbour, edge index)` in edge order.
    inc: Vec<Vec<(u32, u32)>>,
    /// Node key → nodes carrying it, ascending.
    by_key: FastMap<Arc<str>, Vec<u32>>,
    /// Distinct edge keys present.
    edge_key_set: FastSet<Arc<str>>,
    /// Edge `e` came from `model.reactions[edge_reaction[e]]`. (Node `i`
    /// *is* `model.species[i]` — see [`bio_graph::extract::ModelGraph`].)
    edge_reaction: Vec<usize>,
}

impl MatchGraph {
    /// Build the match graph of `model` under `semantics`. For heavy
    /// semantics, `reaction_keys` supplies the canonical reaction content
    /// keys positional with `model.reactions` (a prepared corpus model
    /// passes its cached [`sbml_compose::PreparedModel::reaction_content_keys`];
    /// pass `None` to derive them fresh under `options` — the query side).
    pub fn build(
        model: &Model,
        semantics: &MatchSemantics,
        options: &ComposeOptions,
        reaction_keys: Option<&[Arc<str>]>,
    ) -> MatchGraph {
        let mg = model_graph(model);
        let n = mg.graph.node_count();

        let mut node_keys = Vec::with_capacity(n);
        let mut by_key: FastMap<Arc<str>, Vec<u32>> = FastMap::default();
        for id in mg.graph.node_ids() {
            let key = semantics.node_key_shared(mg.graph.node_label(id));
            by_key.entry(Arc::clone(&key)).or_default().push(id.0);
            node_keys.push(key);
        }

        // Heavy semantics: resolve each edge to its reaction's content
        // key, computed once per reaction (and once more `mod:`-prefixed
        // if the reaction also has regulatory edges).
        let content_keys: Option<Vec<Arc<str>>> = semantics.content_key_edges().then(|| {
            match reaction_keys {
                Some(keys) => {
                    assert_eq!(
                        keys.len(),
                        model.reactions.len(),
                        "reaction keys must be positional with model.reactions"
                    );
                    keys.to_vec()
                }
                None => {
                    let ctx = MatchContext::new(options);
                    model
                        .reactions
                        .iter()
                        .map(|r| Arc::from(ctx.reaction_key(r, false).as_str()))
                        .collect()
                }
            }
        });
        let mut mod_keys: FastMap<usize, Arc<str>> = FastMap::default();

        let mut edges = Vec::with_capacity(mg.graph.edge_count());
        let mut out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut edge_key_set: FastSet<Arc<str>> = FastSet::default();
        for (e, id) in mg.graph.edge_ids().enumerate() {
            let (from, to, label) = mg.graph.edge(id);
            let ri = mg.edge_reaction[e];
            let key: Arc<str> = match &content_keys {
                None => Arc::from(label),
                Some(keys) => match mg.edge_role[e] {
                    EdgeRole::Conversion => Arc::clone(&keys[ri]),
                    EdgeRole::Regulation => Arc::clone(
                        mod_keys
                            .entry(ri)
                            .or_insert_with(|| Arc::from(modifier_edge_label(&keys[ri]).as_str())),
                    ),
                },
            };
            edge_key_set.insert(Arc::clone(&key));
            out[from.0 as usize].push((to.0, e as u32));
            inc[to.0 as usize].push((from.0, e as u32));
            edges.push(EdgeRec { from: from.0, to: to.0, key });
        }

        MatchGraph {
            node_keys,
            edges,
            out,
            inc,
            by_key,
            edge_key_set,
            edge_reaction: mg.edge_reaction,
        }
    }

    /// Decompose into the serialisable skeleton: node keys, edges (with
    /// their canonical keys) and the edge→reaction map. Adjacency lists,
    /// the node-key index and the edge-key set are all derivable in
    /// O(nodes + edges) and are therefore *not* part of the skeleton —
    /// [`MatchGraph::from_raw`] rebuilds them.
    pub fn to_raw(&self) -> RawGraph {
        RawGraph {
            node_keys: self.node_keys.clone(),
            edges: self.edges.iter().map(|e| (e.from, e.to, Arc::clone(&e.key))).collect(),
            edge_reaction: self.edge_reaction.clone(),
        }
    }

    /// Check a skeleton's structural claims — length agreement and edge
    /// endpoints in range — without building anything. A skeleton that
    /// passes can be handed to [`MatchGraph::from_validated`] later (the
    /// snapshot load path validates everything up front, then defers the
    /// actual build until a query touches the graph). Violations are
    /// reported as errors, never panics — the input may come from a
    /// corrupt snapshot.
    pub fn validate_raw(raw: &RawGraph) -> Result<(), String> {
        let n = raw.node_keys.len();
        if raw.edge_reaction.len() != raw.edges.len() {
            return Err(format!(
                "match graph skeleton inconsistent: {} edges but {} edge-reaction entries",
                raw.edges.len(),
                raw.edge_reaction.len()
            ));
        }
        for (e, (from, to, _)) in raw.edges.iter().enumerate() {
            if *from as usize >= n || *to as usize >= n {
                return Err(format!(
                    "match graph skeleton inconsistent: edge {e} connects {from}->{to} \
                     but the graph has {n} nodes"
                ));
            }
        }
        Ok(())
    }

    /// Rebuild a graph from a skeleton that [`MatchGraph::validate_raw`]
    /// has accepted, deriving adjacency, the node-key index and the
    /// edge-key set. Infallible and panic-free: an out-of-range endpoint
    /// (impossible for validated input) drops that edge instead of
    /// indexing out of bounds.
    pub fn from_validated(raw: RawGraph) -> MatchGraph {
        let n = raw.node_keys.len();
        let mut by_key: FastMap<Arc<str>, Vec<u32>> = FastMap::default();
        for (i, key) in raw.node_keys.iter().enumerate() {
            by_key.entry(Arc::clone(key)).or_default().push(i as u32);
        }
        // Degrees are counted first so the adjacency vectors allocate
        // exactly once.
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        for (from, to, _) in &raw.edges {
            if (*from as usize) < n && (*to as usize) < n {
                out_deg[*from as usize] += 1;
                in_deg[*to as usize] += 1;
            }
        }
        let mut edges = Vec::with_capacity(raw.edges.len());
        let mut out: Vec<Vec<(u32, u32)>> =
            out_deg.iter().map(|&d| Vec::with_capacity(d as usize)).collect();
        let mut inc: Vec<Vec<(u32, u32)>> =
            in_deg.iter().map(|&d| Vec::with_capacity(d as usize)).collect();
        let mut edge_key_set: FastSet<Arc<str>> = FastSet::default();
        for (e, (from, to, key)) in raw.edges.into_iter().enumerate() {
            if from as usize >= n || to as usize >= n {
                continue;
            }
            edge_key_set.insert(Arc::clone(&key));
            out[from as usize].push((to, e as u32));
            inc[to as usize].push((from, e as u32));
            edges.push(EdgeRec { from, to, key });
        }
        MatchGraph {
            node_keys: raw.node_keys,
            edges,
            out,
            inc,
            by_key,
            edge_key_set,
            edge_reaction: raw.edge_reaction,
        }
    }

    /// Validate a skeleton and rebuild the graph in one step.
    ///
    /// # Errors
    /// Whatever [`MatchGraph::validate_raw`] rejects.
    pub fn from_raw(raw: RawGraph) -> Result<MatchGraph, String> {
        MatchGraph::validate_raw(&raw)?;
        Ok(MatchGraph::from_validated(raw))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Canonical key of node `n`.
    pub(crate) fn node_key(&self, n: u32) -> &Arc<str> {
        &self.node_keys[n as usize]
    }

    pub(crate) fn edge(&self, e: u32) -> &EdgeRec {
        &self.edges[e as usize]
    }

    pub(crate) fn out_edges(&self, n: u32) -> &[(u32, u32)] {
        &self.out[n as usize]
    }

    pub(crate) fn in_edges(&self, n: u32) -> &[(u32, u32)] {
        &self.inc[n as usize]
    }

    /// Nodes carrying `key`, ascending (empty if the key is absent).
    pub(crate) fn nodes_with_key(&self, key: &str) -> &[u32] {
        self.by_key.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct node keys with their multiplicities.
    pub(crate) fn node_key_counts(&self) -> impl Iterator<Item = (&Arc<str>, usize)> {
        self.by_key.iter().map(|(k, nodes)| (k, nodes.len()))
    }

    /// Distinct edge keys present.
    pub(crate) fn edge_keys(&self) -> impl Iterator<Item = &Arc<str>> {
        self.edge_key_set.iter()
    }

    /// Is `key` the key of at least one edge?
    pub(crate) fn has_edge_key(&self, key: &str) -> bool {
        self.edge_key_set.contains(key)
    }

    /// The model reaction index edge `e` came from.
    pub(crate) fn reaction_of(&self, e: u32) -> usize {
        self.edge_reaction[e as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn two_step() -> Model {
        ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 1.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .parameter("k1", 0.4)
            .parameter("k2", 0.3)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
            .build()
    }

    #[test]
    fn light_graph_uses_label_keys() {
        let m = two_step();
        let options = ComposeOptions::light();
        let g = MatchGraph::build(&m, &MatchSemantics::from_options(&options), &options, None);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        // "glucose" display name canonicalises; dextrose finds the same node.
        assert_eq!(g.nodes_with_key("glucose"), &[0]);
        assert!(g.has_edge_key("hex"));
        assert!(!g.has_edge_key("rxn-key"));
        assert_eq!(g.reaction_of(0), 0);
    }

    #[test]
    fn heavy_graph_uses_reaction_content_keys() {
        let m = two_step();
        let options = ComposeOptions::heavy();
        let g = MatchGraph::build(&m, &MatchSemantics::from_options(&options), &options, None);
        let ctx = MatchContext::new(&options);
        let key = ctx.reaction_key(&m.reactions[0], false);
        assert!(g.has_edge_key(&key), "heavy edges carry reaction content keys");
        assert!(!g.has_edge_key("hex"), "raw reaction ids are not heavy edge keys");
        // Supplying prepared keys gives the identical graph.
        let p = sbml_compose::PreparedModel::new(&m, &options);
        let g2 = MatchGraph::build(
            &m,
            &MatchSemantics::from_options(&options),
            &options,
            Some(p.reaction_content_keys()),
        );
        assert_eq!(g2.edge(0).key, g.edge(0).key);
    }

    #[test]
    fn raw_round_trip_rebuilds_derived_state() {
        let m = two_step();
        for options in
            [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let g = MatchGraph::build(&m, &MatchSemantics::from_options(&options), &options, None);
            let r = MatchGraph::from_raw(g.to_raw()).expect("skeleton is consistent");
            assert_eq!(r.node_count(), g.node_count());
            assert_eq!(r.edge_count(), g.edge_count());
            for n in 0..g.node_count() as u32 {
                assert_eq!(r.node_key(n), g.node_key(n));
                assert_eq!(r.out_edges(n), g.out_edges(n));
                assert_eq!(r.in_edges(n), g.in_edges(n));
                assert_eq!(r.nodes_with_key(g.node_key(n)), g.nodes_with_key(g.node_key(n)));
            }
            for e in 0..g.edge_count() as u32 {
                assert_eq!(r.edge(e).key, g.edge(e).key);
                assert_eq!(r.reaction_of(e), g.reaction_of(e));
            }
            assert_eq!(r.edge_keys().count(), g.edge_keys().count());
        }
    }

    #[test]
    fn inconsistent_raw_graph_is_rejected() {
        let m = two_step();
        let options = ComposeOptions::none();
        let g = MatchGraph::build(&m, &MatchSemantics::from_options(&options), &options, None);
        let mut raw = g.to_raw();
        raw.edges[0].0 = 99; // endpoint out of range
        assert!(MatchGraph::from_raw(raw).is_err());
        let mut raw = g.to_raw();
        raw.edge_reaction.pop();
        assert!(MatchGraph::from_raw(raw).is_err());
    }

    #[test]
    fn adjacency_is_directional() {
        let m = two_step();
        let options = ComposeOptions::none();
        let g = MatchGraph::build(&m, &MatchSemantics::from_options(&options), &options, None);
        // none semantics: node keys are raw labels.
        assert_eq!(g.nodes_with_key("glucose"), &[0]);
        assert_eq!(g.out_edges(0), &[(1, 0)]);
        assert_eq!(g.in_edges(0), &[]);
        assert_eq!(g.in_edges(1), &[(0, 0)]);
        assert_eq!(g.node_key(1).as_ref(), "G6P");
        assert_eq!(g.node_key_counts().count(), 3);
        assert_eq!(g.edge_keys().count(), 2);
    }
}
