//! The corpus match index: inverted posting lists over the canonical
//! keys a prepared corpus already carries, a candidate→refine→rank query
//! pipeline, and a thread-per-shard parallel corpus search.
//!
//! # Index layout
//!
//! [`MatchIndex::build`] inverts three key families into posting lists
//! (key → ascending model ids):
//!
//! * **node keys** — canonical species label keys (synonym-closed under
//!   light/heavy semantics, raw labels under none);
//! * **edge keys** — extracted edge labels (none/light) or reaction
//!   content keys (heavy), `mod:`-prefixed for regulatory edges;
//! * **participant keys** — the node-key multisets of each reaction's
//!   reactants/products/modifiers, an id- and kinetics-independent
//!   signal used by approximate ranking.
//!
//! Per model it also keeps the [`MatchGraph`] (refinement never re-derives
//! it) and the full canonical content-key set of the preparation
//! ([`sbml_compose::PreparedModel::content_keys`]) for Jaccard scoring.
//!
//! # Query pipeline
//!
//! 1. **candidates** — a model can embed the query only if *every*
//!    distinct query node key and edge key has it in its posting list;
//!    the intersection (smallest list first) prunes the corpus without
//!    touching a single graph.
//! 2. **refine** — each candidate runs the VF2 refiner
//!    ([`crate::vf2::find_embedding`]) and exact hits come back with the
//!    concrete species/reaction mappings ([`Embedding`]).
//! 3. **rank** — when no exact embedding exists, every model sharing at
//!    least one posting with the query is scored
//!    (`score = (jaccard + mapped_fraction) / 2`) and the top
//!    [`MatchIndex::with_top_k`] come back as [`ApproxHit`]s.
//!
//! [`MatchIndex::query_corpus`] fans the refine stage out across worker
//! threads via [`BatchComposer::map_corpus`], the same thread-per-shard
//! pattern the Fig. 8 all-pairs workload uses.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sbml_compose::guard::{self, Site};
use sbml_compose::index::{FastMap, FastSet};
use sbml_compose::{BatchComposer, ComposeOptions, Composer, PreparedModel};
use sbml_model::{Model, Reaction};

use crate::graph::{MatchGraph, RawGraph};
use crate::semantics::MatchSemantics;
use crate::vf2::{find_embedding, find_embedding_limited, SearchLimits, SearchOutcome};

/// Default VF2 step budget per (query, model) refinement.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// A concrete embedding of the query into one corpus model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// Query species id → target species id, in query species order.
    pub species: Vec<(String, String)>,
    /// Query reaction id → a target reaction id whose edge carried the
    /// match, one entry per query reaction that contributed edges.
    pub reactions: Vec<(String, String)>,
}

/// An exact corpus hit: the query embeds in `model`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusHit {
    /// Index of the hit model in the corpus.
    pub model: usize,
    /// The witnessing node/edge mapping.
    pub embedding: Embedding,
}

/// A ranked approximate hit (returned when no exact embedding exists).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxHit {
    /// Index of the model in the corpus.
    pub model: usize,
    /// `(jaccard + mapped_fraction) / 2`.
    pub score: f64,
    /// Jaccard similarity of the canonical content-key sets.
    pub jaccard: f64,
    /// Fraction of query nodes and edges individually mappable into the
    /// model (node key present; edge key or participant key present).
    pub mapped_fraction: f64,
}

/// Result of [`MatchIndex::query_corpus`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMatches {
    /// Models the query exactly embeds in, ascending, with witnesses.
    pub exact: Vec<CorpusHit>,
    /// Ranked near-misses; populated only when `exact` is empty.
    pub approximate: Vec<ApproxHit>,
    /// The candidate models the index examined (ascending) — what the
    /// posting-list intersection could not rule out.
    pub candidates: Vec<usize>,
    /// Candidates whose refinement ran out of step budget or deadline
    /// before deciding, ascending. A non-empty list marks the result as
    /// *partial*: the query might still embed in one of these models.
    pub truncated: Vec<usize>,
    /// Candidates whose refinement panicked, ascending. The fault is
    /// contained per candidate — every other model's verdict is exactly
    /// what a fault-free run produces.
    pub failed: Vec<usize>,
}

/// A query analysed once against an index's options: its match graph,
/// the distinct keys candidate generation intersects, and the key sets
/// ranking scores against. Produce one with [`MatchIndex::prepare_query`]
/// and reuse it across [`MatchIndex::candidates_prepared`] /
/// [`MatchIndex::query_corpus_prepared`] calls — the per-query analysis
/// is paid exactly once, the way a [`PreparedModel`] hoists per-model
/// analysis out of composition.
pub struct PreparedQuery {
    graph: MatchGraph,
    /// Query species ids, positional with graph nodes.
    species_ids: Vec<String>,
    /// Query reaction ids, positional with `model.reactions`.
    reaction_ids: Vec<String>,
    /// Distinct node keys of the query graph.
    node_keys: Vec<Arc<str>>,
    /// Distinct edge keys of the query graph.
    edge_keys: Vec<Arc<str>>,
    /// Participant key per query reaction (positional).
    participant_keys: Vec<String>,
    /// Full canonical content-key set (for Jaccard).
    content_keys: FastSet<Arc<str>>,
}

/// The serialisable skeleton of a [`MatchIndex`]: everything the build
/// derives from the corpus, minus the pieces that are cheap `Arc` clones
/// of the corpus itself (content-key sets) or runtime-only (thread pool,
/// budget knobs). Posting lists are sorted by key so the skeleton — and
/// any snapshot encoding of it — is byte-deterministic for a given
/// corpus and options. Produced by [`MatchIndex::to_raw`], consumed by
/// [`MatchIndex::from_raw`].
#[derive(Debug, Clone, Default)]
pub struct RawIndex {
    /// Per-model match graph skeletons, corpus order.
    pub graphs: Vec<RawGraph>,
    /// Node-key posting lists, sorted by key; ids ascending per list.
    pub node_postings: Vec<(Arc<str>, Vec<u32>)>,
    /// Edge-key posting lists, sorted by key; ids ascending per list.
    pub edge_postings: Vec<(Arc<str>, Vec<u32>)>,
    /// Participant-key posting lists, sorted by key.
    pub participant_postings: Vec<(String, Vec<u32>)>,
}

/// A corpus graph that may still be in skeleton form after a snapshot
/// load: [`MatchIndex::from_raw`] validates every skeleton up front but
/// defers deriving adjacency and key indexes until a query actually
/// refines against the model, so loading a snapshot costs decoding, not
/// rebuilding. [`MatchIndex::build`] stores graphs already built.
/// Thread-safe: at most one build ever runs per graph.
struct LazyGraph {
    /// The validated skeleton; taken by the first build.
    raw: std::sync::Mutex<Option<RawGraph>>,
    built: std::sync::OnceLock<MatchGraph>,
}

impl LazyGraph {
    fn from_built(graph: MatchGraph) -> LazyGraph {
        let built = std::sync::OnceLock::new();
        let _ = built.set(graph);
        LazyGraph { raw: std::sync::Mutex::new(None), built }
    }

    fn deferred(raw: RawGraph) -> LazyGraph {
        LazyGraph { raw: std::sync::Mutex::new(Some(raw)), built: std::sync::OnceLock::new() }
    }

    fn get(&self) -> &MatchGraph {
        self.built.get_or_init(|| {
            let raw = match self.raw.lock() {
                Ok(mut slot) => slot.take(),
                Err(poisoned) => poisoned.into_inner().take(),
            };
            // The skeleton was validated when the index was constructed;
            // a missing one (impossible by construction) degrades to an
            // empty graph rather than panicking.
            MatchGraph::from_validated(raw.unwrap_or_default())
        })
    }

    /// The skeleton, without forcing a build: still-deferred graphs are
    /// encoded from the stored raw directly.
    fn to_raw(&self) -> RawGraph {
        if let Some(graph) = self.built.get() {
            return graph.to_raw();
        }
        let raw = match self.raw.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        match raw {
            Some(raw) => raw,
            // A build raced us and took the raw; it has finished (or
            // will) — get() blocks until the graph is available.
            None => self.get().to_raw(),
        }
    }
}

/// Inverted match index over a prepared corpus; see the
/// [module docs](self).
pub struct MatchIndex {
    options: ComposeOptions,
    semantics: MatchSemantics,
    corpus: Vec<Arc<PreparedModel>>,
    graphs: Vec<LazyGraph>,
    node_postings: FastMap<Arc<str>, Vec<u32>>,
    edge_postings: FastMap<Arc<str>, Vec<u32>>,
    participant_postings: FastMap<String, Vec<u32>>,
    /// Per model: full canonical content-key set (Jaccard denominator),
    /// derived from the corpus preparation on first use after a snapshot
    /// load ([`MatchIndex::build`] fills it eagerly).
    content_key_sets: Vec<std::sync::OnceLock<FastSet<Arc<str>>>>,
    /// Per model: participant keys present, sorted. A pure function of
    /// the prepared model and the semantics (like free-reference sets on
    /// the compose side), so it is NOT serialised: snapshot loads leave
    /// the cells empty and the list is re-derived on first ranked use
    /// ([`MatchIndex::build`] fills it eagerly).
    participant_raw: Vec<std::sync::OnceLock<Vec<String>>>,
    /// Per model: `participant_raw[i]` as a set, built on first use after
    /// a snapshot load.
    participant_sets: Vec<std::sync::OnceLock<FastSet<String>>>,
    batch: BatchComposer,
    budget: u64,
    /// Per-query wall-clock allowance for the refinement stage; `None`
    /// (the default) means unlimited.
    deadline: Option<Duration>,
    top_k: usize,
}

/// A `OnceLock` already holding `value` — the eager-construction side of
/// the lazy per-model state above.
fn filled<T>(value: T) -> std::sync::OnceLock<T> {
    let cell = std::sync::OnceLock::new();
    let _ = cell.set(value);
    cell
}

/// Per-candidate refinement verdict, internal to
/// [`MatchIndex::query_corpus_prepared`].
enum Refined {
    /// The query embeds; here is the witness.
    Hit(Embedding),
    /// The search space was exhausted — the query does not embed.
    Miss,
    /// Step budget or deadline ran out before the search decided.
    Truncated,
    /// The refinement panicked (contained per candidate).
    Failed,
}

/// The node-key multiset signature of a reaction's participants:
/// reactants ⇒ products | modifiers, each side sorted — id- and
/// kinetics-independent, so it survives renamed species and altered rate
/// laws as long as the *shape* of the reaction is preserved.
fn participant_key(label_of: &FastMap<&str, Arc<str>>, r: &Reaction) -> String {
    let side = |refs: &[sbml_model::SpeciesReference]| -> String {
        let mut keys: Vec<&str> = refs
            .iter()
            .map(|sr| label_of.get(sr.species.as_str()).map(|k| k.as_ref()).unwrap_or(&sr.species))
            .collect();
        keys.sort_unstable();
        keys.join(",")
    };
    format!("{}=>{}|{}", side(&r.reactants), side(&r.products), side(&r.modifiers))
}

/// The full canonical content-key set of a model under `options` — the
/// same per-kind keys a [`PreparedModel`] caches, via the shared
/// [`sbml_compose::model_content_keys`] enumeration (one source of truth
/// for the key families; a test in `sbml-compose` pins it to
/// [`PreparedModel::content_keys`]), so a *query* never pays for the
/// parts of a preparation matching does not need (indexes, initial-value
/// evaluation).
fn content_key_set(model: &Model, options: &ComposeOptions) -> FastSet<Arc<str>> {
    sbml_compose::model_content_keys(model, options)
        .into_iter()
        .map(|key| Arc::from(key.as_str()))
        .collect()
}

/// Species id → canonical node key of its graph label.
fn species_label_keys<'m>(
    model: &'m Model,
    semantics: &MatchSemantics,
) -> FastMap<&'m str, Arc<str>> {
    model
        .species
        .iter()
        .map(|s| {
            (s.id.as_str(), semantics.node_key_shared(s.name.as_deref().unwrap_or(&s.id)))
        })
        .collect()
}

impl MatchIndex {
    /// Build the index over a prepared corpus. Every preparation must
    /// carry the fingerprint of `options` (the same rule every prepared
    /// composition entry point enforces): the cached content keys being
    /// inverted here are only meaningful under the options that derived
    /// them.
    ///
    /// The corpus is borrowed as `&[Arc<PreparedModel>]` — the index
    /// keeps `Arc` clones (refcount bumps, no model copies), so a daemon
    /// can share one prepared corpus across the index, a
    /// [`BatchComposer`], and its own handlers without cloning models.
    ///
    /// # Panics
    /// If a preparation's fingerprint does not match `options`.
    pub fn build(corpus: &[Arc<PreparedModel>], options: &ComposeOptions) -> MatchIndex {
        MatchIndex::build_with_threads(corpus, options, 0)
    }

    /// As [`MatchIndex::build`], but with the worker-thread bound applied
    /// to the build itself as well as to later queries (`0` = one per
    /// core, the [`MatchIndex::build`] default). Thread count never
    /// affects the index contents or query results.
    pub fn build_with_threads(
        corpus: &[Arc<PreparedModel>],
        options: &ComposeOptions,
        threads: usize,
    ) -> MatchIndex {
        let semantics = MatchSemantics::from_options(options);
        let batch = BatchComposer::new(Composer::new(options.clone())).with_threads(threads);
        let fingerprint = options.fingerprint();
        for p in corpus {
            assert!(
                p.fingerprint() == fingerprint,
                "PreparedModel for {:?} was prepared under different options; \
                 re-prepare it with the matching options",
                p.model().id,
            );
        }
        let corpus: Vec<Arc<PreparedModel>> = corpus.to_vec();

        // Per-model analysis (graph extraction, key resolution) is
        // independent — fan it out thread-per-shard like prepare_corpus;
        // map_corpus returns in corpus order, so the serial posting fold
        // below is deterministic regardless of scheduling.
        let analysed: Vec<(MatchGraph, FastSet<String>, FastSet<Arc<str>>)> =
            batch.map_corpus(&corpus, |_, p| {
                let model = p.model();
                let reaction_keys =
                    semantics.content_key_edges().then(|| p.reaction_content_keys());
                let graph = MatchGraph::build(model, &semantics, options, reaction_keys);
                let label_of = species_label_keys(model, &semantics);
                let pset: FastSet<String> =
                    model.reactions.iter().map(|r| participant_key(&label_of, r)).collect();
                (graph, pset, p.content_keys().cloned().collect())
            });

        let mut graphs = Vec::with_capacity(corpus.len());
        let mut node_postings: FastMap<Arc<str>, Vec<u32>> = FastMap::default();
        let mut edge_postings: FastMap<Arc<str>, Vec<u32>> = FastMap::default();
        let mut participant_postings: FastMap<String, Vec<u32>> = FastMap::default();
        let mut content_key_sets = Vec::with_capacity(corpus.len());
        let mut participant_sets = Vec::with_capacity(corpus.len());
        let mut participant_raw = Vec::with_capacity(corpus.len());
        for (i, (graph, pset, ckeys)) in analysed.into_iter().enumerate() {
            let mi = i as u32;
            let push = |postings: &mut FastMap<Arc<str>, Vec<u32>>, key: &Arc<str>| {
                let list = postings.entry(Arc::clone(key)).or_default();
                if list.last() != Some(&mi) {
                    list.push(mi);
                }
            };
            for (key, _) in graph.node_key_counts() {
                push(&mut node_postings, key);
            }
            for key in graph.edge_keys() {
                push(&mut edge_postings, key);
            }
            for pkey in &pset {
                let list = participant_postings.entry(pkey.clone()).or_default();
                if list.last() != Some(&mi) {
                    list.push(mi);
                }
            }
            let mut sorted: Vec<String> = pset.iter().cloned().collect();
            sorted.sort_unstable();
            participant_raw.push(filled(sorted));
            participant_sets.push(filled(pset));
            content_key_sets.push(filled(ckeys));
            graphs.push(LazyGraph::from_built(graph));
        }

        MatchIndex {
            semantics,
            corpus,
            graphs,
            node_postings,
            edge_postings,
            participant_postings,
            content_key_sets,
            participant_raw,
            participant_sets,
            batch,
            budget: DEFAULT_BUDGET,
            deadline: None,
            top_k: 10,
            options: options.clone(),
        }
    }

    /// Extract the serialisable skeleton of this index: graphs and
    /// posting lists, with every map flattened into key-sorted vectors so
    /// the result is deterministic for a given corpus and options.
    /// Content-key sets and per-model participant-key lists are *not*
    /// carried — both are pure functions of the corpus's
    /// [`PreparedModel`]s, so [`MatchIndex::from_raw`] re-derives them
    /// lazily on first use.
    pub fn to_raw(&self) -> RawIndex {
        let flatten_arc = |postings: &FastMap<Arc<str>, Vec<u32>>| {
            let mut out: Vec<(Arc<str>, Vec<u32>)> =
                postings.iter().map(|(k, v)| (Arc::clone(k), v.clone())).collect();
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let mut participant_postings: Vec<(String, Vec<u32>)> = self
            .participant_postings
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        participant_postings.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        RawIndex {
            graphs: self.graphs.iter().map(LazyGraph::to_raw).collect(),
            node_postings: flatten_arc(&self.node_postings),
            edge_postings: flatten_arc(&self.edge_postings),
            participant_postings,
        }
    }

    /// Rebuild a [`MatchIndex`] from a skeleton and the corpus it was
    /// extracted over, skipping graph extraction, key resolution, and
    /// posting inversion entirely — the snapshot fast path. Content-key
    /// sets come straight off each [`PreparedModel`] as `Arc` clones (no
    /// re-canonicalisation). Every structural claim the skeleton makes is
    /// validated (family lengths against the corpus, posting ids against
    /// the corpus size, graph consistency); violations return a
    /// structured error, never a panic, because the skeleton may come
    /// from an untrusted snapshot file.
    ///
    /// # Errors
    /// If a preparation's fingerprint does not match `options`, or the
    /// skeleton is inconsistent with the corpus.
    pub fn from_raw(
        raw: RawIndex,
        corpus: &[Arc<PreparedModel>],
        options: &ComposeOptions,
        threads: usize,
    ) -> Result<MatchIndex, String> {
        let fingerprint = options.fingerprint();
        for p in corpus {
            if p.fingerprint() != fingerprint {
                return Err(format!(
                    "PreparedModel for {:?} was prepared under different options",
                    p.model().id,
                ));
            }
        }
        let n = corpus.len();
        if raw.graphs.len() != n {
            return Err(format!("raw index carries {} graphs for {n} models", raw.graphs.len()));
        }
        // Skeletons are validated now (a corrupt one must surface as an
        // error here, not a panic later), but built lazily: adjacency and
        // key indexes are derived on the first query that refines against
        // the model, keeping the load itself a pure decode.
        let mut graphs = Vec::with_capacity(n);
        for (i, g) in raw.graphs.into_iter().enumerate() {
            if let Err(e) = MatchGraph::validate_raw(&g) {
                return Err(format!("graph {i}: {e}"));
            }
            graphs.push(LazyGraph::deferred(g));
        }
        let check_ids = |family: &str, lists: &mut dyn Iterator<Item = &[u32]>| -> Result<(), String> {
            for (k, list) in lists.enumerate() {
                if list.iter().any(|&m| m as usize >= n) {
                    return Err(format!(
                        "{family} posting {k} references a model id >= corpus size {n}"
                    ));
                }
            }
            Ok(())
        };
        check_ids("node", &mut raw.node_postings.iter().map(|(_, v)| v.as_slice()))?;
        check_ids("edge", &mut raw.edge_postings.iter().map(|(_, v)| v.as_slice()))?;
        check_ids(
            "participant",
            &mut raw.participant_postings.iter().map(|(_, v)| v.as_slice()),
        )?;
        let content_key_sets = (0..n).map(|_| std::sync::OnceLock::new()).collect();
        let participant_raw = (0..n).map(|_| std::sync::OnceLock::new()).collect();
        let participant_sets = (0..n).map(|_| std::sync::OnceLock::new()).collect();
        Ok(MatchIndex {
            semantics: MatchSemantics::from_options(options),
            corpus: corpus.to_vec(),
            graphs,
            node_postings: raw.node_postings.into_iter().collect(),
            edge_postings: raw.edge_postings.into_iter().collect(),
            participant_postings: raw.participant_postings.into_iter().collect(),
            content_key_sets,
            participant_raw,
            participant_sets,
            batch: BatchComposer::new(Composer::new(options.clone())).with_threads(threads),
            budget: DEFAULT_BUDGET,
            deadline: None,
            top_k: 10,
            options: options.clone(),
        })
    }

    /// Bound the worker threads [`MatchIndex::query_corpus`] fans out on
    /// (`0` = one per core). Thread count never affects results.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> MatchIndex {
        self.batch = BatchComposer::new(Composer::new(self.options.clone())).with_threads(threads);
        self
    }

    /// Set the VF2 step budget per (query, model) refinement (default
    /// [`DEFAULT_BUDGET`]). An exhausted budget counts as "no embedding".
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> MatchIndex {
        self.budget = budget;
        self
    }

    /// Bound the wall-clock time each query's refinement stage may spend
    /// (default: unlimited). Candidates still undecided when the deadline
    /// passes come back in [`CorpusMatches::truncated`] instead of
    /// silently counting as misses, and approximate ranking still runs —
    /// the degradation ladder's "ranked partial answer beats no answer"
    /// rung. Unlike the step budget, a deadline makes *which* candidates
    /// truncate machine-speed dependent; results stay deterministic only
    /// per (machine, load).
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> MatchIndex {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// How many approximate hits to rank when exact matching fails
    /// (default 10).
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> MatchIndex {
        self.top_k = top_k;
        self
    }

    /// Number of corpus models indexed.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &[Arc<PreparedModel>] {
        &self.corpus
    }

    /// The matching semantics the index was built under.
    pub fn semantics(&self) -> &MatchSemantics {
        &self.semantics
    }

    /// Distinct (node, edge, participant) posting keys — index-size
    /// telemetry for benches and logs.
    pub fn posting_stats(&self) -> (usize, usize, usize) {
        (self.node_postings.len(), self.edge_postings.len(), self.participant_postings.len())
    }

    /// Analyse a query once: build its match graph, collect the distinct
    /// keys candidate generation intersects, and derive the key sets
    /// ranking scores against. Reuse the result across any number of
    /// candidate/query calls against this index.
    pub fn prepare_query(&self, query: &Model) -> PreparedQuery {
        let graph = MatchGraph::build(query, &self.semantics, &self.options, None);
        // Node i of the graph is query.species[i].
        let species_ids: Vec<String> = query.species.iter().map(|s| s.id.clone()).collect();
        let mut node_keys: Vec<Arc<str>> =
            graph.node_key_counts().map(|(k, _)| Arc::clone(k)).collect();
        node_keys.sort_unstable();
        let mut edge_keys: Vec<Arc<str>> = graph.edge_keys().cloned().collect();
        edge_keys.sort_unstable();
        let label_of = species_label_keys(query, &self.semantics);
        let participant_keys = query
            .reactions
            .iter()
            .map(|r| participant_key(&label_of, r))
            .collect();
        PreparedQuery {
            species_ids,
            reaction_ids: query.reactions.iter().map(|r| r.id.clone()).collect(),
            node_keys,
            edge_keys,
            participant_keys,
            content_keys: content_key_set(query, &self.options),
            graph,
        }
    }

    /// Candidate generation: models whose posting lists contain *every*
    /// distinct query node key and edge key, ascending. A query with no
    /// graph nodes embeds trivially, so every model is a candidate.
    pub fn candidates(&self, query: &Model) -> Vec<usize> {
        self.candidates_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::candidates`] over an already-prepared query.
    pub fn candidates_prepared(&self, qa: &PreparedQuery) -> Vec<usize> {
        if qa.graph.node_count() == 0 {
            return (0..self.corpus.len()).collect();
        }
        let mut lists: Vec<&[u32]> = Vec::with_capacity(qa.node_keys.len() + qa.edge_keys.len());
        for key in &qa.node_keys {
            match self.node_postings.get(key.as_ref()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        for key in &qa.edge_keys {
            match self.edge_postings.get(key.as_ref()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_unstable_by_key(|list| list.len());
        let mut acc: Vec<u32> = lists[0].to_vec();
        for list in &lists[1..] {
            acc.retain(|m| list.binary_search(m).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc.into_iter().map(|m| m as usize).collect()
    }

    fn refine(&self, qa: &PreparedQuery, target: usize) -> Option<Embedding> {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        match self.refine_limited(qa, target, deadline) {
            Refined::Hit(embedding) => Some(embedding),
            Refined::Miss | Refined::Truncated | Refined::Failed => None,
        }
    }

    /// The match graph of corpus model `i`, built from its skeleton on
    /// first use after a snapshot load.
    fn graph(&self, i: usize) -> &MatchGraph {
        self.graphs[i].get()
    }

    /// The content-key set of corpus model `i` (Jaccard denominator),
    /// derived from the preparation on first use after a snapshot load.
    fn content_keys_of(&self, i: usize) -> &FastSet<Arc<str>> {
        self.content_key_sets[i]
            .get_or_init(|| self.corpus[i].content_keys().cloned().collect())
    }

    /// The sorted participant-key list of corpus model `i`, re-derived
    /// from the prepared model on first use after a snapshot load.
    fn participant_raw_of(&self, i: usize) -> &[String] {
        self.participant_raw[i].get_or_init(|| {
            let model = self.corpus[i].model();
            let label_of = species_label_keys(model, &self.semantics);
            let pset: FastSet<String> =
                model.reactions.iter().map(|r| participant_key(&label_of, r)).collect();
            let mut sorted: Vec<String> = pset.into_iter().collect();
            sorted.sort_unstable();
            sorted
        })
    }

    /// The participant-key set of corpus model `i`, derived from the
    /// sorted key list on first use after a snapshot load.
    fn participants_of(&self, i: usize) -> &FastSet<String> {
        self.participant_sets[i]
            .get_or_init(|| self.participant_raw_of(i).iter().cloned().collect())
    }

    fn refine_limited(
        &self,
        qa: &PreparedQuery,
        target: usize,
        deadline: Option<Instant>,
    ) -> Refined {
        let tg = self.graph(target);
        let limits = SearchLimits { budget: self.budget, deadline };
        let mapping = match find_embedding_limited(&qa.graph, tg, limits) {
            SearchOutcome::Found(mapping) => mapping,
            SearchOutcome::NotFound => return Refined::Miss,
            SearchOutcome::BudgetExhausted => return Refined::Truncated,
        };
        let target_model = self.corpus[target].model();
        let species = mapping
            .iter()
            .enumerate()
            .map(|(q, &t)| {
                (qa.species_ids[q].clone(), target_model.species[t as usize].id.clone())
            })
            .collect();
        // For each query edge, the first key-equal target edge between the
        // images witnesses the reaction correspondence.
        let mut reactions: BTreeMap<usize, String> = BTreeMap::new();
        for e in 0..qa.graph.edge_count() as u32 {
            let edge = qa.graph.edge(e);
            let qr = qa.graph.reaction_of(e);
            if reactions.contains_key(&qr) {
                continue;
            }
            let (tf, tt) = (mapping[edge.from as usize], mapping[edge.to as usize]);
            if let Some(&(_, te)) = tg
                .out_edges(tf)
                .iter()
                .find(|&&(n, te)| n == tt && tg.edge(te).key == edge.key)
            {
                reactions.insert(qr, target_model.reactions[tg.reaction_of(te)].id.clone());
            }
        }
        let reactions = reactions
            .into_iter()
            .map(|(qr, tid)| (qa.reaction_ids[qr].clone(), tid))
            .collect();
        Refined::Hit(Embedding { species, reactions })
    }

    /// Exact match against one corpus model: the witnessing embedding, or
    /// `None` when the query does not embed (or the budget ran out).
    pub fn query_model(&self, query: &Model, target: usize) -> Option<Embedding> {
        self.refine(&self.prepare_query(query), target)
    }

    /// Search the whole corpus: candidate generation, parallel VF2
    /// refinement of the candidates (thread-per-shard via
    /// [`BatchComposer::map_corpus`]), and — when no model embeds the
    /// query exactly — ranked approximate matches. Deterministic for a
    /// given index and query, independent of thread count.
    ///
    /// Refinement faults never abort the query: a candidate whose search
    /// exhausts [`MatchIndex::with_budget`] /
    /// [`MatchIndex::with_deadline_ms`] lands in
    /// [`CorpusMatches::truncated`], one that panics lands in
    /// [`CorpusMatches::failed`], and every other candidate's verdict is
    /// bit-identical to a fault-free run.
    pub fn query_corpus(&self, query: &Model) -> CorpusMatches {
        self.query_corpus_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::query_corpus`] over an already-prepared query.
    pub fn query_corpus_prepared(&self, qa: &PreparedQuery) -> CorpusMatches {
        let candidates = self.candidates_prepared(qa);
        // One shared deadline for the whole refinement stage, not one per
        // candidate — [`MatchIndex::with_deadline_ms`] bounds the query.
        let deadline = self.deadline.map(|d| Instant::now() + d);
        // A refinement that panics or overruns is contained to its own
        // candidate: unwinding is caught here, budget/deadline overrun is
        // reported by the search itself, and either way every other
        // candidate's verdict is untouched.
        let refine_one = |k: usize| -> Refined {
            catch_unwind(AssertUnwindSafe(|| {
                guard::fail_point(Site::Query(k));
                self.refine_limited(qa, candidates[k], deadline)
            }))
            .unwrap_or(Refined::Failed)
        };
        // Refinement of a typical (small) candidate set is microseconds —
        // below the cutoff, spawning workers costs more than it overlaps.
        // Results are identical either way.
        const PARALLEL_REFINE_THRESHOLD: usize = 16;
        let refined: Vec<Refined> =
            if candidates.len() < PARALLEL_REFINE_THRESHOLD {
                (0..candidates.len()).map(refine_one).collect()
            } else {
                let subset: Vec<Arc<PreparedModel>> =
                    candidates.iter().map(|&i| Arc::clone(&self.corpus[i])).collect();
                self.batch.map_corpus(&subset, |k, _| refine_one(k))
            };
        let mut exact = Vec::new();
        let mut truncated = Vec::new();
        let mut failed = Vec::new();
        for (&model, outcome) in candidates.iter().zip(refined) {
            match outcome {
                Refined::Hit(embedding) => exact.push(CorpusHit { model, embedding }),
                Refined::Miss => {}
                Refined::Truncated => truncated.push(model),
                Refined::Failed => failed.push(model),
            }
        }
        let approximate =
            if exact.is_empty() { self.rank_approximate(qa) } else { Vec::new() };
        CorpusMatches { exact, approximate, candidates, truncated, failed }
    }

    /// Reference scan: run the VF2 refiner against **every** corpus model
    /// with no candidate pruning, returning the models the query embeds
    /// in. [`MatchIndex::query_corpus`]'s exact hit set equals this by
    /// construction (property-tested); the `corpus_match` bench gates the
    /// speedup of the indexed path over this naïve one.
    pub fn naive_hits(&self, query: &Model) -> Vec<usize> {
        self.naive_hits_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::naive_hits`] over an already-prepared query.
    pub fn naive_hits_prepared(&self, qa: &PreparedQuery) -> Vec<usize> {
        (0..self.corpus.len())
            .filter(|&i| {
                matches!(find_embedding(&qa.graph, self.graph(i), self.budget), SearchOutcome::Found(_))
            })
            .collect()
    }

    /// Rank near-misses: every model sharing at least one node, edge or
    /// participant posting with the query, scored by content-key Jaccard
    /// plus mapped fraction.
    fn rank_approximate(&self, qa: &PreparedQuery) -> Vec<ApproxHit> {
        let mut pool: Vec<u32> = Vec::new();
        for key in &qa.node_keys {
            if let Some(list) = self.node_postings.get(key.as_ref()) {
                pool.extend_from_slice(list);
            }
        }
        for key in &qa.edge_keys {
            if let Some(list) = self.edge_postings.get(key.as_ref()) {
                pool.extend_from_slice(list);
            }
        }
        for key in &qa.participant_keys {
            if let Some(list) = self.participant_postings.get(key.as_str()) {
                pool.extend_from_slice(list);
            }
        }
        pool.sort_unstable();
        pool.dedup();

        let mut hits: Vec<ApproxHit> = pool
            .into_iter()
            .map(|m| {
                let model = m as usize;
                let jaccard = self.jaccard(&qa.content_keys, model);
                let mapped_fraction = self.mapped_fraction(qa, model);
                ApproxHit { model, score: (jaccard + mapped_fraction) / 2.0, jaccard, mapped_fraction }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| a.model.cmp(&b.model))
        });
        hits.truncate(self.top_k);
        hits
    }

    fn jaccard(&self, query_keys: &FastSet<Arc<str>>, model: usize) -> f64 {
        let model_keys = self.content_keys_of(model);
        if query_keys.is_empty() && model_keys.is_empty() {
            return 1.0;
        }
        let shared = query_keys.iter().filter(|k| model_keys.contains(k.as_ref())).count();
        let union = query_keys.len() + model_keys.len() - shared;
        shared as f64 / union as f64
    }

    fn mapped_fraction(&self, qa: &PreparedQuery, model: usize) -> f64 {
        let graph = self.graph(model);
        let total = qa.graph.node_count() + qa.graph.edge_count();
        if total == 0 {
            return 1.0;
        }
        let mut mapped = 0usize;
        for n in 0..qa.graph.node_count() as u32 {
            if !graph.nodes_with_key(qa.graph.node_key(n)).is_empty() {
                mapped += 1;
            }
        }
        for e in 0..qa.graph.edge_count() as u32 {
            let edge = qa.graph.edge(e);
            let pkey = &qa.participant_keys[qa.graph.reaction_of(e)];
            if graph.has_edge_key(&edge.key) || self.participants_of(model).contains(pkey) {
                mapped += 1;
            }
        }
        mapped as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn corpus_models() -> Vec<Model> {
        // Three models over a shared species pool; model 2 shares the
        // whole glycolysis step with model 0.
        let glyco = ModelBuilder::new("glyco")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .parameter("k1", 0.4)
            .parameter("k2", 0.3)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
            .build();
        let tca = ModelBuilder::new("tca")
            .compartment("cell", 1.0)
            .species("citrate", 1.0)
            .species("isocitrate", 0.0)
            .parameter("k", 0.1)
            .reaction("aco", &["citrate"], &["isocitrate"], "k*citrate")
            .build();
        let super_glyco = ModelBuilder::new("super")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 2.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .species("FBP", 0.0)
            .parameter("k1", 0.4)
            .parameter("k2", 0.3)
            .parameter("k3", 0.2)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
            .reaction("pfk", &["F6P"], &["FBP"], "k3*F6P")
            .build();
        vec![glyco, tca, super_glyco]
    }

    fn index(options: &ComposeOptions) -> MatchIndex {
        let batch = BatchComposer::new(Composer::new(options.clone()));
        MatchIndex::build(&batch.prepare_corpus(&corpus_models()), options)
    }

    fn fragment() -> Model {
        ModelBuilder::new("query")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .parameter("k1", 0.4)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .build()
    }

    #[test]
    fn exact_hits_with_witness_mappings() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let idx = index(&options);
            let result = idx.query_corpus(&fragment());
            let models: Vec<usize> = result.exact.iter().map(|h| h.model).collect();
            assert_eq!(models, vec![0, 2], "fragment occurs in glyco and super");
            assert!(result.approximate.is_empty(), "exact hits suppress ranking");
            let hit = &result.exact[0];
            assert!(hit.embedding.species.contains(&("glc".into(), "glc".into())));
            assert!(hit.embedding.reactions.contains(&("hex".into(), "hex".into())));
        }
    }

    #[test]
    fn candidates_equal_naive_hit_superset() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let query = fragment();
        let candidates = idx.candidates(&query);
        let naive = idx.naive_hits(&query);
        for hit in &naive {
            assert!(candidates.contains(hit), "pruning must be sound");
        }
        let exact: Vec<usize> = idx.query_corpus(&query).exact.iter().map(|h| h.model).collect();
        assert_eq!(exact, naive);
    }

    #[test]
    fn miss_returns_ranked_approximates() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        // G6P -> F6P exists, but with kinetics no corpus model carries.
        let near = ModelBuilder::new("near")
            .compartment("cell", 1.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .parameter("vmax", 2.0)
            .parameter("km", 3.0)
            .reaction("iso", &["G6P"], &["F6P"], "vmax*G6P/(km+G6P)")
            .build();
        let result = idx.query_corpus(&near);
        assert!(result.exact.is_empty());
        assert!(!result.approximate.is_empty(), "participant overlap must rank");
        let best = &result.approximate[0];
        assert!(best.model == 0 || best.model == 2, "a glycolysis model ranks first");
        assert!(best.score > 0.0 && best.score <= 1.0);
        assert!(best.mapped_fraction > 0.5, "both nodes + participant-matched edge map");
        // Scores descend.
        for pair in result.approximate.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn absent_species_prunes_all_candidates() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let alien = ModelBuilder::new("alien")
            .compartment("cell", 1.0)
            .species("unobtainium", 1.0)
            .build();
        assert!(idx.candidates(&alien).is_empty());
        let result = idx.query_corpus(&alien);
        assert!(result.exact.is_empty());
        assert!(result.approximate.is_empty(), "nothing shares a posting");
    }

    #[test]
    fn empty_query_matches_every_model() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let result = idx.query_corpus(&Model::new("empty"));
        let models: Vec<usize> = result.exact.iter().map(|h| h.model).collect();
        assert_eq!(models, vec![0, 1, 2]);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let options = ComposeOptions::default();
        let query = fragment();
        let reference = index(&options).with_threads(1).query_corpus(&query);
        for threads in [2, 3, 8] {
            let result = index(&options).with_threads(threads).query_corpus(&query);
            assert_eq!(result, reference, "threads={threads}");
        }
    }

    #[test]
    fn synonym_queries_hit_under_light_and_heavy_only() {
        let heavy = ComposeOptions::default();
        // The query names the species "dextrose"; the corpus says
        // "glucose". Same id and kinetics, so heavy content keys align.
        let synonym_query = ModelBuilder::new("syn")
            .compartment("cell", 1.0)
            .species_named("glc", "dextrose", 5.0)
            .species("G6P", 0.0)
            .parameter("k1", 0.4)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .build();
        let hits: Vec<usize> = index(&heavy)
            .query_corpus(&synonym_query)
            .exact
            .iter()
            .map(|h| h.model)
            .collect();
        assert_eq!(hits, vec![0, 2]);
        let none = ComposeOptions::none();
        assert!(index(&none).query_corpus(&synonym_query).exact.is_empty());
    }

    #[test]
    fn open_limits_leave_partial_lists_empty() {
        let options = ComposeOptions::default();
        let result = index(&options).query_corpus(&fragment());
        assert!(result.truncated.is_empty());
        assert!(result.failed.is_empty());
    }

    #[test]
    fn exhausted_budget_reports_truncated_candidates() {
        let options = ComposeOptions::default();
        let result = index(&options).with_budget(0).query_corpus(&fragment());
        assert!(result.exact.is_empty(), "no search steps, no verdicts");
        assert_eq!(result.truncated, result.candidates, "every undecided candidate is listed");
        assert!(result.failed.is_empty());
        assert!(!result.approximate.is_empty(), "a truncated query still ranks near-misses");
    }

    #[test]
    fn passed_deadline_reports_truncated_candidates() {
        let options = ComposeOptions::default();
        let result = index(&options).with_deadline_ms(0).query_corpus(&fragment());
        assert!(result.exact.is_empty());
        assert_eq!(result.truncated, result.candidates);
        assert!(!result.approximate.is_empty());
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn fingerprint_mismatch_rejected() {
        let heavy = ComposeOptions::default();
        let batch = BatchComposer::new(Composer::new(heavy.clone()));
        let prepared = batch.prepare_corpus(&corpus_models());
        let _ = MatchIndex::build(&prepared, &ComposeOptions::light());
    }

    #[test]
    fn raw_round_trip_preserves_query_results() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let batch = BatchComposer::new(Composer::new(options.clone()));
            let corpus = batch.prepare_corpus(&corpus_models());
            let idx = MatchIndex::build(&corpus, &options);
            let Ok(rebuilt) = MatchIndex::from_raw(idx.to_raw(), &corpus, &options, 0) else {
                unreachable!("skeleton extracted from a live index is consistent")
            };
            assert_eq!(rebuilt.posting_stats(), idx.posting_stats());
            for query in [fragment(), Model::new("empty")] {
                assert_eq!(rebuilt.query_corpus(&query), idx.query_corpus(&query));
            }
        }
    }

    #[test]
    fn inconsistent_raw_index_is_rejected() {
        let options = ComposeOptions::default();
        let batch = BatchComposer::new(Composer::new(options.clone()));
        let corpus = batch.prepare_corpus(&corpus_models());
        let idx = MatchIndex::build(&corpus, &options);
        let mut raw = idx.to_raw();
        raw.graphs.pop();
        assert!(MatchIndex::from_raw(raw, &corpus, &options, 0).is_err());
        let mut raw = idx.to_raw();
        if let Some((_, list)) = raw.node_postings.first_mut() {
            list.push(1000); // model id beyond the corpus
        }
        assert!(MatchIndex::from_raw(raw, &corpus, &options, 0).is_err());
        let raw = idx.to_raw();
        assert!(
            MatchIndex::from_raw(raw, &corpus, &ComposeOptions::light(), 0).is_err(),
            "fingerprint mismatch must be an error, not a panic",
        );
    }

    #[test]
    fn posting_stats_reflect_corpus() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let (nodes, edges, participants) = idx.posting_stats();
        assert!(nodes >= 5, "distinct species labels across the corpus");
        assert!(edges >= 4);
        assert!(participants >= 4);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }
}
