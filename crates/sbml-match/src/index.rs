//! The corpus match index: inverted posting lists over the canonical
//! keys a prepared corpus already carries, sharded for scatter-gather
//! queries and mutable in place (incremental insert, tombstoned remove,
//! threshold-triggered compaction).
//!
//! # Index layout
//!
//! [`MatchIndex::build`] inverts three key families into posting lists
//! (key → ascending slot ids):
//!
//! * **node keys** — canonical species label keys (synonym-closed under
//!   light/heavy semantics, raw labels under none);
//! * **edge keys** — extracted edge labels (none/light) or reaction
//!   content keys (heavy), `mod:`-prefixed for regulatory edges;
//! * **participant keys** — the node-key multisets of each reaction's
//!   reactants/products/modifiers, an id- and kinetics-independent
//!   signal used by approximate ranking. Interned as `Arc<str>` like the
//!   other two families.
//!
//! Per model it also keeps the [`MatchGraph`] (refinement never re-derives
//! it) and the full canonical content-key set of the preparation
//! ([`sbml_compose::PreparedModel::content_keys`]) for Jaccard scoring.
//!
//! # Slots, shards, tombstones
//!
//! Internally models live in **slots**: monotonically assigned `u32` ids
//! that are never renumbered, so posting lists stay ascending under any
//! insert/remove interleaving (a new model's slot is always the largest).
//! The *public* model indices every query result reports are **ranks** —
//! positions in the live corpus ([`MatchIndex::corpus`]), exactly what a
//! fresh [`MatchIndex::build`] over the same live models would report.
//!
//! Postings are partitioned into [`IndexShard`]s by the deterministic
//! rule `slot % shard_count` ([`MatchIndex::with_shards`]; default 1).
//! Each shard carries its own posting maps, live-member list, tombstone
//! set + deletion bitmap, and a generation counter that bumps on every
//! mutation — the snapshot layer uses generations to rewrite only the
//! shards that changed.
//!
//! The mutation lifecycle:
//!
//! * [`MatchIndex::insert`] analyses the prepared model once and appends
//!   its postings to its home shard — O(model), no rebuild.
//! * [`MatchIndex::remove`] *tombstones* the slot: membership moves to
//!   the shard's dead set, the deletion bitmap masks the slot out of
//!   every posting list at query time, and the per-slot caches are
//!   dropped. Posting entries linger until compaction.
//! * When a shard's [`IndexShard::tombstone_fraction`] (dead posting
//!   entries over live + dead) exceeds
//!   [`MatchIndex::with_compaction_threshold`] (default
//!   [`DEFAULT_COMPACTION_THRESHOLD`]), the shard **compacts**: dead
//!   slots are scrubbed from its posting lists in place. Slot ids never
//!   change, so other shards are untouched.
//!
//! The invariant the property suite pins: an index grown by any
//! insert/remove sequence answers every query **bit-identically** to a
//! fresh single-shard `build` over the surviving models in insertion
//! order, at every shard count.
//!
//! # Query pipeline
//!
//! 1. **scatter** — each shard generates candidates (posting-list
//!    intersection, smallest list first, tombstones masked) and refines
//!    them with the VF2 refiner ([`crate::vf2::find_embedding`]); shards
//!    fan out one-per-worker on the [`BatchComposer`]'s shared
//!    [`WorkerPool`](sbml_compose::pool::WorkerPool). Shard count 1 runs
//!    the same code inline — the serial reference stays exercised.
//! 2. **gather** — exact hits merge in corpus order (slot-sorted, then
//!    remapped to ranks); when no model embeds the query, every model
//!    sharing a posting is scored per shard
//!    (`score = (jaccard + mapped_fraction) / 2`) and the per-shard
//!    lists merge rank-stably into the global top
//!    [`MatchIndex::with_top_k`].
//!
//! Results are deterministic for a given index and query — independent
//! of thread count, shard count, and compaction timing.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sbml_compose::guard::{self, Site};
use sbml_compose::index::{FastMap, FastSet};
use sbml_compose::{BatchComposer, ComposeOptions, Composer, PreparedModel};
use sbml_model::{Model, Reaction};

use crate::graph::{MatchGraph, RawGraph};
use crate::semantics::MatchSemantics;
use crate::vf2::{find_embedding, find_embedding_limited, SearchLimits, SearchOutcome};

/// Default VF2 step budget per (query, model) refinement.
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Default tombstone fraction above which a shard compacts its posting
/// lists in place (see [`MatchIndex::with_compaction_threshold`]).
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.3;

/// A concrete embedding of the query into one corpus model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// Query species id → target species id, in query species order.
    pub species: Vec<(String, String)>,
    /// Query reaction id → a target reaction id whose edge carried the
    /// match, one entry per query reaction that contributed edges.
    pub reactions: Vec<(String, String)>,
}

/// An exact corpus hit: the query embeds in `model`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusHit {
    /// Index of the hit model in the live corpus.
    pub model: usize,
    /// The witnessing node/edge mapping.
    pub embedding: Embedding,
}

/// A ranked approximate hit (returned when no exact embedding exists).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxHit {
    /// Index of the model in the live corpus.
    pub model: usize,
    /// `(jaccard + mapped_fraction) / 2`.
    pub score: f64,
    /// Jaccard similarity of the canonical content-key sets.
    pub jaccard: f64,
    /// Fraction of query nodes and edges individually mappable into the
    /// model (node key present; edge key or participant key present).
    pub mapped_fraction: f64,
}

/// Result of [`MatchIndex::query_corpus`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMatches {
    /// Models the query exactly embeds in, ascending, with witnesses.
    pub exact: Vec<CorpusHit>,
    /// Ranked near-misses; populated only when `exact` is empty.
    pub approximate: Vec<ApproxHit>,
    /// The candidate models the index examined (ascending) — what the
    /// posting-list intersection could not rule out.
    pub candidates: Vec<usize>,
    /// Candidates whose refinement ran out of step budget or deadline
    /// before deciding, ascending. A non-empty list marks the result as
    /// *partial*: the query might still embed in one of these models.
    pub truncated: Vec<usize>,
    /// Candidates whose refinement panicked, ascending. The fault is
    /// contained per candidate — every other model's verdict is exactly
    /// what a fault-free run produces.
    pub failed: Vec<usize>,
}

/// A query analysed once against an index's options: its match graph,
/// the distinct keys candidate generation intersects, and the key sets
/// ranking scores against. Produce one with [`MatchIndex::prepare_query`]
/// and reuse it across [`MatchIndex::candidates_prepared`] /
/// [`MatchIndex::query_corpus_prepared`] calls — the per-query analysis
/// is paid exactly once, the way a [`PreparedModel`] hoists per-model
/// analysis out of composition.
pub struct PreparedQuery {
    graph: MatchGraph,
    /// Query species ids, positional with graph nodes.
    species_ids: Vec<String>,
    /// Query reaction ids, positional with `model.reactions`.
    reaction_ids: Vec<String>,
    /// Distinct node keys of the query graph.
    node_keys: Vec<Arc<str>>,
    /// Distinct edge keys of the query graph.
    edge_keys: Vec<Arc<str>>,
    /// Participant key per query reaction (positional).
    participant_keys: Vec<Arc<str>>,
    /// Full canonical content-key set (for Jaccard).
    content_keys: FastSet<Arc<str>>,
}

/// The serialisable skeleton of one [`IndexShard`]: its generation, the
/// slots it owns (live members and tombstones), and its posting lists —
/// **scrubbed**: tombstoned slots are filtered out of the lists at
/// extraction, so a round trip through [`MatchIndex::from_raw`] loads a
/// shard with zero pending tombstone entries (membership tombstones are
/// preserved — slot ids stay stable across save/mutate/save cycles).
#[derive(Debug, Clone, Default)]
pub struct RawShard {
    /// Mutation counter at extraction time; the snapshot layer reuses a
    /// shard's encoded section verbatim when its generation (and member
    /// lists) are unchanged.
    pub generation: u64,
    /// Live slots owned by this shard, ascending.
    pub members: Vec<u32>,
    /// Tombstoned slots owned by this shard, ascending.
    pub dead: Vec<u32>,
    /// Node-key posting lists, sorted by key; slot ids ascending.
    pub node_postings: Vec<(Arc<str>, Vec<u32>)>,
    /// Edge-key posting lists, sorted by key; slot ids ascending.
    pub edge_postings: Vec<(Arc<str>, Vec<u32>)>,
    /// Participant-key posting lists, sorted by key; slots ascending.
    pub participant_postings: Vec<(Arc<str>, Vec<u32>)>,
}

/// The serialisable skeleton of a [`MatchIndex`]: everything the build
/// derives from the corpus, minus the pieces that are cheap `Arc` clones
/// of the corpus itself (content-key sets) or runtime-only (thread pool,
/// budget knobs). Posting lists are sorted by key so the skeleton — and
/// any snapshot encoding of it — is byte-deterministic for a given
/// corpus, options, and mutation history. The slot universe is exactly
/// `live ∪ every shard's dead`, dense from 0 — validated on load so a
/// hostile skeleton can never claim an unbounded slot space. Produced by
/// [`MatchIndex::to_raw`], consumed by [`MatchIndex::from_raw`].
#[derive(Debug, Clone, Default)]
pub struct RawIndex {
    /// Index-wide mutation counter.
    pub generation: u64,
    /// Live slots, ascending; `corpus[i]` (live order) lives in slot
    /// `live[i]`.
    pub live: Vec<u32>,
    /// Per-model match graph skeletons, live order.
    pub graphs: Vec<RawGraph>,
    /// One entry per shard; slot `s` belongs to shard
    /// `s % shards.len()`.
    pub shards: Vec<RawShard>,
}

impl RawIndex {
    /// Carve shard `shard` out of this skeleton as a self-contained
    /// **single-shard** skeleton over a dense local slot space, plus the
    /// translation table back to the global space: `global[j]` is the
    /// global slot id of local live rank `j` (ascending, so local rank
    /// order ≡ global slot order — the property a scatter-gather merge
    /// relies on to reassemble shard answers in global order without
    /// shipping ranks over the wire).
    ///
    /// Local slots are the shard's owned slots (live ∪ tombstoned, which
    /// is exactly the `slot % count == shard` residue class) renumbered
    /// by ascending global slot; posting lists and tombstone lists are
    /// remapped monotonically, so every ordering invariant
    /// [`MatchIndex::from_raw`] checks is preserved. Pair the result
    /// with the matching sub-corpus (`corpus()` entries whose slot lands
    /// in this shard, in order).
    ///
    /// # Errors
    /// If `shard` is out of range or the skeleton is inconsistent
    /// (membership lists disagreeing with `live`, postings referencing
    /// unowned slots) — the skeleton may come from an untrusted
    /// snapshot, so violations are structured errors, never panics.
    pub fn carve_shard(&self, shard: usize) -> Result<(RawIndex, Vec<u32>), String> {
        let count = self.shards.len();
        if shard >= count {
            return Err(format!("shard {shard} out of range (index has {count})"));
        }
        let rs = &self.shards[shard];
        // The local slot universe: every slot the shard owns, ascending.
        let mut owned: Vec<u32> = Vec::with_capacity(rs.members.len() + rs.dead.len());
        owned.extend_from_slice(&rs.members);
        owned.extend_from_slice(&rs.dead);
        owned.sort_unstable();
        if owned.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("shard {shard} lists a slot as both live and tombstoned"));
        }
        let local = |slot: u32| -> Result<u32, String> {
            match owned.binary_search(&slot) {
                Ok(pos) => Ok(pos as u32),
                Err(_) => Err(format!("slot {slot} not owned by shard {shard}")),
            }
        };
        let remap = |list: &[u32]| -> Result<Vec<u32>, String> { list.iter().map(|&s| local(s)).collect() };
        let remap_postings = |lists: &[(Arc<str>, Vec<u32>)]| -> Result<Vec<(Arc<str>, Vec<u32>)>, String> {
            lists.iter().map(|(k, v)| Ok((Arc::clone(k), remap(v)?))).collect()
        };
        if self.graphs.len() != self.live.len() {
            return Err(format!(
                "raw index carries {} graphs for {} live slots",
                self.graphs.len(),
                self.live.len()
            ));
        }
        // Owned live models, in live (= ascending slot) order.
        let mut graphs = Vec::with_capacity(rs.members.len());
        let mut global = Vec::with_capacity(rs.members.len());
        for (i, &slot) in self.live.iter().enumerate() {
            if slot as usize % count == shard {
                graphs.push(self.graphs[i].clone());
                global.push(slot);
            }
        }
        if global != rs.members {
            return Err(format!("shard {shard} members disagree with the index live list"));
        }
        let members = remap(&rs.members)?;
        let raw = RawIndex {
            generation: self.generation,
            live: members.clone(),
            graphs,
            shards: vec![RawShard {
                generation: rs.generation,
                members,
                dead: remap(&rs.dead)?,
                node_postings: remap_postings(&rs.node_postings)?,
                edge_postings: remap_postings(&rs.edge_postings)?,
                participant_postings: remap_postings(&rs.participant_postings)?,
            }],
        };
        Ok((raw, global))
    }
}

/// A corpus graph that may still be in skeleton form after a snapshot
/// load: [`MatchIndex::from_raw`] validates every skeleton up front but
/// defers deriving adjacency and key indexes until a query actually
/// refines against the model, so loading a snapshot costs decoding, not
/// rebuilding. [`MatchIndex::build`] stores graphs already built.
/// Thread-safe: at most one build ever runs per graph.
struct LazyGraph {
    /// The validated skeleton; taken by the first build.
    raw: std::sync::Mutex<Option<RawGraph>>,
    built: std::sync::OnceLock<MatchGraph>,
}

impl LazyGraph {
    fn from_built(graph: MatchGraph) -> LazyGraph {
        let built = std::sync::OnceLock::new();
        let _ = built.set(graph);
        LazyGraph { raw: std::sync::Mutex::new(None), built }
    }

    fn deferred(raw: RawGraph) -> LazyGraph {
        LazyGraph { raw: std::sync::Mutex::new(Some(raw)), built: std::sync::OnceLock::new() }
    }

    /// The placeholder of a tombstoned or never-filled slot; builds to
    /// an empty graph if ever forced (queries never reach dead slots).
    fn empty() -> LazyGraph {
        LazyGraph { raw: std::sync::Mutex::new(None), built: std::sync::OnceLock::new() }
    }

    fn get(&self) -> &MatchGraph {
        self.built.get_or_init(|| {
            let raw = match self.raw.lock() {
                Ok(mut slot) => slot.take(),
                Err(poisoned) => poisoned.into_inner().take(),
            };
            // The skeleton was validated when the index was constructed;
            // a missing one (impossible by construction) degrades to an
            // empty graph rather than panicking.
            MatchGraph::from_validated(raw.unwrap_or_default())
        })
    }

    /// The skeleton, without forcing a build: still-deferred graphs are
    /// encoded from the stored raw directly.
    fn to_raw(&self) -> RawGraph {
        if let Some(graph) = self.built.get() {
            return graph.to_raw();
        }
        let raw = match self.raw.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        match raw {
            Some(raw) => raw,
            // A build raced us and took the raw; it has finished (or
            // will) — get() blocks until the graph is available.
            None => self.get().to_raw(),
        }
    }
}

/// Is `slot`'s bit set in a deletion bitmap?
fn slot_bit(bits: &[u64], slot: u32) -> bool {
    bits.get(slot as usize / 64).is_some_and(|w| w >> (slot % 64) & 1 == 1)
}

/// One partition of the index: the posting lists, membership, and
/// tombstone state for every slot `s` with `s % shard_count == self`.
/// Shards are the unit of query fan-out (one worker per shard), of
/// compaction (a shard scrubs alone), and of snapshot rewriting (a
/// mutated shard re-encodes alone, keyed by [`IndexShard::generation`]).
pub struct IndexShard {
    node_postings: FastMap<Arc<str>, Vec<u32>>,
    edge_postings: FastMap<Arc<str>, Vec<u32>>,
    participant_postings: FastMap<Arc<str>, Vec<u32>>,
    /// Live slots owned by this shard, ascending.
    live_members: Vec<u32>,
    /// Every tombstoned slot this shard has ever owned, ascending.
    /// Membership is permanent (slot ids are never reused), so the slot
    /// universe stays dense and snapshot slot ids stay stable.
    dead: Vec<u32>,
    /// Deletion bitmap over global slot ids (only this shard's slots are
    /// ever set): the per-list filter applied to every posting list at
    /// query time, equivalent to a per-list bitmap without duplicating
    /// it across lists.
    dead_bits: Vec<u64>,
    /// Tombstones whose posting entries have not been compacted away
    /// yet — the numerator of [`IndexShard::tombstone_fraction`].
    dead_pending: usize,
    /// Bumped on every mutation (insert, remove, compaction, reshard).
    generation: u64,
}

impl IndexShard {
    fn new() -> IndexShard {
        IndexShard {
            node_postings: FastMap::default(),
            edge_postings: FastMap::default(),
            participant_postings: FastMap::default(),
            live_members: Vec::new(),
            dead: Vec::new(),
            dead_bits: Vec::new(),
            dead_pending: 0,
            generation: 0,
        }
    }

    fn is_dead(&self, slot: u32) -> bool {
        slot_bit(&self.dead_bits, slot)
    }

    fn mark_dead(&mut self, slot: u32) {
        let word = slot as usize / 64;
        if self.dead_bits.len() <= word {
            self.dead_bits.resize(word + 1, 0);
        }
        self.dead_bits[word] |= 1u64 << (slot % 64);
    }

    /// Append `slot`'s postings; `slot` must be larger than every slot
    /// already present (guaranteed: slot ids are monotonic), which keeps
    /// every list ascending with a constant-time dedup.
    fn absorb(&mut self, slot: u32, analysed: &Analysed) {
        fn push(postings: &mut FastMap<Arc<str>, Vec<u32>>, key: &Arc<str>, slot: u32) {
            let list = postings.entry(Arc::clone(key)).or_default();
            if list.last() != Some(&slot) {
                list.push(slot);
            }
        }
        for (key, _) in analysed.graph.node_key_counts() {
            push(&mut self.node_postings, key, slot);
        }
        for key in analysed.graph.edge_keys() {
            push(&mut self.edge_postings, key, slot);
        }
        for pkey in &analysed.participants {
            push(&mut self.participant_postings, pkey, slot);
        }
        self.live_members.push(slot);
    }

    /// Scrub tombstoned slots out of every posting list in place and
    /// drop emptied lists. Slot ids never change, so no other shard is
    /// affected.
    fn compact(&mut self) {
        let bits = &self.dead_bits;
        for map in
            [&mut self.node_postings, &mut self.edge_postings, &mut self.participant_postings]
        {
            for list in map.values_mut() {
                list.retain(|&s| !slot_bit(bits, s));
            }
            map.retain(|_, list| !list.is_empty());
        }
        self.dead_pending = 0;
    }

    /// Live models this shard owns.
    pub fn live_models(&self) -> usize {
        self.live_members.len()
    }

    /// Tombstoned models this shard owns (membership is permanent, so
    /// this counts compacted tombstones too).
    pub fn tombstoned_models(&self) -> usize {
        self.dead.len()
    }

    /// Tombstones whose posting entries are still in the lists (resets
    /// to zero on compaction).
    pub fn pending_tombstones(&self) -> usize {
        self.dead_pending
    }

    /// Mutation counter; bumps on insert, remove, compaction and
    /// reshard. The snapshot layer reuses a shard's encoded section when
    /// the generation is unchanged.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Distinct (node, edge, participant) posting keys in this shard.
    pub fn posting_stats(&self) -> (usize, usize, usize) {
        (self.node_postings.len(), self.edge_postings.len(), self.participant_postings.len())
    }

    /// Fraction of posting membership that is tombstoned-but-uncompacted:
    /// `pending / (live + pending)`. The compaction trigger; never
    /// exceeds 1.0, so a threshold of 1.0 disables compaction.
    pub fn tombstone_fraction(&self) -> f64 {
        let entries = self.live_members.len() + self.dead_pending;
        if entries == 0 {
            return 0.0;
        }
        self.dead_pending as f64 / entries as f64
    }
}

/// Inverted match index over a prepared corpus; see the
/// [module docs](self).
pub struct MatchIndex {
    options: ComposeOptions,
    semantics: MatchSemantics,
    /// Slot-addressed storage; `None` marks a tombstoned slot. Slot ids
    /// are monotonic and never reused.
    slots: Vec<Option<Arc<PreparedModel>>>,
    /// Per slot: the match graph (refinement never re-derives it).
    graphs: Vec<LazyGraph>,
    /// Per slot: full canonical content-key set (Jaccard denominator),
    /// derived from the corpus preparation on first use after a snapshot
    /// load ([`MatchIndex::build`] fills it eagerly).
    content_key_sets: Vec<std::sync::OnceLock<FastSet<Arc<str>>>>,
    /// Per slot: participant keys present, sorted. A pure function of
    /// the prepared model and the semantics, so it is NOT serialised:
    /// snapshot loads leave the cells empty and the list is re-derived
    /// on first ranked use ([`MatchIndex::build`] fills it eagerly).
    participant_raw: Vec<std::sync::OnceLock<Vec<Arc<str>>>>,
    /// Per slot: `participant_raw[s]` as a set, built on first use after
    /// a snapshot load.
    participant_sets: Vec<std::sync::OnceLock<FastSet<Arc<str>>>>,
    /// Live slots, ascending (== insertion order, since slot ids are
    /// monotonic). Position in this list is the public model index.
    live: Vec<u32>,
    /// The live models in live order — what [`MatchIndex::corpus`]
    /// returns and what a fresh `build` would be given.
    live_corpus: Vec<Arc<PreparedModel>>,
    /// The posting partitions; slot `s` belongs to
    /// `shards[s % shards.len()]`.
    shards: Vec<IndexShard>,
    /// Index-wide mutation counter.
    generation: u64,
    compaction_threshold: f64,
    batch: BatchComposer,
    budget: u64,
    /// Per-query wall-clock allowance for the refinement stage; `None`
    /// (the default) means unlimited.
    deadline: Option<Duration>,
    top_k: usize,
}

/// A `OnceLock` already holding `value` — the eager-construction side of
/// the lazy per-slot state above.
fn filled<T>(value: T) -> std::sync::OnceLock<T> {
    let cell = std::sync::OnceLock::new();
    let _ = cell.set(value);
    cell
}

/// Per-candidate refinement verdict, internal to
/// [`MatchIndex::query_corpus_prepared`].
enum Refined {
    /// The query embeds; here is the witness.
    Hit(Embedding),
    /// The search space was exhausted — the query does not embed.
    Miss,
    /// Step budget or deadline ran out before the search decided.
    Truncated,
    /// The refinement panicked (contained per candidate).
    Failed,
}

/// One shard's contribution to a corpus query, merged by the gather
/// stage. All ids are slots.
#[derive(Default)]
struct ShardAnswer {
    candidates: Vec<u32>,
    exact: Vec<(u32, Embedding)>,
    truncated: Vec<u32>,
    failed: Vec<u32>,
}

/// The node-key multiset signature of a reaction's participants:
/// reactants ⇒ products | modifiers, each side sorted — id- and
/// kinetics-independent, so it survives renamed species and altered rate
/// laws as long as the *shape* of the reaction is preserved.
fn participant_key(label_of: &FastMap<&str, Arc<str>>, r: &Reaction) -> String {
    let side = |refs: &[sbml_model::SpeciesReference]| -> String {
        let mut keys: Vec<&str> = refs
            .iter()
            .map(|sr| label_of.get(sr.species.as_str()).map(|k| k.as_ref()).unwrap_or(&sr.species))
            .collect();
        keys.sort_unstable();
        keys.join(",")
    };
    format!("{}=>{}|{}", side(&r.reactants), side(&r.products), side(&r.modifiers))
}

/// The full canonical content-key set of a model under `options` — the
/// same per-kind keys a [`PreparedModel`] caches, via the shared
/// [`sbml_compose::model_content_keys`] enumeration (one source of truth
/// for the key families; a test in `sbml-compose` pins it to
/// [`PreparedModel::content_keys`]), so a *query* never pays for the
/// parts of a preparation matching does not need (indexes, initial-value
/// evaluation).
fn content_key_set(model: &Model, options: &ComposeOptions) -> FastSet<Arc<str>> {
    sbml_compose::model_content_keys(model, options)
        .into_iter()
        .map(|key| Arc::from(key.as_str()))
        .collect()
}

/// Species id → canonical node key of its graph label.
fn species_label_keys<'m>(
    model: &'m Model,
    semantics: &MatchSemantics,
) -> FastMap<&'m str, Arc<str>> {
    model
        .species
        .iter()
        .map(|s| {
            (s.id.as_str(), semantics.node_key_shared(s.name.as_deref().unwrap_or(&s.id)))
        })
        .collect()
}

/// Everything one model contributes to the index, derived once per
/// insert (and fanned out across workers by the bulk build).
struct Analysed {
    graph: MatchGraph,
    participants: FastSet<Arc<str>>,
    content: FastSet<Arc<str>>,
}

fn analyse(p: &PreparedModel, semantics: &MatchSemantics, options: &ComposeOptions) -> Analysed {
    let model = p.model();
    let reaction_keys = semantics.content_key_edges().then(|| p.reaction_content_keys());
    let graph = MatchGraph::build(model, semantics, options, reaction_keys);
    let label_of = species_label_keys(model, semantics);
    let participants: FastSet<Arc<str>> = model
        .reactions
        .iter()
        .map(|r| Arc::<str>::from(participant_key(&label_of, r).as_str()))
        .collect();
    Analysed { graph, participants, content: p.content_keys().cloned().collect() }
}

impl MatchIndex {
    /// Build the index over a prepared corpus. Every preparation must
    /// carry the fingerprint of `options` (the same rule every prepared
    /// composition entry point enforces): the cached content keys being
    /// inverted here are only meaningful under the options that derived
    /// them.
    ///
    /// The corpus is borrowed as `&[Arc<PreparedModel>]` — the index
    /// keeps `Arc` clones (refcount bumps, no model copies), so a daemon
    /// can share one prepared corpus across the index, a
    /// [`BatchComposer`], and its own handlers without cloning models.
    ///
    /// # Panics
    /// If a preparation's fingerprint does not match `options`.
    pub fn build(corpus: &[Arc<PreparedModel>], options: &ComposeOptions) -> MatchIndex {
        MatchIndex::build_sharded(corpus, options, 0, 1)
    }

    /// As [`MatchIndex::build`], but with the worker-thread bound applied
    /// to the build itself as well as to later queries (`0` = one per
    /// core, the [`MatchIndex::build`] default). Thread count never
    /// affects the index contents or query results.
    pub fn build_with_threads(
        corpus: &[Arc<PreparedModel>],
        options: &ComposeOptions,
        threads: usize,
    ) -> MatchIndex {
        MatchIndex::build_sharded(corpus, options, threads, 1)
    }

    /// As [`MatchIndex::build_with_threads`], partitioned into `shards`
    /// posting shards (clamped to at least 1). Shard count never affects
    /// query results, only fan-out granularity; equivalent to
    /// `build_with_threads(..).with_shards(shards)` but without the
    /// reshard pass.
    pub fn build_sharded(
        corpus: &[Arc<PreparedModel>],
        options: &ComposeOptions,
        threads: usize,
        shards: usize,
    ) -> MatchIndex {
        let semantics = MatchSemantics::from_options(options);
        let batch = BatchComposer::new(Composer::new(options.clone())).with_threads(threads);
        let fingerprint = options.fingerprint();
        for p in corpus {
            assert!(
                p.fingerprint() == fingerprint,
                "PreparedModel for {:?} was prepared under different options; \
                 re-prepare it with the matching options",
                p.model().id,
            );
        }
        // Per-model analysis (graph extraction, key resolution) is
        // independent — fan it out thread-per-shard like prepare_corpus;
        // map_corpus returns in corpus order, so the serial append fold
        // below is deterministic regardless of scheduling.
        let analysed: Vec<Analysed> =
            batch.map_corpus(corpus, |_, p| analyse(p, &semantics, options));
        let count = shards.max(1);
        let mut index = MatchIndex {
            semantics,
            slots: Vec::with_capacity(corpus.len()),
            graphs: Vec::with_capacity(corpus.len()),
            content_key_sets: Vec::with_capacity(corpus.len()),
            participant_raw: Vec::with_capacity(corpus.len()),
            participant_sets: Vec::with_capacity(corpus.len()),
            live: Vec::with_capacity(corpus.len()),
            live_corpus: Vec::with_capacity(corpus.len()),
            shards: (0..count).map(|_| IndexShard::new()).collect(),
            generation: 0,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            batch,
            budget: DEFAULT_BUDGET,
            deadline: None,
            top_k: 10,
            options: options.clone(),
        };
        for (p, a) in corpus.iter().zip(analysed) {
            index.append(Arc::clone(p), a);
        }
        index
    }

    /// Append an analysed model in the next slot. Shared by the bulk
    /// build and [`MatchIndex::insert`], so "built all at once" and
    /// "grown one insert at a time" produce identical posting state.
    fn append(&mut self, prepared: Arc<PreparedModel>, analysed: Analysed) -> usize {
        let slot = self.slots.len() as u32;
        let si = slot as usize % self.shards.len();
        self.shards[si].absorb(slot, &analysed);
        self.shards[si].generation += 1;
        self.generation += 1;
        let mut sorted: Vec<Arc<str>> = analysed.participants.iter().cloned().collect();
        sorted.sort_unstable();
        self.participant_raw.push(filled(sorted));
        self.participant_sets.push(filled(analysed.participants));
        self.content_key_sets.push(filled(analysed.content));
        self.graphs.push(LazyGraph::from_built(analysed.graph));
        self.slots.push(Some(Arc::clone(&prepared)));
        self.live.push(slot);
        self.live_corpus.push(prepared);
        self.live.len() - 1
    }

    /// Incrementally index one more prepared model: analyse it once and
    /// append its postings to its home shard in place — O(model) work,
    /// no rebuild, no effect on any other model's postings. Returns the
    /// new model's index in the live corpus (always the current
    /// [`MatchIndex::len`]` - 1` after the call).
    ///
    /// The grown index answers every query identically to a fresh
    /// [`MatchIndex::build`] over the same live models (property-tested
    /// across insert/remove/query interleavings).
    ///
    /// # Panics
    /// If the preparation's fingerprint does not match the index
    /// options.
    pub fn insert(&mut self, prepared: Arc<PreparedModel>) -> usize {
        assert!(
            prepared.fingerprint() == self.options.fingerprint(),
            "PreparedModel for {:?} was prepared under different options; \
             re-prepare it with the matching options",
            prepared.model().id,
        );
        let analysed = analyse(&prepared, &self.semantics, &self.options);
        self.append(prepared, analysed)
    }

    /// Remove the live model at index `model` (as reported by query
    /// results / [`MatchIndex::corpus`]), returning its preparation, or
    /// `None` when the index is out of range. Later models shift down by
    /// one, exactly as if the corpus had been rebuilt without the model.
    ///
    /// Internally the model's slot is *tombstoned*: the shard's deletion
    /// bitmap masks it out of every posting list at query time and the
    /// per-slot caches are dropped immediately; the posting entries
    /// themselves linger until the shard's tombstone fraction crosses
    /// [`MatchIndex::with_compaction_threshold`] and the shard compacts
    /// in place. Slot ids are never reused.
    pub fn remove(&mut self, model: usize) -> Option<Arc<PreparedModel>> {
        if model >= self.live.len() {
            return None;
        }
        let slot = self.live.remove(model);
        let removed = self.live_corpus.remove(model);
        let si = slot as usize % self.shards.len();
        {
            let shard = &mut self.shards[si];
            if let Ok(pos) = shard.live_members.binary_search(&slot) {
                shard.live_members.remove(pos);
            }
            if let Err(pos) = shard.dead.binary_search(&slot) {
                shard.dead.insert(pos, slot);
            }
            shard.mark_dead(slot);
            shard.dead_pending += 1;
            shard.generation += 1;
        }
        self.generation += 1;
        self.slots[slot as usize] = None;
        self.graphs[slot as usize] = LazyGraph::empty();
        self.content_key_sets[slot as usize] = std::sync::OnceLock::new();
        self.participant_raw[slot as usize] = std::sync::OnceLock::new();
        self.participant_sets[slot as usize] = std::sync::OnceLock::new();
        if self.shards[si].tombstone_fraction() > self.compaction_threshold {
            self.shards[si].compact();
            self.shards[si].generation += 1;
            self.generation += 1;
        }
        Some(removed)
    }

    /// Compact every shard that has pending tombstones, regardless of
    /// threshold — scrubs dead slots out of the posting lists in place.
    pub fn compact(&mut self) {
        let mut changed = false;
        for shard in &mut self.shards {
            if shard.dead_pending > 0 {
                shard.compact();
                shard.generation += 1;
                changed = true;
            }
        }
        if changed {
            self.generation += 1;
        }
    }

    /// Repartition the posting lists into `shards` shards (clamped to at
    /// least 1) by the deterministic rule `slot % shards`. Pure data
    /// movement — no model is re-analysed — and implicitly a full
    /// compaction (tombstoned entries are dropped while redistributing).
    /// Shard count never affects query results, only fan-out
    /// granularity.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> MatchIndex {
        let count = shards.max(1);
        if count == self.shards.len() {
            return self;
        }
        let mut next: Vec<IndexShard> = (0..count).map(|_| IndexShard::new()).collect();
        for shard in &self.shards {
            for family in 0..3usize {
                let src = match family {
                    0 => &shard.node_postings,
                    1 => &shard.edge_postings,
                    _ => &shard.participant_postings,
                };
                for (key, list) in src {
                    for &slot in list {
                        if shard.is_dead(slot) {
                            continue;
                        }
                        let dst = &mut next[slot as usize % count];
                        let map = match family {
                            0 => &mut dst.node_postings,
                            1 => &mut dst.edge_postings,
                            _ => &mut dst.participant_postings,
                        };
                        map.entry(Arc::clone(key)).or_default().push(slot);
                    }
                }
            }
            for &slot in &shard.live_members {
                next[slot as usize % count].live_members.push(slot);
            }
            for &slot in &shard.dead {
                let dst = &mut next[slot as usize % count];
                dst.dead.push(slot);
                dst.mark_dead(slot);
            }
        }
        self.generation += 1;
        for shard in &mut next {
            for map in [
                &mut shard.node_postings,
                &mut shard.edge_postings,
                &mut shard.participant_postings,
            ] {
                // Old shards interleave in slot space, so redistributed
                // lists arrive out of order exactly once, here.
                for list in map.values_mut() {
                    list.sort_unstable();
                }
            }
            shard.live_members.sort_unstable();
            shard.dead.sort_unstable();
            shard.generation = self.generation;
        }
        self.shards = next;
        self
    }

    /// Set the tombstone fraction above which a shard compacts its
    /// posting lists in place (default
    /// [`DEFAULT_COMPACTION_THRESHOLD`]). `0.0` compacts on every
    /// removal; `1.0` never compacts automatically (the fraction cannot
    /// exceed 1.0 — use [`MatchIndex::compact`] to scrub manually).
    #[must_use]
    pub fn with_compaction_threshold(mut self, fraction: f64) -> MatchIndex {
        self.compaction_threshold = fraction;
        self
    }

    /// Extract the serialisable skeleton of this index: graphs (live
    /// order), per-shard membership and posting lists, with every map
    /// flattened into key-sorted vectors so the result is deterministic
    /// for a given corpus, options, and mutation history. Posting lists
    /// are scrubbed of tombstoned entries on the way out (an unchanged
    /// shard still flattens identically — scrubbing is a pure function
    /// of its state). Content-key sets and per-slot participant-key
    /// lists are *not* carried — both are pure functions of the corpus's
    /// [`PreparedModel`]s, so [`MatchIndex::from_raw`] re-derives them
    /// lazily on first use.
    pub fn to_raw(&self) -> RawIndex {
        let flatten = |postings: &FastMap<Arc<str>, Vec<u32>>,
                       shard: &IndexShard|
         -> Vec<(Arc<str>, Vec<u32>)> {
            let mut out: Vec<(Arc<str>, Vec<u32>)> = postings
                .iter()
                .filter_map(|(k, v)| {
                    let list: Vec<u32> =
                        v.iter().copied().filter(|&s| !shard.is_dead(s)).collect();
                    if list.is_empty() {
                        None
                    } else {
                        Some((Arc::clone(k), list))
                    }
                })
                .collect();
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        };
        RawIndex {
            generation: self.generation,
            live: self.live.clone(),
            graphs: self.live.iter().map(|&s| self.graphs[s as usize].to_raw()).collect(),
            shards: self
                .shards
                .iter()
                .map(|shard| RawShard {
                    generation: shard.generation,
                    members: shard.live_members.clone(),
                    dead: shard.dead.clone(),
                    node_postings: flatten(&shard.node_postings, shard),
                    edge_postings: flatten(&shard.edge_postings, shard),
                    participant_postings: flatten(&shard.participant_postings, shard),
                })
                .collect(),
        }
    }

    /// Rebuild a [`MatchIndex`] from a skeleton and its **live** corpus
    /// (the models in live order, as returned by [`MatchIndex::corpus`]),
    /// skipping graph extraction, key resolution, and posting inversion
    /// entirely — the snapshot fast path. Content-key sets come straight
    /// off each [`PreparedModel`] as `Arc` clones (no
    /// re-canonicalisation). Every structural claim the skeleton makes
    /// is validated — the slot universe must be exactly `live ∪ dead`
    /// and dense from 0, shard membership must follow `slot % count`,
    /// posting lists must be ascending over member-or-tombstoned slots,
    /// graphs must be consistent; violations return a structured error,
    /// never a panic, because the skeleton may come from an untrusted
    /// snapshot file.
    ///
    /// # Errors
    /// If a preparation's fingerprint does not match `options`, or the
    /// skeleton is inconsistent with the corpus.
    pub fn from_raw(
        raw: RawIndex,
        corpus: &[Arc<PreparedModel>],
        options: &ComposeOptions,
        threads: usize,
    ) -> Result<MatchIndex, String> {
        let fingerprint = options.fingerprint();
        for p in corpus {
            if p.fingerprint() != fingerprint {
                return Err(format!(
                    "PreparedModel for {:?} was prepared under different options",
                    p.model().id,
                ));
            }
        }
        let n = corpus.len();
        if raw.live.len() != n {
            return Err(format!("raw index lists {} live slots for {n} models", raw.live.len()));
        }
        if raw.graphs.len() != n {
            return Err(format!("raw index carries {} graphs for {n} models", raw.graphs.len()));
        }
        if !raw.live.windows(2).all(|w| w[0] < w[1]) {
            return Err("live slots must be strictly ascending".into());
        }
        let count = raw.shards.len();
        if count == 0 {
            return Err("raw index carries no shards".into());
        }
        let ascending = |list: &[u32]| list.windows(2).all(|w| w[0] < w[1]);
        // The slot universe must be exactly live ∪ dead, dense from 0 —
        // this both validates membership and bounds every allocation
        // below by the data actually present.
        let mut universe: Vec<u32> = raw.live.clone();
        let mut members: Vec<u32> = Vec::new();
        for (si, shard) in raw.shards.iter().enumerate() {
            if !ascending(&shard.members) || !ascending(&shard.dead) {
                return Err(format!("shard {si} membership lists must be strictly ascending"));
            }
            for &slot in shard.members.iter().chain(&shard.dead) {
                if slot as usize % count != si {
                    return Err(format!("slot {slot} listed in shard {si}, not its home shard"));
                }
            }
            universe.extend_from_slice(&shard.dead);
            members.extend_from_slice(&shard.members);
        }
        universe.sort_unstable();
        if universe.iter().enumerate().any(|(i, &s)| s as usize != i) {
            return Err("slot universe (live ∪ dead) must be dense from 0".into());
        }
        members.sort_unstable();
        if members != raw.live {
            return Err("shard live members disagree with the index live list".into());
        }
        let slot_count = universe.len();
        for (si, shard) in raw.shards.iter().enumerate() {
            for (family, lists) in [
                ("node", &shard.node_postings),
                ("edge", &shard.edge_postings),
                ("participant", &shard.participant_postings),
            ] {
                for (key, list) in lists {
                    if !ascending(list) {
                        return Err(format!(
                            "shard {si} {family} posting {key:?} is not ascending"
                        ));
                    }
                    for &slot in list {
                        let owned = shard.members.binary_search(&slot).is_ok()
                            || shard.dead.binary_search(&slot).is_ok();
                        if !owned {
                            return Err(format!(
                                "shard {si} {family} posting {key:?} references slot {slot} \
                                 the shard does not own"
                            ));
                        }
                    }
                }
            }
        }
        // Skeletons are validated now (a corrupt one must surface as an
        // error here, not a panic later), but built lazily: adjacency and
        // key indexes are derived on the first query that refines against
        // the model, keeping the load itself a pure decode.
        let mut graphs: Vec<LazyGraph> = Vec::new();
        graphs.resize_with(slot_count, LazyGraph::empty);
        let mut slots: Vec<Option<Arc<PreparedModel>>> = vec![None; slot_count];
        for (i, g) in raw.graphs.into_iter().enumerate() {
            if let Err(e) = MatchGraph::validate_raw(&g) {
                return Err(format!("graph {i}: {e}"));
            }
            let slot = raw.live[i] as usize;
            graphs[slot] = LazyGraph::deferred(g);
            slots[slot] = Some(Arc::clone(&corpus[i]));
        }
        let shards: Vec<IndexShard> = raw
            .shards
            .into_iter()
            .map(|rs| {
                let mut shard = IndexShard::new();
                shard.generation = rs.generation;
                // Rebuild the deletion bitmap from the tombstone list;
                // extracted lists are scrubbed, so nothing is pending —
                // the bitmap only guards against hostile skeletons that
                // smuggled dead slots back into a list.
                for &slot in &rs.dead {
                    shard.mark_dead(slot);
                }
                shard.live_members = rs.members;
                shard.dead = rs.dead;
                shard.node_postings = rs.node_postings.into_iter().collect();
                shard.edge_postings = rs.edge_postings.into_iter().collect();
                shard.participant_postings = rs.participant_postings.into_iter().collect();
                shard
            })
            .collect();
        Ok(MatchIndex {
            semantics: MatchSemantics::from_options(options),
            slots,
            graphs,
            content_key_sets: (0..slot_count).map(|_| std::sync::OnceLock::new()).collect(),
            participant_raw: (0..slot_count).map(|_| std::sync::OnceLock::new()).collect(),
            participant_sets: (0..slot_count).map(|_| std::sync::OnceLock::new()).collect(),
            live: raw.live,
            live_corpus: corpus.to_vec(),
            shards,
            generation: raw.generation,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            batch: BatchComposer::new(Composer::new(options.clone())).with_threads(threads),
            budget: DEFAULT_BUDGET,
            deadline: None,
            top_k: 10,
            options: options.clone(),
        })
    }

    /// Bound the worker threads [`MatchIndex::query_corpus`] fans out on
    /// (`0` = one per core). Thread count never affects results.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> MatchIndex {
        self.batch = BatchComposer::new(Composer::new(self.options.clone())).with_threads(threads);
        self
    }

    /// Set the VF2 step budget per (query, model) refinement (default
    /// [`DEFAULT_BUDGET`]). An exhausted budget counts as "no embedding".
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> MatchIndex {
        self.budget = budget;
        self
    }

    /// Bound the wall-clock time each query's refinement stage may spend
    /// (default: unlimited). Candidates still undecided when the deadline
    /// passes come back in [`CorpusMatches::truncated`] instead of
    /// silently counting as misses, and approximate ranking still runs —
    /// the degradation ladder's "ranked partial answer beats no answer"
    /// rung. Unlike the step budget, a deadline makes *which* candidates
    /// truncate machine-speed dependent; results stay deterministic only
    /// per (machine, load).
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> MatchIndex {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// How many approximate hits to rank when exact matching fails
    /// (default 10).
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> MatchIndex {
        self.top_k = top_k;
        self
    }

    /// Number of live corpus models indexed.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live model is indexed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The live indexed corpus, in the order query results index into.
    pub fn corpus(&self) -> &[Arc<PreparedModel>] {
        &self.live_corpus
    }

    /// The matching semantics the index was built under.
    pub fn semantics(&self) -> &MatchSemantics {
        &self.semantics
    }

    /// The posting shards (read-only view, for stats and snapshots).
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// How many shards the posting lists are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index-wide mutation counter: bumps on every insert, remove,
    /// compaction and reshard. Survives a raw/snapshot round trip.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total tombstoned models across all shards (compacted or not).
    pub fn tombstoned_len(&self) -> usize {
        self.shards.iter().map(|s| s.dead.len()).sum()
    }

    /// Distinct (node, edge, participant) posting keys, summed across
    /// shards — index-size telemetry for benches and logs. (A key shared
    /// by models in different shards counts once per shard.)
    pub fn posting_stats(&self) -> (usize, usize, usize) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            let (n, e, p) = s.posting_stats();
            (acc.0 + n, acc.1 + e, acc.2 + p)
        })
    }

    /// Live slot ids, ascending: `corpus()[i]` occupies slot
    /// `live_slots()[i]`. Public result indices ("model `k`") are ranks
    /// into this list; slot ids themselves are stable across mutations,
    /// which is what lets a remote merge layer translate shard-local
    /// answers back into global positions.
    pub fn live_slots(&self) -> &[u32] {
        &self.live
    }

    /// Size of the dense slot universe (live ∪ tombstoned) — equivalently
    /// the slot id the next insert will take. Slots are never reused, so
    /// this only grows; a cluster coordinator allocating global slots
    /// starts from here.
    pub fn slot_universe(&self) -> usize {
        self.slots.len()
    }

    /// Analyse a query once: build its match graph, collect the distinct
    /// keys candidate generation intersects, and derive the key sets
    /// ranking scores against. Reuse the result across any number of
    /// candidate/query calls against this index.
    pub fn prepare_query(&self, query: &Model) -> PreparedQuery {
        let graph = MatchGraph::build(query, &self.semantics, &self.options, None);
        // Node i of the graph is query.species[i].
        let species_ids: Vec<String> = query.species.iter().map(|s| s.id.clone()).collect();
        let mut node_keys: Vec<Arc<str>> =
            graph.node_key_counts().map(|(k, _)| Arc::clone(k)).collect();
        node_keys.sort_unstable();
        let mut edge_keys: Vec<Arc<str>> = graph.edge_keys().cloned().collect();
        edge_keys.sort_unstable();
        let label_of = species_label_keys(query, &self.semantics);
        let participant_keys = query
            .reactions
            .iter()
            .map(|r| Arc::<str>::from(participant_key(&label_of, r).as_str()))
            .collect();
        PreparedQuery {
            species_ids,
            reaction_ids: query.reactions.iter().map(|r| r.id.clone()).collect(),
            node_keys,
            edge_keys,
            participant_keys,
            content_keys: content_key_set(query, &self.options),
            graph,
        }
    }

    /// Candidate generation: models whose posting lists contain *every*
    /// distinct query node key and edge key, ascending. A query with no
    /// graph nodes embeds trivially, so every live model is a candidate.
    pub fn candidates(&self, query: &Model) -> Vec<usize> {
        self.candidates_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::candidates`] over an already-prepared query.
    pub fn candidates_prepared(&self, qa: &PreparedQuery) -> Vec<usize> {
        let mut slots: Vec<u32> = Vec::new();
        for shard in &self.shards {
            slots.extend(self.shard_candidates(shard, qa));
        }
        slots.sort_unstable();
        slots.into_iter().map(|s| self.rank_of(s)).collect()
    }

    /// One shard's candidates (as slots, ascending): intersect the
    /// shard's posting lists for every query key, then mask tombstones.
    /// A key missing from this shard just means no candidates *here* —
    /// other shards may still carry it.
    fn shard_candidates(&self, shard: &IndexShard, qa: &PreparedQuery) -> Vec<u32> {
        if qa.graph.node_count() == 0 {
            return shard.live_members.clone();
        }
        let mut lists: Vec<&[u32]> = Vec::with_capacity(qa.node_keys.len() + qa.edge_keys.len());
        for key in &qa.node_keys {
            match shard.node_postings.get(key.as_ref()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        for key in &qa.edge_keys {
            match shard.edge_postings.get(key.as_ref()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_unstable_by_key(|list| list.len());
        let mut acc: Vec<u32> = lists[0].to_vec();
        for list in &lists[1..] {
            acc.retain(|m| list.binary_search(m).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc.retain(|&s| !shard.is_dead(s));
        acc
    }

    /// Public model index (rank in the live corpus) of a live slot.
    fn rank_of(&self, slot: u32) -> usize {
        // Live slots are ascending, so the remap is monotonic: sorting
        // by slot then remapping equals sorting by rank.
        self.live.binary_search(&slot).unwrap_or_else(|pos| pos)
    }

    fn refine(&self, qa: &PreparedQuery, target: usize) -> Option<Embedding> {
        let &slot = self.live.get(target)?;
        let deadline = self.deadline.map(|d| Instant::now() + d);
        match self.refine_limited(qa, slot as usize, deadline) {
            Refined::Hit(embedding) => Some(embedding),
            Refined::Miss | Refined::Truncated | Refined::Failed => None,
        }
    }

    /// The match graph stored in `slot`, built from its skeleton on
    /// first use after a snapshot load.
    fn graph(&self, slot: usize) -> &MatchGraph {
        self.graphs[slot].get()
    }

    /// The content-key set of the model in `slot` (Jaccard denominator),
    /// derived from the preparation on first use after a snapshot load.
    fn content_keys_of(&self, slot: usize) -> &FastSet<Arc<str>> {
        self.content_key_sets[slot].get_or_init(|| match &self.slots[slot] {
            Some(p) => p.content_keys().cloned().collect(),
            None => FastSet::default(),
        })
    }

    /// The sorted participant-key list of the model in `slot`, re-derived
    /// from the prepared model on first use after a snapshot load.
    fn participant_raw_of(&self, slot: usize) -> &[Arc<str>] {
        self.participant_raw[slot].get_or_init(|| match &self.slots[slot] {
            Some(p) => {
                let model = p.model();
                let label_of = species_label_keys(model, &self.semantics);
                let pset: FastSet<Arc<str>> = model
                    .reactions
                    .iter()
                    .map(|r| Arc::<str>::from(participant_key(&label_of, r).as_str()))
                    .collect();
                let mut sorted: Vec<Arc<str>> = pset.into_iter().collect();
                sorted.sort_unstable();
                sorted
            }
            None => Vec::new(),
        })
    }

    /// The participant-key set of the model in `slot`, derived from the
    /// sorted key list on first use after a snapshot load.
    fn participants_of(&self, slot: usize) -> &FastSet<Arc<str>> {
        self.participant_sets[slot]
            .get_or_init(|| self.participant_raw_of(slot).iter().cloned().collect())
    }

    fn refine_limited(
        &self,
        qa: &PreparedQuery,
        slot: usize,
        deadline: Option<Instant>,
    ) -> Refined {
        // Dead slots never reach refinement (candidates are masked);
        // degrade to a miss rather than panicking if one ever did.
        let Some(prepared) = &self.slots[slot] else {
            return Refined::Miss;
        };
        let tg = self.graph(slot);
        let limits = SearchLimits { budget: self.budget, deadline };
        let mapping = match find_embedding_limited(&qa.graph, tg, limits) {
            SearchOutcome::Found(mapping) => mapping,
            SearchOutcome::NotFound => return Refined::Miss,
            SearchOutcome::BudgetExhausted => return Refined::Truncated,
        };
        let target_model = prepared.model();
        let species = mapping
            .iter()
            .enumerate()
            .map(|(q, &t)| {
                (qa.species_ids[q].clone(), target_model.species[t as usize].id.clone())
            })
            .collect();
        // For each query edge, the first key-equal target edge between the
        // images witnesses the reaction correspondence.
        let mut reactions: BTreeMap<usize, String> = BTreeMap::new();
        for e in 0..qa.graph.edge_count() as u32 {
            let edge = qa.graph.edge(e);
            let qr = qa.graph.reaction_of(e);
            if reactions.contains_key(&qr) {
                continue;
            }
            let (tf, tt) = (mapping[edge.from as usize], mapping[edge.to as usize]);
            if let Some(&(_, te)) = tg
                .out_edges(tf)
                .iter()
                .find(|&&(n, te)| n == tt && tg.edge(te).key == edge.key)
            {
                reactions.insert(qr, target_model.reactions[tg.reaction_of(te)].id.clone());
            }
        }
        let reactions = reactions
            .into_iter()
            .map(|(qr, tid)| (qa.reaction_ids[qr].clone(), tid))
            .collect();
        Refined::Hit(Embedding { species, reactions })
    }

    /// Exact match against one live corpus model: the witnessing
    /// embedding, or `None` when the query does not embed (or the budget
    /// ran out, or `target` is out of range).
    pub fn query_model(&self, query: &Model, target: usize) -> Option<Embedding> {
        self.refine(&self.prepare_query(query), target)
    }

    /// Search the whole corpus: candidate generation and VF2 refinement
    /// scattered shard-per-worker over the [`BatchComposer`]'s shared
    /// [`WorkerPool`](sbml_compose::pool::WorkerPool), then a
    /// rank-stable gather — exact hits in corpus order; when no model
    /// embeds the query, the per-shard score lists merge into the global
    /// ranked top-k. Deterministic for a given index and query,
    /// independent of thread and shard count.
    ///
    /// Refinement faults never abort the query: a candidate whose search
    /// exhausts [`MatchIndex::with_budget`] /
    /// [`MatchIndex::with_deadline_ms`] lands in
    /// [`CorpusMatches::truncated`], one that panics lands in
    /// [`CorpusMatches::failed`], and every other candidate's verdict is
    /// bit-identical to a fault-free run.
    pub fn query_corpus(&self, query: &Model) -> CorpusMatches {
        self.query_corpus_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::query_corpus`] over an already-prepared query.
    pub fn query_corpus_prepared(&self, qa: &PreparedQuery) -> CorpusMatches {
        // One shared deadline for the whole refinement stage, not one per
        // candidate or shard — [`MatchIndex::with_deadline_ms`] bounds
        // the query.
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let answers = self.scatter(|shard| self.query_shard(shard, qa, deadline));
        let mut exact: Vec<(u32, Embedding)> = Vec::new();
        let mut candidates: Vec<u32> = Vec::new();
        let mut truncated: Vec<u32> = Vec::new();
        let mut failed: Vec<u32> = Vec::new();
        for answer in answers {
            exact.extend(answer.exact);
            candidates.extend(answer.candidates);
            truncated.extend(answer.truncated);
            failed.extend(answer.failed);
        }
        // Gather: slots interleave across shards; one sort restores
        // corpus order, and the slot→rank remap is monotonic, so the
        // result is exactly what a single-shard index reports.
        exact.sort_by_key(|&(slot, _)| slot);
        candidates.sort_unstable();
        truncated.sort_unstable();
        failed.sort_unstable();
        let approximate = if exact.is_empty() {
            let mut hits: Vec<ApproxHit> =
                self.scatter(|shard| self.rank_shard(shard, qa)).into_iter().flatten().collect();
            // Rank-stable top-k merge: score descending, slot (== rank
            // order) ascending on ties — the same total order the
            // single-shard ranking sorts by.
            hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.model.cmp(&b.model)));
            hits.truncate(self.top_k);
            for hit in &mut hits {
                hit.model = self.rank_of(hit.model as u32);
            }
            hits
        } else {
            Vec::new()
        };
        CorpusMatches {
            exact: exact
                .into_iter()
                .map(|(slot, embedding)| CorpusHit { model: self.rank_of(slot), embedding })
                .collect(),
            approximate,
            candidates: candidates.into_iter().map(|s| self.rank_of(s)).collect(),
            truncated: truncated.into_iter().map(|s| self.rank_of(s)).collect(),
            failed: failed.into_iter().map(|s| self.rank_of(s)).collect(),
        }
    }

    /// Run `f` once per shard, fanned out one-shard-per-worker on the
    /// batch's shared pool. A single shard runs inline on the caller —
    /// the same code path, no pool touched. Results come back in shard
    /// order.
    fn scatter<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&IndexShard) -> R + Sync,
    {
        if self.shards.len() <= 1 {
            return self.shards.iter().map(&f).collect();
        }
        let mut cells: Vec<Option<R>> = Vec::new();
        cells.resize_with(self.shards.len(), || None);
        {
            let f = &f;
            let (head, tail) = cells.split_at_mut(1);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = tail
                .iter_mut()
                .zip(&self.shards[1..])
                .map(|(cell, shard)| {
                    Box::new(move || {
                        *cell = Some(f(shard));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let head_cell = &mut head[0];
            let head_shard = &self.shards[0];
            self.batch.shared_pool().run_scoped(
                || {
                    *head_cell = Some(f(head_shard));
                },
                tasks,
            );
        }
        cells.into_iter().flatten().collect()
    }

    /// One shard's scatter step: generate its candidates and refine each
    /// one. Per-candidate faults are contained exactly as in the serial
    /// path; with a single shard a large candidate set additionally fans
    /// out per-candidate (the pre-shard parallelism), while multi-shard
    /// runs keep refinement inside the shard's worker.
    fn query_shard(
        &self,
        shard: &IndexShard,
        qa: &PreparedQuery,
        deadline: Option<Instant>,
    ) -> ShardAnswer {
        let candidates = self.shard_candidates(shard, qa);
        // A refinement that panics or overruns is contained to its own
        // candidate: unwinding is caught here, budget/deadline overrun is
        // reported by the search itself, and either way every other
        // candidate's verdict is untouched.
        let refine_one = |k: usize| -> Refined {
            catch_unwind(AssertUnwindSafe(|| {
                guard::fail_point(Site::Query(k));
                self.refine_limited(qa, candidates[k] as usize, deadline)
            }))
            .unwrap_or(Refined::Failed)
        };
        // Refinement of a typical (small) candidate set is microseconds —
        // below the cutoff, spawning workers costs more than it overlaps.
        // Results are identical either way.
        const PARALLEL_REFINE_THRESHOLD: usize = 16;
        let parallel = self.shards.len() == 1 && candidates.len() >= PARALLEL_REFINE_THRESHOLD;
        let refined: Vec<Refined> = if parallel {
            let subset: Vec<Arc<PreparedModel>> =
                candidates.iter().filter_map(|&s| self.slots[s as usize].clone()).collect();
            if subset.len() == candidates.len() {
                self.batch.map_corpus(&subset, |k, _| refine_one(k))
            } else {
                (0..candidates.len()).map(refine_one).collect()
            }
        } else {
            (0..candidates.len()).map(refine_one).collect()
        };
        let mut answer = ShardAnswer { candidates: Vec::new(), ..ShardAnswer::default() };
        for (&slot, outcome) in candidates.iter().zip(refined) {
            match outcome {
                Refined::Hit(embedding) => answer.exact.push((slot, embedding)),
                Refined::Miss => {}
                Refined::Truncated => answer.truncated.push(slot),
                Refined::Failed => answer.failed.push(slot),
            }
        }
        answer.candidates = candidates;
        answer
    }

    /// Reference scan: run the VF2 refiner against **every** live corpus
    /// model with no candidate pruning, returning the models the query
    /// embeds in. [`MatchIndex::query_corpus`]'s exact hit set equals
    /// this by construction (property-tested); the `corpus_match` bench
    /// gates the speedup of the indexed path over this naïve one.
    pub fn naive_hits(&self, query: &Model) -> Vec<usize> {
        self.naive_hits_prepared(&self.prepare_query(query))
    }

    /// [`MatchIndex::naive_hits`] over an already-prepared query.
    pub fn naive_hits_prepared(&self, qa: &PreparedQuery) -> Vec<usize> {
        (0..self.live.len())
            .filter(|&rank| {
                let slot = self.live[rank] as usize;
                matches!(
                    find_embedding(&qa.graph, self.graph(slot), self.budget),
                    SearchOutcome::Found(_)
                )
            })
            .collect()
    }

    /// One shard's ranking step: every live model of the shard sharing
    /// at least one node, edge or participant posting with the query,
    /// scored by content-key Jaccard plus mapped fraction. Hit `model`
    /// fields are slots; the gather remaps them.
    fn rank_shard(&self, shard: &IndexShard, qa: &PreparedQuery) -> Vec<ApproxHit> {
        let mut pool: Vec<u32> = Vec::new();
        for key in &qa.node_keys {
            if let Some(list) = shard.node_postings.get(key.as_ref()) {
                pool.extend_from_slice(list);
            }
        }
        for key in &qa.edge_keys {
            if let Some(list) = shard.edge_postings.get(key.as_ref()) {
                pool.extend_from_slice(list);
            }
        }
        for key in &qa.participant_keys {
            if let Some(list) = shard.participant_postings.get(key.as_ref()) {
                pool.extend_from_slice(list);
            }
        }
        pool.sort_unstable();
        pool.dedup();
        pool.retain(|&s| !shard.is_dead(s));

        pool.into_iter()
            .map(|s| {
                let slot = s as usize;
                let jaccard = self.jaccard(&qa.content_keys, slot);
                let mapped_fraction = self.mapped_fraction(qa, slot);
                ApproxHit {
                    model: slot,
                    score: (jaccard + mapped_fraction) / 2.0,
                    jaccard,
                    mapped_fraction,
                }
            })
            .collect()
    }

    fn jaccard(&self, query_keys: &FastSet<Arc<str>>, slot: usize) -> f64 {
        let model_keys = self.content_keys_of(slot);
        if query_keys.is_empty() && model_keys.is_empty() {
            return 1.0;
        }
        let shared = query_keys.iter().filter(|k| model_keys.contains(k.as_ref())).count();
        let union = query_keys.len() + model_keys.len() - shared;
        shared as f64 / union as f64
    }

    fn mapped_fraction(&self, qa: &PreparedQuery, slot: usize) -> f64 {
        let graph = self.graph(slot);
        let total = qa.graph.node_count() + qa.graph.edge_count();
        if total == 0 {
            return 1.0;
        }
        let mut mapped = 0usize;
        for n in 0..qa.graph.node_count() as u32 {
            if !graph.nodes_with_key(qa.graph.node_key(n)).is_empty() {
                mapped += 1;
            }
        }
        for e in 0..qa.graph.edge_count() as u32 {
            let edge = qa.graph.edge(e);
            let pkey = &qa.participant_keys[qa.graph.reaction_of(e)];
            if graph.has_edge_key(&edge.key) || self.participants_of(slot).contains(pkey.as_ref())
            {
                mapped += 1;
            }
        }
        mapped as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn corpus_models() -> Vec<Model> {
        // Three models over a shared species pool; model 2 shares the
        // whole glycolysis step with model 0.
        let glyco = ModelBuilder::new("glyco")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .parameter("k1", 0.4)
            .parameter("k2", 0.3)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
            .build();
        let tca = ModelBuilder::new("tca")
            .compartment("cell", 1.0)
            .species("citrate", 1.0)
            .species("isocitrate", 0.0)
            .parameter("k", 0.1)
            .reaction("aco", &["citrate"], &["isocitrate"], "k*citrate")
            .build();
        let super_glyco = ModelBuilder::new("super")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 2.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .species("FBP", 0.0)
            .parameter("k1", 0.4)
            .parameter("k2", 0.3)
            .parameter("k3", 0.2)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .reaction("iso", &["G6P"], &["F6P"], "k2*G6P")
            .reaction("pfk", &["F6P"], &["FBP"], "k3*F6P")
            .build();
        vec![glyco, tca, super_glyco]
    }

    fn prepared_corpus(options: &ComposeOptions) -> Vec<Arc<PreparedModel>> {
        BatchComposer::new(Composer::new(options.clone())).prepare_corpus(&corpus_models())
    }

    fn index(options: &ComposeOptions) -> MatchIndex {
        MatchIndex::build(&prepared_corpus(options), options)
    }

    fn fragment() -> Model {
        ModelBuilder::new("query")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .parameter("k1", 0.4)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .build()
    }

    fn near_miss_query() -> Model {
        // G6P -> F6P exists, but with kinetics no corpus model carries.
        ModelBuilder::new("near")
            .compartment("cell", 1.0)
            .species("G6P", 0.0)
            .species("F6P", 0.0)
            .parameter("vmax", 2.0)
            .parameter("km", 3.0)
            .reaction("iso", &["G6P"], &["F6P"], "vmax*G6P/(km+G6P)")
            .build()
    }

    /// Both indexes answer the standard query battery identically —
    /// the incremental≡rebuild / sharded≡single-shard invariant.
    fn assert_same_answers(a: &MatchIndex, b: &MatchIndex, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: live corpus size");
        for query in [fragment(), Model::new("empty"), near_miss_query()] {
            assert_eq!(
                a.query_corpus(&query),
                b.query_corpus(&query),
                "{what}: query {:?}",
                query.id,
            );
        }
    }

    #[test]
    fn exact_hits_with_witness_mappings() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let idx = index(&options);
            let result = idx.query_corpus(&fragment());
            let models: Vec<usize> = result.exact.iter().map(|h| h.model).collect();
            assert_eq!(models, vec![0, 2], "fragment occurs in glyco and super");
            assert!(result.approximate.is_empty(), "exact hits suppress ranking");
            let hit = &result.exact[0];
            assert!(hit.embedding.species.contains(&("glc".into(), "glc".into())));
            assert!(hit.embedding.reactions.contains(&("hex".into(), "hex".into())));
        }
    }

    #[test]
    fn candidates_equal_naive_hit_superset() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let query = fragment();
        let candidates = idx.candidates(&query);
        let naive = idx.naive_hits(&query);
        for hit in &naive {
            assert!(candidates.contains(hit), "pruning must be sound");
        }
        let exact: Vec<usize> = idx.query_corpus(&query).exact.iter().map(|h| h.model).collect();
        assert_eq!(exact, naive);
    }

    #[test]
    fn miss_returns_ranked_approximates() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let result = idx.query_corpus(&near_miss_query());
        assert!(result.exact.is_empty());
        assert!(!result.approximate.is_empty(), "participant overlap must rank");
        let best = &result.approximate[0];
        assert!(best.model == 0 || best.model == 2, "a glycolysis model ranks first");
        assert!(best.score > 0.0 && best.score <= 1.0);
        assert!(best.mapped_fraction > 0.5, "both nodes + participant-matched edge map");
        // Scores descend.
        for pair in result.approximate.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn absent_species_prunes_all_candidates() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let alien = ModelBuilder::new("alien")
            .compartment("cell", 1.0)
            .species("unobtainium", 1.0)
            .build();
        assert!(idx.candidates(&alien).is_empty());
        let result = idx.query_corpus(&alien);
        assert!(result.exact.is_empty());
        assert!(result.approximate.is_empty(), "nothing shares a posting");
    }

    #[test]
    fn empty_query_matches_every_model() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let result = idx.query_corpus(&Model::new("empty"));
        let models: Vec<usize> = result.exact.iter().map(|h| h.model).collect();
        assert_eq!(models, vec![0, 1, 2]);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let options = ComposeOptions::default();
        let query = fragment();
        let reference = index(&options).with_threads(1).query_corpus(&query);
        for threads in [2, 3, 8] {
            let result = index(&options).with_threads(threads).query_corpus(&query);
            assert_eq!(result, reference, "threads={threads}");
        }
    }

    #[test]
    fn synonym_queries_hit_under_light_and_heavy_only() {
        let heavy = ComposeOptions::default();
        // The query names the species "dextrose"; the corpus says
        // "glucose". Same id and kinetics, so heavy content keys align.
        let synonym_query = ModelBuilder::new("syn")
            .compartment("cell", 1.0)
            .species_named("glc", "dextrose", 5.0)
            .species("G6P", 0.0)
            .parameter("k1", 0.4)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .build();
        let hits: Vec<usize> = index(&heavy)
            .query_corpus(&synonym_query)
            .exact
            .iter()
            .map(|h| h.model)
            .collect();
        assert_eq!(hits, vec![0, 2]);
        let none = ComposeOptions::none();
        assert!(index(&none).query_corpus(&synonym_query).exact.is_empty());
    }

    #[test]
    fn open_limits_leave_partial_lists_empty() {
        let options = ComposeOptions::default();
        let result = index(&options).query_corpus(&fragment());
        assert!(result.truncated.is_empty());
        assert!(result.failed.is_empty());
    }

    #[test]
    fn exhausted_budget_reports_truncated_candidates() {
        let options = ComposeOptions::default();
        let result = index(&options).with_budget(0).query_corpus(&fragment());
        assert!(result.exact.is_empty(), "no search steps, no verdicts");
        assert_eq!(result.truncated, result.candidates, "every undecided candidate is listed");
        assert!(result.failed.is_empty());
        assert!(!result.approximate.is_empty(), "a truncated query still ranks near-misses");
    }

    #[test]
    fn passed_deadline_reports_truncated_candidates() {
        let options = ComposeOptions::default();
        let result = index(&options).with_deadline_ms(0).query_corpus(&fragment());
        assert!(result.exact.is_empty());
        assert_eq!(result.truncated, result.candidates);
        assert!(!result.approximate.is_empty());
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn fingerprint_mismatch_rejected() {
        let heavy = ComposeOptions::default();
        let batch = BatchComposer::new(Composer::new(heavy.clone()));
        let prepared = batch.prepare_corpus(&corpus_models());
        let _ = MatchIndex::build(&prepared, &ComposeOptions::light());
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn insert_fingerprint_mismatch_rejected() {
        let heavy = ComposeOptions::default();
        let batch = BatchComposer::new(Composer::new(heavy.clone()));
        let prepared = batch.prepare_corpus(&corpus_models());
        let light = ComposeOptions::light();
        let mut idx = MatchIndex::build(&[], &light);
        let _ = idx.insert(Arc::clone(&prepared[0]));
    }

    #[test]
    fn incremental_growth_equals_fresh_build() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let corpus = prepared_corpus(&options);
            let mut grown = MatchIndex::build(&[], &options);
            for (i, p) in corpus.iter().enumerate() {
                assert_eq!(grown.insert(Arc::clone(p)), i, "insert returns the new rank");
            }
            let fresh = MatchIndex::build(&corpus, &options);
            assert_same_answers(&grown, &fresh, "grown vs fresh");
            assert_eq!(grown.posting_stats(), fresh.posting_stats());
        }
    }

    #[test]
    fn removal_equals_fresh_build_of_remaining() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build(&corpus, &options);
        let removed = idx.remove(1);
        assert!(
            removed.is_some_and(|p| p.model().id == "tca"),
            "remove returns the evicted preparation",
        );
        assert_eq!(idx.tombstoned_len(), 1);
        assert!(idx.remove(5).is_none(), "out-of-range removal is a no-op");
        let remaining = vec![Arc::clone(&corpus[0]), Arc::clone(&corpus[2])];
        let fresh = MatchIndex::build(&remaining, &options);
        assert_same_answers(&idx, &fresh, "after remove(1)");
    }

    #[test]
    fn reinserting_a_removed_model_matches_fresh_order() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build(&corpus, &options);
        let Some(glyco) = idx.remove(0) else {
            unreachable!("model 0 exists")
        };
        assert_eq!(idx.insert(glyco), 2, "re-inserted model goes to the end");
        // Live order is now tca, super, glyco — the fragment hits super
        // (rank 1) and glyco (rank 2).
        let hits: Vec<usize> =
            idx.query_corpus(&fragment()).exact.iter().map(|h| h.model).collect();
        assert_eq!(hits, vec![1, 2]);
        let reordered =
            vec![Arc::clone(&corpus[1]), Arc::clone(&corpus[2]), Arc::clone(&corpus[0])];
        let fresh = MatchIndex::build(&reordered, &options);
        assert_same_answers(&idx, &fresh, "after remove(0) + re-insert");
    }

    #[test]
    fn removing_every_model_leaves_empty_answers() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build(&corpus, &options);
        while !idx.is_empty() {
            assert!(idx.remove(0).is_some());
        }
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.tombstoned_len(), 3);
        for query in [fragment(), Model::new("empty"), near_miss_query()] {
            let result = idx.query_corpus(&query);
            assert!(result.exact.is_empty());
            assert!(result.approximate.is_empty());
            assert!(result.candidates.is_empty());
        }
        // The emptied index is still usable.
        let rank = idx.insert(Arc::clone(&corpus[0]));
        assert_eq!(rank, 0);
        let hits: Vec<usize> =
            idx.query_corpus(&fragment()).exact.iter().map(|h| h.model).collect();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn empty_corpus_build_answers_empty() {
        let options = ComposeOptions::default();
        let idx = MatchIndex::build(&[], &options);
        assert!(idx.is_empty());
        assert_eq!(idx.posting_stats(), (0, 0, 0));
        for query in [fragment(), Model::new("empty")] {
            let result = idx.query_corpus(&query);
            assert_eq!(result, CorpusMatches {
                exact: Vec::new(),
                approximate: Vec::new(),
                candidates: Vec::new(),
                truncated: Vec::new(),
                failed: Vec::new(),
            });
        }
    }

    #[test]
    fn shard_counts_never_change_results() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let corpus = prepared_corpus(&options);
            let reference = MatchIndex::build(&corpus, &options);
            // 8 shards over 3 models: every shard holds at most one
            // model, most hold none.
            for shards in [1usize, 2, 3, 8] {
                let built = MatchIndex::build_sharded(&corpus, &options, 0, shards);
                assert_eq!(built.shard_count(), shards);
                assert_same_answers(&built, &reference, "build_sharded");
                let resharded = MatchIndex::build(&corpus, &options).with_shards(shards);
                assert_same_answers(&resharded, &reference, "with_shards");
            }
        }
    }

    #[test]
    fn sharded_incremental_mutation_equals_fresh() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build(&[], &options).with_shards(3);
        for p in &corpus {
            idx.insert(Arc::clone(p));
        }
        assert!(idx.remove(1).is_some());
        let remaining = vec![Arc::clone(&corpus[0]), Arc::clone(&corpus[2])];
        let fresh = MatchIndex::build(&remaining, &options);
        assert_same_answers(&idx, &fresh, "sharded grown vs fresh single-shard");
    }

    #[test]
    fn eager_compaction_preserves_answers() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build(&corpus, &options).with_compaction_threshold(0.0);
        let before = idx.generation();
        assert!(idx.remove(0).is_some());
        assert!(
            idx.shards().iter().all(|s| s.pending_tombstones() == 0),
            "threshold 0.0 compacts on every removal",
        );
        assert!(idx.generation() > before, "mutations bump the generation");
        let remaining = vec![Arc::clone(&corpus[1]), Arc::clone(&corpus[2])];
        let fresh = MatchIndex::build(&remaining, &options);
        assert_same_answers(&idx, &fresh, "compacted vs fresh");
        // Manual compaction with nothing pending is a no-op.
        let generation = idx.generation();
        idx.compact();
        assert_eq!(idx.generation(), generation);
    }

    #[test]
    fn shard_stats_reflect_membership() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build_sharded(&corpus, &options, 0, 2);
        // Slots 0, 2 land in shard 0; slot 1 in shard 1.
        assert_eq!(idx.shards()[0].live_models(), 2);
        assert_eq!(idx.shards()[1].live_models(), 1);
        assert!(idx.remove(1).is_some(), "tca lives in slot 1");
        let shard = &idx.shards()[1];
        assert_eq!(shard.live_models(), 0);
        assert_eq!(shard.tombstoned_models(), 1);
        // Its tombstone fraction hit 1.0 > the default threshold, so the
        // shard compacted immediately.
        assert_eq!(shard.pending_tombstones(), 0);
        assert_eq!(shard.tombstone_fraction(), 0.0);
        assert_eq!(shard.posting_stats(), (0, 0, 0));
        assert_eq!(idx.shards()[0].live_models(), 2, "other shard untouched");
    }

    #[test]
    fn raw_round_trip_preserves_query_results() {
        for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let corpus = prepared_corpus(&options);
            let idx = MatchIndex::build(&corpus, &options);
            let Ok(rebuilt) = MatchIndex::from_raw(idx.to_raw(), &corpus, &options, 0) else {
                unreachable!("skeleton extracted from a live index is consistent")
            };
            assert_eq!(rebuilt.posting_stats(), idx.posting_stats());
            for query in [fragment(), Model::new("empty")] {
                assert_eq!(rebuilt.query_corpus(&query), idx.query_corpus(&query));
            }
        }
    }

    #[test]
    fn raw_round_trip_preserves_mutated_sharded_index() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let mut idx = MatchIndex::build_sharded(&corpus, &options, 0, 2);
        assert!(idx.remove(1).is_some());
        let live = idx.corpus().to_vec();
        let raw = idx.to_raw();
        let Ok(rebuilt) = MatchIndex::from_raw(raw, &live, &options, 0) else {
            unreachable!("skeleton extracted from a mutated index is consistent")
        };
        assert_eq!(rebuilt.generation(), idx.generation());
        assert_eq!(rebuilt.shard_count(), 2);
        assert_eq!(rebuilt.tombstoned_len(), 1);
        for (a, b) in rebuilt.shards().iter().zip(idx.shards()) {
            assert_eq!(a.generation(), b.generation());
            assert_eq!(a.live_models(), b.live_models());
            assert_eq!(a.tombstoned_models(), b.tombstoned_models());
        }
        assert_same_answers(&rebuilt, &idx, "raw round trip of mutated index");
    }

    #[test]
    fn inconsistent_raw_index_is_rejected() {
        let options = ComposeOptions::default();
        let corpus = prepared_corpus(&options);
        let idx = MatchIndex::build(&corpus, &options);
        let mut raw = idx.to_raw();
        raw.graphs.pop();
        assert!(MatchIndex::from_raw(raw, &corpus, &options, 0).is_err());
        let mut raw = idx.to_raw();
        if let Some((_, list)) = raw.shards[0].node_postings.first_mut() {
            list.push(1000); // slot id beyond the universe
        }
        assert!(MatchIndex::from_raw(raw, &corpus, &options, 0).is_err());
        let mut raw = idx.to_raw();
        raw.shards[0].members.push(999);
        assert!(
            MatchIndex::from_raw(raw, &corpus, &options, 0).is_err(),
            "a member outside the dense slot universe must be rejected",
        );
        let mut raw = idx.to_raw();
        raw.shards.clear();
        assert!(MatchIndex::from_raw(raw, &corpus, &options, 0).is_err());
        let raw = idx.to_raw();
        assert!(
            MatchIndex::from_raw(raw, &corpus, &ComposeOptions::light(), 0).is_err(),
            "fingerprint mismatch must be an error, not a panic",
        );
    }

    #[test]
    fn posting_stats_reflect_corpus() {
        let options = ComposeOptions::default();
        let idx = index(&options);
        let (nodes, edges, participants) = idx.posting_stats();
        assert!(nodes >= 5, "distinct species labels across the corpus");
        assert!(edges >= 4);
        assert!(participants >= 4);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }
}
