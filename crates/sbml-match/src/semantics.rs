//! Matching semantics: how node and edge labels compare during subgraph
//! search, aligned with the composition engine's §5 spectrum.
//!
//! * **None** — node labels compare byte-identical, edges by extracted
//!   label (the reaction id, `mod:`-prefixed for regulatory edges);
//! * **Light** — node labels are normalised and closed over the synonym
//!   table ([`bio_synonyms`]); edges still compare by extracted label;
//! * **Heavy** — node labels as in Light, but edges compare by the
//!   composition engine's canonical **reaction content key** (participant
//!   multisets + commutativity-canonical kinetic-law pattern, the keys a
//!   [`sbml_compose::PreparedModel`] caches) — two reactions match iff
//!   the composer would consider them content-equal.
//!
//! Node compatibility is defined as *equality of canonical node keys*
//! ([`MatchSemantics::node_key`]), which is exactly the predicate the
//! [`crate::MatchIndex`] posting lists invert — candidate generation and
//! refinement can therefore never disagree.

use std::sync::Arc;

use bio_graph::LabelMatcher;
use bio_synonyms::SynonymTable;
use sbml_compose::{ComposeOptions, SemanticsLevel};

/// Node/edge matching policy for subgraph search; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct MatchSemantics {
    level: SemanticsLevel,
    synonyms: SynonymTable,
}

impl MatchSemantics {
    /// A policy at `level` consulting `synonyms` (ignored under
    /// [`SemanticsLevel::None`]).
    pub fn new(level: SemanticsLevel, synonyms: SynonymTable) -> MatchSemantics {
        MatchSemantics { level, synonyms }
    }

    /// The policy matching a composition-options value: same level, same
    /// synonym table — so matching agrees with what composing the hit
    /// would do.
    pub fn from_options(options: &ComposeOptions) -> MatchSemantics {
        MatchSemantics::new(options.semantics, options.synonyms.clone())
    }

    /// Exact-label matching (the generic method "without semantics").
    pub fn none() -> MatchSemantics {
        MatchSemantics::new(SemanticsLevel::None, SynonymTable::new())
    }

    /// Normalised labels + builtin synonym closure.
    pub fn light() -> MatchSemantics {
        MatchSemantics::new(SemanticsLevel::Light, SynonymTable::with_builtins())
    }

    /// Synonym-closed labels + reaction content-key edges.
    pub fn heavy() -> MatchSemantics {
        MatchSemantics::new(SemanticsLevel::Heavy, SynonymTable::with_builtins())
    }

    /// The semantics level.
    pub fn level(&self) -> SemanticsLevel {
        self.level
    }

    /// The synonym table consulted for node labels.
    pub fn synonyms(&self) -> &SynonymTable {
        &self.synonyms
    }

    /// Canonical key of a node label: the label itself under
    /// [`SemanticsLevel::None`], the synonym-closed
    /// [`SynonymTable::match_key_shared`] otherwise. Two nodes are
    /// compatible iff their keys are equal.
    pub fn node_key_shared(&self, label: &str) -> Arc<str> {
        match self.level {
            SemanticsLevel::None => Arc::from(label),
            SemanticsLevel::Light | SemanticsLevel::Heavy => {
                self.synonyms.match_key_shared(label)
            }
        }
    }

    /// Does this policy compare edges by reaction *content key* instead
    /// of by extracted edge label? True exactly for heavy semantics.
    pub fn content_key_edges(&self) -> bool {
        self.level == SemanticsLevel::Heavy
    }
}

/// [`MatchSemantics`] plugs into the generic graph-composition layer too:
/// node equality is canonical-key equality, edge labels compare exactly
/// (the [`mod@bio_graph::compose`] default).
impl LabelMatcher for MatchSemantics {
    fn nodes_match(&self, a: &str, b: &str) -> bool {
        self.node_key_shared(a) == self.node_key_shared(b)
    }

    fn node_key(&self, label: &str) -> String {
        self.node_key_shared(label).as_ref().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_resolve_node_keys() {
        let none = MatchSemantics::none();
        assert_eq!(none.node_key_shared("Glucose").as_ref(), "Glucose");
        assert!(!none.nodes_match("glucose", "dextrose"));
        assert!(!none.content_key_edges());

        let light = MatchSemantics::light();
        assert_eq!(light.node_key_shared("DEXTROSE").as_ref(), "glucose");
        assert!(light.nodes_match("glucose", "dextrose"));
        assert!(!light.content_key_edges());

        let heavy = MatchSemantics::heavy();
        assert!(heavy.nodes_match("Glc", "glucose"));
        assert!(heavy.content_key_edges());
    }

    #[test]
    fn from_options_tracks_level_and_table() {
        let m = MatchSemantics::from_options(&ComposeOptions::none());
        assert_eq!(m.level(), SemanticsLevel::None);
        assert_eq!(m.synonyms().group_count(), 0);
        let m = MatchSemantics::from_options(&ComposeOptions::default());
        assert_eq!(m.level(), SemanticsLevel::Heavy);
        assert!(m.synonyms().group_count() > 0);
    }

    #[test]
    fn label_matcher_impl_agrees_with_keys() {
        let light = MatchSemantics::light();
        assert_eq!(LabelMatcher::node_key(&light, "DEXTROSE"), "glucose");
        assert!(LabelMatcher::nodes_match(&light, "d_glucose", "glucose"));
        assert!(light.edges_match("r1", "r1") && !light.edges_match("r1", "mod:r1"));
    }
}
