//! Matching-engine properties over randomly generated models and the
//! deterministic corpora:
//!
//! * **self-embedding** — every model embeds in itself under every
//!   semantics level (with the identity mapping when node keys are
//!   unambiguous);
//! * **fragment round-trip** — any subnetwork returned by matching
//!   composes with its host producing only id-hit (duplicate) log
//!   events: no conflicts, no mappings, host unchanged;
//! * **index ≡ naïve** — [`MatchIndex::query_corpus`]'s exact hit set
//!   equals the naïve per-model VF2 scan, and candidate generation never
//!   prunes a true hit, across semantics levels.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use sbml_compose::{BatchComposer, ComposeOptions, Composer, EventKind};
use sbml_match::MatchIndex;
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

/// Display names that overlap the builtin synonym vocabulary, so light
/// and heavy node keys get real synonym closure to chew on.
const NAMED: &[&str] = &["glucose", "ATP", "pyruvate", "citrate", "water"];

/// A random small model over a shared species alphabet (`S0..S7`, some
/// carrying common display names) with random mass-action reactions, so
/// generated models genuinely overlap.
fn model_strategy() -> impl Strategy<Value = Model> {
    (
        1usize..8,                                                          // species count
        proptest::collection::vec((0usize..8, 0usize..8, 1u32..100), 0..8), // reactions
        0u64..1_000_000,                                                    // id salt
        0u64..2,                                                            // use display names
    )
        .prop_map(|(n_species, reactions, salt, named)| {
            let named = named == 1;
            let mut b = ModelBuilder::new(format!("gen_{salt}")).compartment("cell", 1.0);
            for i in 0..n_species {
                let id = format!("S{i}");
                b = if named && i < NAMED.len() {
                    b.species_named(&id, NAMED[i], i as f64)
                } else {
                    b.species(&id, i as f64)
                };
            }
            let mut used = BTreeSet::new();
            for (idx, (from, to, k)) in reactions.into_iter().enumerate() {
                let (from, to) = (from % n_species, to % n_species);
                if from == to || !used.insert((from, to)) {
                    continue;
                }
                let k_id = format!("k{from}_{to}");
                let (s_from, s_to) = (format!("S{from}"), format!("S{to}"));
                b = b.parameter(&k_id, k as f64 / 100.0).reaction(
                    &format!("r{idx}_{from}_{to}"),
                    &[s_from.as_str()],
                    &[s_to.as_str()],
                    &format!("{k_id}*{s_from}"),
                );
            }
            b.build()
        })
}

fn levels() -> [ComposeOptions; 3] {
    [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
}

fn index_over(models: &[Model], options: &ComposeOptions) -> MatchIndex {
    let batch = BatchComposer::new(Composer::new(options.clone()));
    MatchIndex::build(&batch.prepare_corpus(models), options)
}

/// Are the model's node keys unambiguous (no two species share a key)?
fn distinct_node_keys(model: &Model, options: &ComposeOptions) -> bool {
    let semantics = sbml_match::MatchSemantics::from_options(options);
    let keys: BTreeSet<Arc<str>> = model
        .species
        .iter()
        .map(|s| semantics.node_key_shared(s.name.as_deref().unwrap_or(&s.id)))
        .collect();
    keys.len() == model.species.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every model embeds in itself under every semantics level; with
    /// unambiguous node keys the witness is the identity on species ids.
    #[test]
    fn self_embedding_under_every_level(m in model_strategy()) {
        for options in levels() {
            let idx = index_over(std::slice::from_ref(&m), &options);
            let result = idx.query_corpus(&m);
            let hit = result.exact.iter().find(|h| h.model == 0);
            let hit = hit.expect("a model must embed in itself");
            prop_assert_eq!(hit.embedding.species.len(), m.species.len());
            // The species map is injective into the host.
            let targets: BTreeSet<&String> =
                hit.embedding.species.iter().map(|(_, t)| t).collect();
            prop_assert_eq!(targets.len(), m.species.len());
            if distinct_node_keys(&m, &options) {
                for (q, t) in &hit.embedding.species {
                    prop_assert_eq!(q, t, "unambiguous keys force the identity mapping");
                }
            }
        }
    }

    /// A subnetwork returned by matching composes with its host via the
    /// full compose engine producing only id-hit (duplicate) events for
    /// the mapped components: zero conflicts, zero recorded mappings, and
    /// a bit-for-bit unchanged host.
    #[test]
    fn matched_subnetwork_composes_into_host_cleanly(
        m in model_strategy(),
        seed in 0usize..8,
        radius in 0usize..3,
    ) {
        let fragment = biomodels_corpus::query_fragment(&m, seed, radius);
        let options = ComposeOptions::default();
        let idx = index_over(std::slice::from_ref(&m), &options);
        let result = idx.query_corpus(&fragment);
        let hit = result.exact.iter().find(|h| h.model == 0);
        let hit = hit.expect("a verbatim fragment must embed in its host");

        // The returned mapping is over real host components.
        for (_, target) in &hit.embedding.species {
            prop_assert!(m.species_by_id(target).is_some());
        }
        for (_, target) in &hit.embedding.reactions {
            prop_assert!(m.reaction_by_id(target).is_some());
        }

        let composed = Composer::new(options).compose(&m, &fragment);
        prop_assert_eq!(&composed.model, &m, "absorbing a subnetwork is the identity");
        prop_assert_eq!(composed.mappings.len(), 0, "id hits need no mappings");
        prop_assert_eq!(composed.log.conflict_count(), 0);
        for event in &composed.log.events {
            prop_assert_eq!(
                event.kind,
                EventKind::Duplicate,
                "mapped components merge as id hits: {:?}",
                event
            );
        }
    }

    /// The indexed corpus query returns exactly the naïve per-model VF2
    /// hit set, and candidate generation never prunes a true hit.
    #[test]
    fn index_hits_equal_naive_scan(
        corpus in proptest::collection::vec(model_strategy(), 2..6),
        query in model_strategy(),
        fragment_seed in 0usize..8,
        query_from_corpus in 0u64..2,
    ) {
        let query = if query_from_corpus == 1 {
            biomodels_corpus::query_fragment(&corpus[fragment_seed % corpus.len()], fragment_seed, 1)
        } else {
            query
        };
        for options in levels() {
            let idx = index_over(&corpus, &options);
            let naive = idx.naive_hits(&query);
            let candidates = idx.candidates(&query);
            for hit in &naive {
                prop_assert!(candidates.contains(hit), "candidate pruning dropped a true hit");
            }
            let exact: Vec<usize> =
                idx.query_corpus(&query).exact.iter().map(|h| h.model).collect();
            prop_assert_eq!(exact, naive);
        }
    }

    /// The incremental/sharded invariant: an index grown by a random
    /// interleaving of inserts and removals, at any shard count and any
    /// compaction threshold, answers every query bit-identically to a
    /// fresh single-shard [`MatchIndex::build`] over the surviving models
    /// in insertion order — at every semantics level.
    #[test]
    fn mutated_sharded_index_equals_fresh_build(
        pool in proptest::collection::vec(model_strategy(), 2..7),
        // Interleaved operations: 0..8 inserts pool model op (mod len),
        // 8 removes the oldest surviving model.
        ops in proptest::collection::vec(0usize..9, 1..12),
        shards in 1usize..8,
        threshold in 0u64..3,
        query in model_strategy(),
        fragment_seed in 0usize..8,
    ) {
        let threshold = [0.0, 0.3, 1.0][threshold as usize];
        for options in levels() {
            let batch = BatchComposer::new(Composer::new(options.clone()));
            let prepared = batch.prepare_corpus(&pool);
            let mut grown = MatchIndex::build(&[], &options)
                .with_shards(shards)
                .with_compaction_threshold(threshold);
            // The live corpus a fresh build would be given, maintained
            // alongside the mutations.
            let mut live: Vec<Arc<sbml_compose::PreparedModel>> = Vec::new();
            for &op in &ops {
                if op < 8 {
                    let p = Arc::clone(&prepared[op % prepared.len()]);
                    live.push(Arc::clone(&p));
                    grown.insert(p);
                } else if !live.is_empty() {
                    live.remove(0);
                    prop_assert!(grown.remove(0).is_some());
                }
            }
            let fresh = MatchIndex::build(&live, &options);
            prop_assert_eq!(grown.len(), fresh.len());
            let fragment = if live.is_empty() {
                query.clone()
            } else {
                biomodels_corpus::query_fragment(
                    live[fragment_seed % live.len()].model(),
                    fragment_seed,
                    1,
                )
            };
            for q in [&query, &fragment, &Model::new("empty")] {
                prop_assert_eq!(
                    grown.query_corpus(q),
                    fresh.query_corpus(q),
                    "shards={} threshold={} semantics={:?} query={:?}",
                    shards,
                    threshold,
                    options.semantics,
                    q.id
                );
            }
        }
    }
}

/// The fig8 corpus in miniature: fragments of deterministic corpus models
/// hit their hosts, and the indexed hit set equals the naïve scan for
/// every semantics level.
#[test]
fn corpus_slice_fragments_round_trip() {
    let models = biomodels_corpus::corpus_slice(38..46);
    for options in levels() {
        let idx = index_over(&models, &options);
        for (i, host) in models.iter().enumerate() {
            let fragment = biomodels_corpus::query_fragment(host, i, 1);
            let result = idx.query_corpus(&fragment);
            let exact: Vec<usize> = result.exact.iter().map(|h| h.model).collect();
            assert!(
                exact.contains(&i),
                "fragment of corpus model {i} must hit its host (semantics {:?})",
                options.semantics
            );
            assert_eq!(exact, idx.naive_hits(&fragment), "indexed ≡ naïve for model {i}");
        }
    }
}

/// Approximate ranking is deterministic and bounded.
#[test]
fn approximate_ranking_is_deterministic() {
    let models = biomodels_corpus::corpus_slice(40..48);
    let options = ComposeOptions::default();
    let idx = index_over(&models, &options).with_top_k(5);
    // A query that shares vocabulary but embeds nowhere: common species
    // with kinetics no corpus model uses.
    let query = ModelBuilder::new("near_miss")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 1.0)
        .species_named("atp", "ATP", 1.0)
        .parameter("v", 1.0)
        .reaction("weird", &["glc"], &["atp"], "v*glc*glc*glc")
        .build();
    let a = idx.query_corpus(&query);
    let b = idx.query_corpus(&query);
    assert_eq!(a, b);
    if a.exact.is_empty() {
        assert!(a.approximate.len() <= 5);
        for pair in a.approximate.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
