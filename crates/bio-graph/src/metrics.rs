//! Structural metrics over graphs: degrees, components, density.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// Out-degree of a node.
pub fn out_degree(g: &Graph, id: NodeId) -> usize {
    g.successors(id).count()
}

/// In-degree of a node.
pub fn in_degree(g: &Graph, id: NodeId) -> usize {
    g.predecessors(id).count()
}

/// Weakly connected components (edge direction ignored); returns one
/// representative node list per component, in discovery order.
pub fn weakly_connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in g.node_ids() {
        if seen[start.0 as usize] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen[start.0 as usize] = true;
        while let Some(node) = queue.pop_front() {
            component.push(node);
            for next in g.successors(node).chain(g.predecessors(node)) {
                if !seen[next.0 as usize] {
                    seen[next.0 as usize] = true;
                    queue.push_back(next);
                }
            }
        }
        components.push(component);
    }
    components
}

/// Edge density: `|E| / |V|²` (0 for the empty graph).
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        0.0
    } else {
        g.edge_count() as f64 / (n * n) as f64
    }
}

/// Mean degree (in+out) per node (0 for the empty graph).
pub fn mean_degree(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_islands() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        let _e = g.add_node("E"); // isolated
        g.add_edge(a, b, "e1");
        g.add_edge(b, a, "e2");
        g.add_edge(c, d, "e3");
        g
    }

    #[test]
    fn degrees() {
        let g = two_islands();
        let a = g.find_node("A").unwrap();
        assert_eq!(out_degree(&g, a), 1);
        assert_eq!(in_degree(&g, a), 1);
        let e = g.find_node("E").unwrap();
        assert_eq!(out_degree(&g, e) + in_degree(&g, e), 0);
    }

    #[test]
    fn components() {
        let g = two_islands();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::new();
        assert_eq!(weakly_connected_components(&g).len(), 0);
        assert_eq!(density(&g), 0.0);
        assert_eq!(mean_degree(&g), 0.0);
    }

    #[test]
    fn density_and_mean_degree() {
        let g = two_islands();
        assert!((density(&g) - 3.0 / 25.0).abs() < 1e-12);
        assert!((mean_degree(&g) - 6.0 / 5.0).abs() < 1e-12);
    }
}
