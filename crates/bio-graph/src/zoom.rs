//! Semantic graph zooming (the paper's future-work item 4: "indexes to
//! support zooming in and out of networks and their subparts").
//!
//! *Zooming out* is a graph quotient: nodes collapse into groups under a
//! key function (compartment, species type, synonym class, pathway label)
//! and edges become group-to-group edges with multiplicities. *Zooming in*
//! is neighbourhood extraction (`sbml_compose::extract_submodel` does the
//! model-level version; [`neighbourhood`] is the graph-level one).

use std::collections::HashMap;

use crate::graph::{Graph, NodeId};

/// Result of a quotient: the collapsed graph plus the mapping from original
/// nodes to quotient nodes.
#[derive(Debug, Clone)]
pub struct Quotient {
    /// The zoomed-out graph (node labels = group keys; edge labels carry
    /// the multiplicity as `"<count>x"`).
    pub graph: Graph,
    /// Original node → quotient node.
    pub mapping: HashMap<NodeId, NodeId>,
}

/// Collapse a graph under a node-key function. Nodes with equal keys merge;
/// parallel inter-group edges merge with a multiplicity count; intra-group
/// edges collapse to self-loops (also counted).
pub fn quotient<K: Fn(&str) -> String>(g: &Graph, key_of: K) -> Quotient {
    let mut out = Graph::new();
    let mut group_ids: HashMap<String, NodeId> = HashMap::new();
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(g.node_count());

    for node in g.node_ids() {
        let key = key_of(g.node_label(node));
        let group = *group_ids
            .entry(key.clone())
            .or_insert_with(|| out.add_node(key));
        mapping.insert(node, group);
    }

    // Count edges between groups.
    let mut counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for edge in g.edge_ids() {
        let (from, to, _) = g.edge(edge);
        *counts.entry((mapping[&from], mapping[&to])).or_insert(0) += 1;
    }
    let mut ordered: Vec<((NodeId, NodeId), usize)> = counts.into_iter().collect();
    ordered.sort_by_key(|((f, t), _)| (f.0, t.0));
    for ((from, to), count) in ordered {
        out.add_edge(from, to, format!("{count}x"));
    }

    Quotient { graph: out, mapping }
}

/// Graph-level zoom-in: the sub-graph within `radius` hops (ignoring edge
/// direction) of the given seed nodes. Returns the subgraph and the
/// old→new node mapping.
pub fn neighbourhood(g: &Graph, seeds: &[NodeId], radius: usize) -> (Graph, HashMap<NodeId, NodeId>) {
    let mut keep: Vec<bool> = vec![false; g.node_count()];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if (s.0 as usize) < g.node_count() && !keep[s.0 as usize] {
            keep[s.0 as usize] = true;
            frontier.push(s);
        }
    }
    for _ in 0..radius {
        let mut next = Vec::new();
        for &node in &frontier {
            for n in g.successors(node).chain(g.predecessors(node)) {
                if !keep[n.0 as usize] {
                    keep[n.0 as usize] = true;
                    next.push(n);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    let mut out = Graph::new();
    let mut mapping = HashMap::new();
    for node in g.node_ids() {
        if keep[node.0 as usize] {
            let new = out.add_node(g.node_label(node).to_owned());
            mapping.insert(node, new);
        }
    }
    for edge in g.edge_ids() {
        let (from, to, label) = g.edge(edge);
        if let (Some(&nf), Some(&nt)) = (mapping.get(&from), mapping.get(&to)) {
            out.add_edge(nf, nt, label.to_owned());
        }
    }
    (out, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Six species in two compartments, labelled "comp:species".
    fn two_compartment_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("cyto:A");
        let b = g.add_node("cyto:B");
        let c = g.add_node("cyto:C");
        let x = g.add_node("nuc:X");
        let y = g.add_node("nuc:Y");
        g.add_edge(a, b, "r1");
        g.add_edge(b, c, "r2");
        g.add_edge(c, x, "transport");
        g.add_edge(x, y, "r3");
        g.add_edge(y, x, "r4");
        g
    }

    fn compartment_of(label: &str) -> String {
        label.split(':').next().unwrap_or(label).to_owned()
    }

    #[test]
    fn quotient_by_compartment() {
        let g = two_compartment_graph();
        let q = quotient(&g, compartment_of);
        assert_eq!(q.graph.node_count(), 2, "two compartments");
        let cyto = q.graph.find_node("cyto").unwrap();
        let nuc = q.graph.find_node("nuc").unwrap();
        // cyto has 2 internal edges -> self loop "2x"; one edge to nuc;
        // nuc has 2 internal edges.
        assert!(q.graph.has_edge(cyto, cyto, "2x"));
        assert!(q.graph.has_edge(cyto, nuc, "1x"));
        assert!(q.graph.has_edge(nuc, nuc, "2x"));
        assert_eq!(q.graph.edge_count(), 3);
        // mapping covers every original node
        assert_eq!(q.mapping.len(), g.node_count());
    }

    #[test]
    fn quotient_identity_under_unique_keys() {
        let g = two_compartment_graph();
        let q = quotient(&g, |label| label.to_owned());
        assert_eq!(q.graph.node_count(), g.node_count());
        assert_eq!(q.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn quotient_to_point_under_constant_key() {
        let g = two_compartment_graph();
        let q = quotient(&g, |_| "all".to_owned());
        assert_eq!(q.graph.node_count(), 1);
        assert_eq!(q.graph.edge_count(), 1, "all edges merge into one self-loop");
        let (_, _, label) = q.graph.edge(crate::graph::EdgeId(0));
        assert_eq!(label, "5x");
    }

    #[test]
    fn neighbourhood_zoom_in() {
        let g = two_compartment_graph();
        let a = g.find_node("cyto:A").unwrap();
        let (zoom0, _) = neighbourhood(&g, &[a], 0);
        assert_eq!(zoom0.node_count(), 1);
        assert_eq!(zoom0.edge_count(), 0);

        let (zoom1, _) = neighbourhood(&g, &[a], 1);
        assert_eq!(zoom1.node_count(), 2, "A and B");
        assert_eq!(zoom1.edge_count(), 1);

        let (zoom_all, _) = neighbourhood(&g, &[a], 10);
        assert_eq!(zoom_all.node_count(), g.node_count());
        assert_eq!(zoom_all.edge_count(), g.edge_count());
    }

    #[test]
    fn neighbourhood_respects_direction_blindness() {
        // Y is reachable from X only via the reverse edge at radius 1.
        let g = two_compartment_graph();
        let y = g.find_node("nuc:Y").unwrap();
        let (zoom, _) = neighbourhood(&g, &[y], 1);
        assert!(zoom.find_node("nuc:X").is_some(), "predecessors included");
    }

    #[test]
    fn works_with_model_extraction() {
        // Full pipeline: SBML model -> species graph -> compartment quotient.
        use sbml_model::builder::ModelBuilder;
        let m = ModelBuilder::new("m")
            .compartment("cyto", 1.0)
            .compartment("nuc", 0.2)
            .species_in("A", "cyto", 1.0)
            .species_in("B", "cyto", 1.0)
            .species_in("N", "nuc", 1.0)
            .parameter("k", 1.0)
            .reaction("r1", &["A"], &["B"], "k*A")
            .reaction("imp", &["B"], &["N"], "k*B")
            .build();
        let g = crate::extract::species_reaction_graph(&m);
        // Key nodes by their compartment via the model.
        let q = quotient(&g, |label| {
            m.species_by_id(label)
                .map(|s| s.compartment.clone())
                .unwrap_or_else(|| label.to_owned())
        });
        assert_eq!(q.graph.node_count(), 2);
        let cyto = q.graph.find_node("cyto").unwrap();
        let nuc = q.graph.find_node("nuc").unwrap();
        assert!(q.graph.has_edge(cyto, nuc, "1x"));
    }
}
