//! A directed labelled multigraph with stable integer handles.

use std::fmt;

/// Handle to a node (index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Handle to an edge (index into the edge arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeData {
    pub label: String,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeData {
    pub from: NodeId,
    pub to: NodeId,
    pub label: String,
}

/// A directed labelled multigraph `G = (V, E, L, φ, ψ)` in the paper's
/// notation: `φ` labels nodes, `ψ` labels edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) edges: Vec<EdgeData>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The paper's model-size metric: `|V| + |E|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Add a node with the given label, returning its handle.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { label: label.into() });
        id
    }

    /// Add a directed labelled edge.
    ///
    /// # Panics
    /// If either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, label: impl Into<String>) -> EdgeId {
        assert!((from.0 as usize) < self.nodes.len(), "edge source out of range");
        assert!((to.0 as usize) < self.nodes.len(), "edge target out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { from, to, label: label.into() });
        id
    }

    /// Node label (φ).
    pub fn node_label(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].label
    }

    /// Edge endpoints and label (ψ).
    pub fn edge(&self, id: EdgeId) -> (NodeId, NodeId, &str) {
        let e = &self.edges[id.0 as usize];
        (e.from, e.to, e.label.as_str())
    }

    /// Iterate over node handles.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over edge handles.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Find the first node with the given label.
    pub fn find_node(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.label == label).map(|i| NodeId(i as u32))
    }

    /// True if an edge `from → to` with the given label exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId, label: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to && e.label == label)
    }

    /// Out-neighbours of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges.iter().filter(move |e| e.from == id).map(|e| e.to)
    }

    /// In-neighbours of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges.iter().filter(move |e| e.to == id).map(|e| e.from)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph: {} nodes, {} edges", self.node_count(), self.edge_count())?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -[{}]-> {}",
                self.nodes[e.from.0 as usize].label, e.label, self.nodes[e.to.0 as usize].label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Graph {
        // Paper Fig. 1(a): A -> B <-> C
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_edge(a, b, "k1");
        g.add_edge(b, c, "k2");
        g.add_edge(c, b, "k3");
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = abc();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn labels_and_lookup() {
        let g = abc();
        let a = g.find_node("A").unwrap();
        assert_eq!(g.node_label(a), "A");
        assert!(g.find_node("Z").is_none());
        let e = g.edge(EdgeId(0));
        assert_eq!(e.2, "k1");
    }

    #[test]
    fn adjacency() {
        let g = abc();
        let (a, b, c) =
            (g.find_node("A").unwrap(), g.find_node("B").unwrap(), g.find_node("C").unwrap());
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.successors(b).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.predecessors(b).collect::<Vec<_>>(), vec![a, c]);
        assert!(g.has_edge(b, c, "k2"));
        assert!(!g.has_edge(b, c, "k9"));
        assert!(!g.has_edge(a, c, "k1"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_node_rejected() {
        let mut g = abc();
        g.add_edge(NodeId(99), NodeId(0), "bad");
    }

    #[test]
    fn multigraph_allows_parallel_edges() {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge(a, b, "k1");
        g.add_edge(a, b, "k1");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn display_renders_edges() {
        let text = abc().to_string();
        assert!(text.contains("A -[k1]-> B"));
        assert!(text.contains("3 nodes, 3 edges"));
    }
}
