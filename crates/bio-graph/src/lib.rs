//! Generic labelled graphs and semantics-free composition.
//!
//! The paper formalises models as labelled graphs `G = (V, E, L, φ, ψ)` and
//! asks in its future work: "is it possible to perform efficient and correct
//! composition without semantics?" This crate is that generic layer:
//!
//! * [`Graph`] — a directed labelled multigraph,
//! * [`compose`](mod@compose) — graph union with node matching driven by a pluggable
//!   [`LabelMatcher`] ([`NoSemantics`] = exact labels, [`LightSemantics`] =
//!   normalised labels + synonym closure, versus the *heavy semantics* of
//!   the full SBML merge in `sbml-compose`),
//! * [`extract::species_reaction_graph`] — the species/reaction graph of an
//!   SBML model (the node/edge counts behind Figure 8's size axis),
//! * [`metrics`] — sizes, degrees and connected components used by the
//!   corpus generator and benches.

pub mod compose;
pub mod extract;
pub mod graph;
pub mod metrics;
pub mod zoom;

pub use compose::{compose, ComposeStats, LabelMatcher, LightSemantics, NoSemantics};
pub use extract::{model_graph, modifier_edge_label, species_reaction_graph, EdgeRole, ModelGraph};
pub use graph::{EdgeId, Graph, NodeId};
pub use zoom::{neighbourhood, quotient, Quotient};
