//! Graph composition under pluggable label semantics.
//!
//! The paper defines composition as "the union of the graphs, `G1 ∪ G2`,
//! with (potentially) shared nodes or shared nodes and unitable edges",
//! where node equality is label identity *or synonymy*. The matcher
//! abstraction lets us dial semantics up and down — the §5 future-work
//! question this crate exists to answer experimentally:
//!
//! * [`NoSemantics`] — labels must be byte-identical,
//! * [`LightSemantics`] — labels are normalised and looked up in a synonym
//!   table (no math, no units, no database),
//! * heavy semantics — the full SBML merge in `sbml-compose` (math patterns,
//!   unit reconciliation, conflict log), which operates on models rather
//!   than bare graphs.

use std::collections::HashMap;

use bio_synonyms::SynonymTable;

use crate::graph::{Graph, NodeId};

/// Node/edge label equality policy.
pub trait LabelMatcher {
    /// Are two node labels the same entity?
    fn nodes_match(&self, a: &str, b: &str) -> bool;
    /// Canonical index key for a node label (must agree with
    /// [`LabelMatcher::nodes_match`]: matching labels share a key).
    fn node_key(&self, label: &str) -> String;
    /// Are two edge labels unitable (the paper's `ψ` comparison)?
    fn edges_match(&self, a: &str, b: &str) -> bool {
        a == b
    }
}

/// Exact label equality — composition "without semantics".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSemantics;

impl LabelMatcher for NoSemantics {
    fn nodes_match(&self, a: &str, b: &str) -> bool {
        a == b
    }

    fn node_key(&self, label: &str) -> String {
        label.to_owned()
    }
}

/// Normalised labels plus synonym-table closure — "light semantics".
#[derive(Debug, Clone, Default)]
pub struct LightSemantics {
    /// The synonym table consulted for node labels.
    pub synonyms: SynonymTable,
}

impl LightSemantics {
    /// Light semantics with the builtin biochemical synonym groups.
    pub fn with_builtins() -> LightSemantics {
        LightSemantics { synonyms: SynonymTable::with_builtins() }
    }
}

impl LabelMatcher for LightSemantics {
    fn nodes_match(&self, a: &str, b: &str) -> bool {
        self.synonyms.are_synonyms(a, b)
    }

    fn node_key(&self, label: &str) -> String {
        self.synonyms.match_key(label)
    }
}

/// Composition statistics (what the merge shared vs. copied).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Nodes of `b` matched onto nodes of `a`.
    pub nodes_shared: usize,
    /// Nodes of `b` added as new nodes.
    pub nodes_added: usize,
    /// Edges of `b` found already present.
    pub edges_shared: usize,
    /// Edges of `b` added.
    pub edges_added: usize,
}

/// Compose two graphs: the union of `a` and `b` with nodes matched by the
/// matcher and edges deduplicated when both endpoints matched and the edge
/// labels are unitable. Returns the composed graph and statistics.
///
/// Matches the paper's examples: identical models compose to themselves
/// (Fig. 1), disjoint models concatenate (Fig. 2), overlapping models share
/// exactly the common subnetwork (Fig. 3).
pub fn compose<M: LabelMatcher>(a: &Graph, b: &Graph, matcher: &M) -> (Graph, ComposeStats) {
    let mut out = a.clone();
    let mut stats = ComposeStats::default();

    // Index a's nodes by canonical key. Nodes of `a` that collide on key
    // keep the first occurrence (first-model-wins, as in the paper).
    let mut index: HashMap<String, NodeId> = HashMap::with_capacity(out.node_count());
    for id in out.node_ids() {
        index.entry(matcher.node_key(out.node_label(id))).or_insert(id);
    }

    // Map b's nodes into the composed graph.
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(b.node_count());
    for b_id in b.node_ids() {
        let label = b.node_label(b_id);
        let key = matcher.node_key(label);
        match index.get(&key) {
            Some(&existing) if matcher.nodes_match(out.node_label(existing), label) => {
                mapping.insert(b_id, existing);
                stats.nodes_shared += 1;
            }
            _ => {
                let new_id = out.add_node(label.to_owned());
                index.insert(key, new_id);
                mapping.insert(b_id, new_id);
                stats.nodes_added += 1;
            }
        }
    }

    // Union edges.
    for e_id in b.edge_ids() {
        let (from, to, label) = b.edge(e_id);
        let (nf, nt) = (mapping[&from], mapping[&to]);
        let duplicate = out
            .edge_ids()
            .any(|eid| {
                let (f, t, l) = out.edge(eid);
                f == nf && t == nt && matcher.edges_match(l, label)
            });
        if duplicate {
            stats.edges_shared += 1;
        } else {
            out.add_edge(nf, nt, label.to_owned());
            stats.edges_added += 1;
        }
    }

    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1a() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        g.add_edge(a, b, "k1");
        g.add_edge(b, c, "k2");
        g.add_edge(c, b, "k3");
        g
    }

    #[test]
    fn fig1_identical_models_compose_to_same() {
        // Paper Fig. 1: a + a = a.
        let g = fig1a();
        let (composed, stats) = compose(&g, &g, &NoSemantics);
        assert_eq!(composed.node_count(), 3);
        assert_eq!(composed.edge_count(), 3);
        assert_eq!(stats.nodes_shared, 3);
        assert_eq!(stats.nodes_added, 0);
        assert_eq!(stats.edges_shared, 3);
        assert_eq!(stats.edges_added, 0);
    }

    #[test]
    fn fig2_disjoint_models_concatenate() {
        // Paper Fig. 2: (A->B->C) + (D->E).
        let mut g1 = Graph::new();
        let a = g1.add_node("A");
        let b = g1.add_node("B");
        let c = g1.add_node("C");
        g1.add_edge(a, b, "k1");
        g1.add_edge(b, c, "k2");

        let mut g2 = Graph::new();
        let d = g2.add_node("D");
        let e = g2.add_node("E");
        g2.add_edge(d, e, "k3");

        let (composed, stats) = compose(&g1, &g2, &NoSemantics);
        assert_eq!(composed.node_count(), 5);
        assert_eq!(composed.edge_count(), 3);
        assert_eq!(stats.nodes_added, 2);
        assert_eq!(stats.edges_added, 1);
    }

    #[test]
    fn fig3_shared_subnetwork_merges() {
        // Paper Fig. 3: (A->B<->C->D) + (A->B->C) shares A->B and B->C.
        let mut g1 = Graph::new();
        let a = g1.add_node("A");
        let b = g1.add_node("B");
        let c = g1.add_node("C");
        let d = g1.add_node("D");
        g1.add_edge(a, b, "k1");
        g1.add_edge(b, c, "k2");
        g1.add_edge(c, b, "k3");
        g1.add_edge(c, d, "k4");

        let mut g2 = Graph::new();
        let a2 = g2.add_node("A");
        let b2 = g2.add_node("B");
        let c2 = g2.add_node("C");
        g2.add_edge(a2, b2, "k1");
        g2.add_edge(b2, c2, "k2");

        let (composed, stats) = compose(&g1, &g2, &NoSemantics);
        assert_eq!(composed.node_count(), 4, "a+b=a (paper Fig. 3c)");
        assert_eq!(composed.edge_count(), 4);
        assert_eq!(stats.nodes_shared, 3);
        assert_eq!(stats.edges_shared, 2);
    }

    #[test]
    fn light_semantics_matches_synonyms() {
        let mut g1 = Graph::new();
        g1.add_node("glucose");
        let mut g2 = Graph::new();
        g2.add_node("dextrose");

        let (strict, _) = compose(&g1, &g2, &NoSemantics);
        assert_eq!(strict.node_count(), 2, "no semantics: different labels");

        let light = LightSemantics::with_builtins();
        let (merged, stats) = compose(&g1, &g2, &light);
        assert_eq!(merged.node_count(), 1, "light semantics: synonyms unify");
        assert_eq!(stats.nodes_shared, 1);
    }

    #[test]
    fn light_semantics_normalises_case_and_separators() {
        let mut g1 = Graph::new();
        g1.add_node("Fructose 6-Phosphate");
        let mut g2 = Graph::new();
        g2.add_node("fructose_6_phosphate");
        let light = LightSemantics::default(); // no synonym groups at all
        let (merged, _) = compose(&g1, &g2, &light);
        assert_eq!(merged.node_count(), 1);
    }

    #[test]
    fn edges_between_shared_nodes_deduplicate_only_when_unitable() {
        let mut g1 = Graph::new();
        let a = g1.add_node("A");
        let b = g1.add_node("B");
        g1.add_edge(a, b, "k1");

        let mut g2 = Graph::new();
        let a2 = g2.add_node("A");
        let b2 = g2.add_node("B");
        g2.add_edge(a2, b2, "k_different");

        let (composed, stats) = compose(&g1, &g2, &NoSemantics);
        assert_eq!(composed.node_count(), 2);
        assert_eq!(composed.edge_count(), 2, "different edge labels both kept");
        assert_eq!(stats.edges_added, 1);
    }

    #[test]
    fn compose_with_empty_is_identity() {
        let g = fig1a();
        let empty = Graph::new();
        let (left, _) = compose(&g, &empty, &NoSemantics);
        assert_eq!(left, g);
        let (right, _) = compose(&empty, &g, &NoSemantics);
        assert_eq!(right.node_count(), g.node_count());
        assert_eq!(right.edge_count(), g.edge_count());
    }

    #[test]
    fn duplicate_labels_in_first_graph_keep_first() {
        let mut g1 = Graph::new();
        g1.add_node("X");
        g1.add_node("X"); // duplicate label
        let mut g2 = Graph::new();
        g2.add_node("X");
        let (composed, stats) = compose(&g1, &g2, &NoSemantics);
        assert_eq!(composed.node_count(), 2, "b's X matches the first a X");
        assert_eq!(stats.nodes_shared, 1);
    }
}
