//! Extracting the species/reaction graph from an SBML model.
//!
//! Species become nodes (labelled by name, falling back to id — the label
//! the paper's `φ` compares); each reaction contributes one edge per
//! (reactant, product) pair, labelled by the reaction id. This is the graph
//! whose `nodes + edges` size orders the models in Figure 8.

use std::collections::HashMap;

use sbml_model::Model;

use crate::graph::{Graph, NodeId};

/// Build the species/reaction graph of a model.
pub fn species_reaction_graph(model: &Model) -> Graph {
    let mut g = Graph::new();
    let mut by_id: HashMap<&str, NodeId> = HashMap::with_capacity(model.species.len());
    for s in &model.species {
        let label = s.name.as_deref().unwrap_or(&s.id);
        let node = g.add_node(label);
        by_id.insert(s.id.as_str(), node);
    }
    for r in &model.reactions {
        for reactant in &r.reactants {
            for product in &r.products {
                if let (Some(&from), Some(&to)) =
                    (by_id.get(reactant.species.as_str()), by_id.get(product.species.as_str()))
                {
                    g.add_edge(from, to, r.id.clone());
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    #[test]
    fn fig1a_graph_shape() {
        let m = ModelBuilder::new("fig1a")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .parameter("k1", 0.1)
            .parameter("k2", 0.05)
            .parameter("k3", 0.02)
            .reaction("r1", &["A"], &["B"], "k1*A")
            .reaction("r2", &["B"], &["C"], "k2*B")
            .reaction("r3", &["C"], &["B"], "k3*C")
            .build();
        let g = species_reaction_graph(&m);
        assert_eq!(g.node_count(), m.nodes());
        assert_eq!(g.edge_count(), m.edges());
        let (a, b) = (g.find_node("A").unwrap(), g.find_node("B").unwrap());
        assert!(g.has_edge(a, b, "r1"));
    }

    #[test]
    fn names_preferred_over_ids() {
        let m = ModelBuilder::new("named")
            .compartment("c", 1.0)
            .species_named("s1", "glucose", 1.0)
            .build();
        let g = species_reaction_graph(&m);
        assert!(g.find_node("glucose").is_some());
        assert!(g.find_node("s1").is_none());
    }

    #[test]
    fn bimolecular_fan_out() {
        let m = ModelBuilder::new("fan")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 1.0)
            .species("C", 0.0)
            .species("D", 0.0)
            .parameter("k", 1.0)
            .reaction("r", &["A", "B"], &["C", "D"], "k*A*B")
            .build();
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 4, "2 reactants × 2 products");
    }

    #[test]
    fn empty_model_empty_graph() {
        let g = species_reaction_graph(&sbml_model::Model::new("empty"));
        assert_eq!(g.size(), 0);
    }

    #[test]
    fn dangling_species_reference_skipped() {
        // A reaction that references a species the model doesn't declare
        // (invalid model) simply contributes no edge.
        let mut m = ModelBuilder::new("dangling")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &["A"], "k*A")
            .build();
        m.reactions[0].products[0].species = "ghost".into();
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 0);
    }
}
