//! Extracting the species/reaction graph from an SBML model.
//!
//! Species become nodes (labelled by name, falling back to id — the label
//! the paper's `φ` compares); each reaction contributes one edge per
//! (reactant, product) pair, labelled by the reaction id, plus one
//! **regulatory edge** per (modifier, product) pair labelled distinctly
//! (`mod:<reaction id>`), so matching sees enzymes and other regulators
//! as structure, not just as kinetic-law identifiers. This is the graph
//! whose `nodes + edges` size orders the models in Figure 8.
//!
//! [`species_reaction_graph`] returns the bare [`Graph`];
//! [`model_graph`] additionally keeps the node→species and edge→reaction
//! correspondence, which subgraph matching (`sbml-match`) needs to turn a
//! node embedding back into concrete species/reaction id mappings.

use std::collections::HashMap;

use sbml_model::Model;

use crate::graph::{Graph, NodeId};

/// What an extracted edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeRole {
    /// A reactant→product conversion arc (labelled with the reaction id).
    Conversion,
    /// A modifier→product regulatory arc (labelled `mod:<reaction id>`).
    Regulation,
}

/// The label of a regulatory (modifier) edge for reaction `rid` —
/// deliberately distinct from the conversion-edge label so the two can
/// never unify under exact edge-label matching.
pub fn modifier_edge_label(rid: &str) -> String {
    format!("mod:{rid}")
}

/// A [`Graph`] extracted from a model, plus the correspondence back into
/// the model: which species each node came from and which reaction (and
/// role) each edge came from.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    /// The species/reaction graph itself. Node `i` *is*
    /// `model.species[i]`: every species becomes a node, in model order,
    /// so the node handle doubles as the species index.
    pub graph: Graph,
    /// Edge `e` was contributed by `model.reactions[edge_reaction[e]]`.
    pub edge_reaction: Vec<usize>,
    /// Role of edge `e` (conversion vs regulation).
    pub edge_role: Vec<EdgeRole>,
}

/// Build the species/reaction graph of a model, keeping the node→species
/// and edge→reaction correspondence.
pub fn model_graph(model: &Model) -> ModelGraph {
    let mut g = Graph::new();
    let mut edge_reaction = Vec::new();
    let mut edge_role = Vec::new();
    let mut by_id: HashMap<&str, NodeId> = HashMap::with_capacity(model.species.len());
    for s in &model.species {
        let label = s.name.as_deref().unwrap_or(&s.id);
        let node = g.add_node(label);
        by_id.insert(s.id.as_str(), node);
    }
    for (ri, r) in model.reactions.iter().enumerate() {
        for reactant in &r.reactants {
            for product in &r.products {
                if let (Some(&from), Some(&to)) =
                    (by_id.get(reactant.species.as_str()), by_id.get(product.species.as_str()))
                {
                    g.add_edge(from, to, r.id.clone());
                    edge_reaction.push(ri);
                    edge_role.push(EdgeRole::Conversion);
                }
            }
        }
        for modifier in &r.modifiers {
            for product in &r.products {
                if let (Some(&from), Some(&to)) =
                    (by_id.get(modifier.species.as_str()), by_id.get(product.species.as_str()))
                {
                    g.add_edge(from, to, modifier_edge_label(&r.id));
                    edge_reaction.push(ri);
                    edge_role.push(EdgeRole::Regulation);
                }
            }
        }
    }
    ModelGraph { graph: g, edge_reaction, edge_role }
}

/// Build the species/reaction graph of a model.
pub fn species_reaction_graph(model: &Model) -> Graph {
    model_graph(model).graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    #[test]
    fn fig1a_graph_shape() {
        let m = ModelBuilder::new("fig1a")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .parameter("k1", 0.1)
            .parameter("k2", 0.05)
            .parameter("k3", 0.02)
            .reaction("r1", &["A"], &["B"], "k1*A")
            .reaction("r2", &["B"], &["C"], "k2*B")
            .reaction("r3", &["C"], &["B"], "k3*C")
            .build();
        let g = species_reaction_graph(&m);
        assert_eq!(g.node_count(), m.nodes());
        assert_eq!(g.edge_count(), m.edges());
        let (a, b) = (g.find_node("A").unwrap(), g.find_node("B").unwrap());
        assert!(g.has_edge(a, b, "r1"));
    }

    #[test]
    fn names_preferred_over_ids() {
        let m = ModelBuilder::new("named")
            .compartment("c", 1.0)
            .species_named("s1", "glucose", 1.0)
            .build();
        let g = species_reaction_graph(&m);
        assert!(g.find_node("glucose").is_some());
        assert!(g.find_node("s1").is_none());
    }

    #[test]
    fn bimolecular_fan_out() {
        let m = ModelBuilder::new("fan")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 1.0)
            .species("C", 0.0)
            .species("D", 0.0)
            .parameter("k", 1.0)
            .reaction("r", &["A", "B"], &["C", "D"], "k*A*B")
            .build();
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 4, "2 reactants × 2 products");
    }

    #[test]
    fn empty_model_empty_graph() {
        let g = species_reaction_graph(&sbml_model::Model::new("empty"));
        assert_eq!(g.size(), 0);
    }

    #[test]
    fn dangling_species_reference_skipped() {
        // A reaction that references a species the model doesn't declare
        // (invalid model) simply contributes no edge.
        let mut m = ModelBuilder::new("dangling")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &["A"], "k*A")
            .build();
        m.reactions[0].products[0].species = "ghost".into();
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 0);
    }

    /// E catalyses A → B: the modifier contributes a distinctly-labelled
    /// regulatory edge alongside the conversion edge.
    fn enzyme_model() -> sbml_model::Model {
        let mut m = ModelBuilder::new("enzyme")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .species_named("E", "hexokinase", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &["B"], "k*E*A")
            .build();
        m.reactions[0].modifiers.push(sbml_model::SpeciesReference::new("E"));
        m
    }

    #[test]
    fn modifier_edges_emitted_with_distinct_label() {
        let m = enzyme_model();
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_count(), m.edges(), "graph and Model::edges metrics agree");
        let (a, b, e) = (
            g.find_node("A").unwrap(),
            g.find_node("B").unwrap(),
            g.find_node("hexokinase").unwrap(),
        );
        assert!(g.has_edge(a, b, "r"), "conversion edge keeps the reaction-id label");
        assert!(g.has_edge(e, b, "mod:r"), "regulatory edge is labelled distinctly");
        assert!(!g.has_edge(e, b, "r"), "the two labels never unify");
    }

    #[test]
    fn model_graph_correspondence() {
        let m = enzyme_model();
        let mg = model_graph(&m);
        assert_eq!(mg.graph.node_count(), 3, "node i is species i");
        assert_eq!(mg.graph.node_label(NodeId(2)), "hexokinase");
        assert_eq!(mg.edge_reaction, vec![0, 0], "both edges come from reaction r");
        assert_eq!(mg.edge_role, vec![EdgeRole::Conversion, EdgeRole::Regulation]);
    }

    #[test]
    fn modifier_with_no_products_contributes_no_edge() {
        // Regulated degradation A -> ∅: there is no product endpoint, so
        // the modifier has nothing to point at (consistent with the
        // reactant side contributing no conversion edge either).
        let mut m = ModelBuilder::new("deg")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("E", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &[], "k*E*A")
            .build();
        m.reactions[0].modifiers.push(sbml_model::SpeciesReference::new("E"));
        let g = species_reaction_graph(&m);
        assert_eq!(g.edge_count(), 0);
    }
}
