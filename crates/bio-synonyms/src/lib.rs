//! Local synonym tables for biological entity names.
//!
//! The paper replaces semanticSBML's online-database annotation step with
//! *local synonym tables*: "our synonym tables are smaller and contain only
//! the entries required for the composition", and "new biological entities
//! can be added to support composition, as needed". Species equality during
//! merge is `φ(n1) ≈ φ(n2)`: identifiers identical **or synonymous**.
//!
//! A [`SynonymTable`] maps *normalised* names into synonym groups. Name
//! normalisation (case folding, whitespace/underscore/hyphen collapsing)
//! handles the incidental variation between models; explicit groups handle
//! true synonymy (`glucose` = `dextrose` = `D-glucose`).
//!
//! # Example
//!
//! ```
//! use bio_synonyms::SynonymTable;
//!
//! let mut table = SynonymTable::new();
//! table.add_group(["glucose", "dextrose", "D-glucose"]);
//! assert!(table.are_synonyms("Glucose", "dextrose"));
//! assert!(table.are_synonyms("d_glucose", "glucose")); // normalisation
//! assert!(!table.are_synonyms("glucose", "fructose"));
//! assert_eq!(table.canonical("DEXTROSE"), Some("glucose"));
//! ```

use std::collections::HashMap;

/// Normalise an entity name for matching: Unicode-aware lowercasing, and
/// runs of whitespace/underscores/hyphens collapse to a single underscore.
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_sep = false;
    for c in name.trim().chars() {
        if c.is_whitespace() || c == '_' || c == '-' {
            pending_sep = !out.is_empty();
        } else {
            if pending_sep {
                out.push('_');
                pending_sep = false;
            }
            out.extend(c.to_lowercase());
        }
    }
    out
}

/// A table of synonym groups over normalised names.
#[derive(Debug, Clone, Default)]
pub struct SynonymTable {
    /// Group id → member names as originally registered (first = canonical).
    groups: Vec<Vec<String>>,
    /// Normalised name → group id.
    index: HashMap<String, usize>,
}

impl SynonymTable {
    /// An empty table.
    pub fn new() -> SynonymTable {
        SynonymTable::default()
    }

    /// A table preloaded with common biochemical synonym groups — the
    /// "smaller synonym tables" that replace the 54,929-entry annotation
    /// database of the semanticSBML baseline.
    pub fn with_builtins() -> SynonymTable {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose", "D-glucose", "Glc"]);
        t.add_group(["ATP", "adenosine triphosphate", "adenosine 5'-triphosphate"]);
        t.add_group(["ADP", "adenosine diphosphate"]);
        t.add_group(["AMP", "adenosine monophosphate"]);
        t.add_group(["NAD", "NAD+", "nicotinamide adenine dinucleotide"]);
        t.add_group(["NADH", "reduced nicotinamide adenine dinucleotide"]);
        t.add_group(["phosphate", "Pi", "inorganic phosphate", "orthophosphate"]);
        t.add_group(["pyruvate", "pyruvic acid"]);
        t.add_group(["lactate", "lactic acid"]);
        t.add_group(["citrate", "citric acid"]);
        t.add_group(["oxygen", "O2", "dioxygen"]);
        t.add_group(["carbon dioxide", "CO2"]);
        t.add_group(["water", "H2O"]);
        t.add_group(["hydrogen ion", "H+", "proton"]);
        t.add_group(["calcium", "Ca2+", "calcium ion"]);
        t.add_group(["glyceraldehyde 3-phosphate", "G3P", "GAP"]);
        t.add_group(["fructose 6-phosphate", "F6P"]);
        t.add_group(["glucose 6-phosphate", "G6P"]);
        t.add_group(["phosphoenolpyruvate", "PEP"]);
        t.add_group(["acetyl-CoA", "acetyl coenzyme A"]);
        t
    }

    /// Number of synonym groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Order-sensitive hash of the registered groups, for cheap identity
    /// checks (e.g. detecting that cached analysis was computed under a
    /// different table). Tables built by the same registration sequence
    /// hash equal; semantically equal tables built in different orders
    /// may hash differently — callers treat a mismatch conservatively.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.groups.hash(&mut hasher);
        hasher.finish()
    }

    /// Total registered names.
    pub fn name_count(&self) -> usize {
        self.index.len()
    }

    /// Register a group of mutually synonymous names. Names already known
    /// merge their groups (union semantics).
    pub fn add_group<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let names: Vec<String> = names.into_iter().map(|s| s.as_ref().to_owned()).collect();
        if names.is_empty() {
            return;
        }
        // Find an existing group to join, if any member is known.
        let existing = names.iter().find_map(|n| self.index.get(&normalize(n)).copied());
        let group_id = match existing {
            Some(id) => id,
            None => {
                self.groups.push(Vec::new());
                self.groups.len() - 1
            }
        };
        for name in names {
            let key = normalize(&name);
            if key.is_empty() {
                continue;
            }
            match self.index.get(&key).copied() {
                None => {
                    self.index.insert(key, group_id);
                    self.groups[group_id].push(name);
                }
                Some(other) if other != group_id => self.merge_groups(group_id, other),
                Some(_) => {}
            }
        }
    }

    /// Register `synonym` as an alternative for `canonical`.
    pub fn add_synonym(&mut self, canonical: &str, synonym: &str) {
        self.add_group([canonical, synonym]);
    }

    fn merge_groups(&mut self, keep: usize, absorb: usize) {
        let moved = std::mem::take(&mut self.groups[absorb]);
        for name in &moved {
            self.index.insert(normalize(name), keep);
        }
        self.groups[keep].extend(moved);
    }

    /// The canonical (first-registered) name of the group `name` belongs
    /// to, or `None` if the name is unknown.
    pub fn canonical(&self, name: &str) -> Option<&str> {
        let group = *self.index.get(&normalize(name))?;
        self.groups[group].first().map(String::as_str)
    }

    /// Are two names equal under normalisation or registered synonymy?
    /// This is the `≈` of the paper's node-equality definition.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (na, nb) = (normalize(a), normalize(b));
        if na == nb {
            return !na.is_empty();
        }
        match (self.index.get(&na), self.index.get(&nb)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    /// A canonical matching key for indexing: the group's canonical name if
    /// known, otherwise the normalised input.
    pub fn match_key(&self, name: &str) -> String {
        match self.canonical(name) {
            Some(c) => normalize(c),
            None => normalize(name),
        }
    }

    /// Absorb every group of `other` into this table.
    pub fn extend_from(&mut self, other: &SynonymTable) {
        for group in &other.groups {
            if !group.is_empty() {
                self.add_group(group.iter().map(String::as_str));
            }
        }
    }

    /// Iterate over groups (canonical name first in each).
    pub fn groups(&self) -> impl Iterator<Item = &[String]> {
        self.groups.iter().filter(|g| !g.is_empty()).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(normalize("  D-Glucose  "), "d_glucose");
        assert_eq!(normalize("adenosine   triphosphate"), "adenosine_triphosphate");
        assert_eq!(normalize("A__B--C"), "a_b_c");
        assert_eq!(normalize("ATP"), "atp");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("-x-"), "x");
    }

    #[test]
    fn same_name_is_synonym_of_itself() {
        let t = SynonymTable::new();
        assert!(t.are_synonyms("ATP", "atp"));
        assert!(t.are_synonyms("a b", "a_b"));
        assert!(!t.are_synonyms("", ""));
        assert!(!t.are_synonyms("x", "y"));
    }

    #[test]
    fn group_membership() {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose"]);
        assert!(t.are_synonyms("glucose", "dextrose"));
        assert!(t.are_synonyms("dextrose", "glucose"), "symmetry");
        assert!(!t.are_synonyms("glucose", "fructose"));
        assert_eq!(t.canonical("dextrose"), Some("glucose"));
        assert_eq!(t.canonical("fructose"), None);
    }

    #[test]
    fn transitive_union_of_groups() {
        let mut t = SynonymTable::new();
        t.add_group(["a", "b"]);
        t.add_group(["c", "d"]);
        assert!(!t.are_synonyms("a", "c"));
        // Bridge the two groups.
        t.add_group(["b", "c"]);
        assert!(t.are_synonyms("a", "d"), "groups must union transitively");
        assert_eq!(t.group_count(), 2, "bridging reuses an existing group slot");
        assert_eq!(t.groups().count(), 1, "the absorbed slot is left empty");
    }

    #[test]
    fn match_key_canonicalises() {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose"]);
        assert_eq!(t.match_key("DEXTROSE"), "glucose");
        assert_eq!(t.match_key("unknown thing"), "unknown_thing");
    }

    #[test]
    fn add_synonym_shorthand() {
        let mut t = SynonymTable::new();
        t.add_synonym("ATP", "adenosine triphosphate");
        assert!(t.are_synonyms("atp", "Adenosine  Triphosphate"));
    }

    #[test]
    fn builtins_sanity() {
        let t = SynonymTable::with_builtins();
        assert!(t.group_count() >= 20);
        assert!(t.are_synonyms("glucose", "Glc"));
        assert!(t.are_synonyms("H2O", "water"));
        assert!(t.are_synonyms("Pi", "inorganic phosphate"));
        assert!(!t.are_synonyms("ATP", "ADP"));
    }

    #[test]
    fn extend_from_unions() {
        let mut a = SynonymTable::new();
        a.add_group(["x", "y"]);
        let mut b = SynonymTable::new();
        b.add_group(["y", "z"]);
        a.extend_from(&b);
        assert!(a.are_synonyms("x", "z"));
    }

    #[test]
    fn empty_and_whitespace_names_ignored() {
        let mut t = SynonymTable::new();
        t.add_group(["", "  ", "real"]);
        assert_eq!(t.name_count(), 1);
        assert_eq!(t.canonical("real"), Some("real"));
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut t = SynonymTable::new();
        t.add_group(["a", "b"]);
        t.add_group(["a", "b"]);
        t.add_group(["A", "B"]);
        assert_eq!(t.name_count(), 2);
        assert_eq!(t.groups().count(), 1);
    }
}
