//! Local synonym tables for biological entity names.
//!
//! The paper replaces semanticSBML's online-database annotation step with
//! *local synonym tables*: "our synonym tables are smaller and contain only
//! the entries required for the composition", and "new biological entities
//! can be added to support composition, as needed". Species equality during
//! merge is `φ(n1) ≈ φ(n2)`: identifiers identical **or synonymous**.
//!
//! A [`SynonymTable`] maps *normalised* names into synonym groups. Name
//! normalisation (case folding, whitespace/underscore/hyphen collapsing)
//! handles the incidental variation between models; explicit groups handle
//! true synonymy (`glucose` = `dextrose` = `D-glucose`).
//!
//! # Example
//!
//! ```
//! use bio_synonyms::SynonymTable;
//!
//! let mut table = SynonymTable::new();
//! table.add_group(["glucose", "dextrose", "D-glucose"]);
//! assert!(table.are_synonyms("Glucose", "dextrose"));
//! assert!(table.are_synonyms("d_glucose", "glucose")); // normalisation
//! assert!(!table.are_synonyms("glucose", "fructose"));
//! assert_eq!(table.canonical("DEXTROSE"), Some("glucose"));
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, RwLock};

/// Dependency-free FxHash-style hasher (multiply-xor over word-sized
/// chunks), the same idiom the compose engine uses for its component
/// indexes. `bio-synonyms` is a foundation crate with no intra-workspace
/// dependencies, so it carries its own copy: match-key lookups are on the
/// candidate-generation hot path of corpus matching, where SipHash's DoS
/// resistance buys nothing and costs measurably.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for (i, b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(*b) << (8 * i);
        }
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed by short trusted strings, using [`FxHasher`].
type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Normalise an entity name for matching: Unicode-aware lowercasing, and
/// runs of whitespace/underscores/hyphens collapse to a single underscore.
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_sep = false;
    for c in name.trim().chars() {
        if c.is_whitespace() || c == '_' || c == '-' {
            pending_sep = !out.is_empty();
        } else {
            if pending_sep {
                out.push('_');
                pending_sep = false;
            }
            out.extend(c.to_lowercase());
        }
    }
    out
}

/// A table of synonym groups over normalised names.
#[derive(Debug, Default)]
pub struct SynonymTable {
    /// Group id → member names as originally registered (first = canonical).
    groups: Vec<Vec<String>>,
    /// Normalised name → group id.
    index: HashMap<String, usize>,
    /// Raw input name → canonical match key, filled lazily by
    /// [`SynonymTable::match_key_shared`]. Candidate generation during
    /// corpus matching probes the same species labels over and over; the
    /// memo turns each repeat into one hash lookup instead of a fresh
    /// normalisation pass plus allocations. Cleared on every mutation.
    key_cache: RwLock<FastMap<String, Arc<str>>>,
}

impl Clone for SynonymTable {
    fn clone(&self) -> SynonymTable {
        // The memo is a pure cache — a clone starts cold rather than
        // copying (or locking) the original's.
        SynonymTable {
            groups: self.groups.clone(),
            index: self.index.clone(),
            key_cache: RwLock::new(FastMap::default()),
        }
    }
}

impl SynonymTable {
    /// An empty table.
    pub fn new() -> SynonymTable {
        SynonymTable::default()
    }

    /// A table preloaded with common biochemical synonym groups — the
    /// "smaller synonym tables" that replace the 54,929-entry annotation
    /// database of the semanticSBML baseline.
    pub fn with_builtins() -> SynonymTable {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose", "D-glucose", "Glc"]);
        t.add_group(["ATP", "adenosine triphosphate", "adenosine 5'-triphosphate"]);
        t.add_group(["ADP", "adenosine diphosphate"]);
        t.add_group(["AMP", "adenosine monophosphate"]);
        t.add_group(["NAD", "NAD+", "nicotinamide adenine dinucleotide"]);
        t.add_group(["NADH", "reduced nicotinamide adenine dinucleotide"]);
        t.add_group(["phosphate", "Pi", "inorganic phosphate", "orthophosphate"]);
        t.add_group(["pyruvate", "pyruvic acid"]);
        t.add_group(["lactate", "lactic acid"]);
        t.add_group(["citrate", "citric acid"]);
        t.add_group(["oxygen", "O2", "dioxygen"]);
        t.add_group(["carbon dioxide", "CO2"]);
        t.add_group(["water", "H2O"]);
        t.add_group(["hydrogen ion", "H+", "proton"]);
        t.add_group(["calcium", "Ca2+", "calcium ion"]);
        t.add_group(["glyceraldehyde 3-phosphate", "G3P", "GAP"]);
        t.add_group(["fructose 6-phosphate", "F6P"]);
        t.add_group(["glucose 6-phosphate", "G6P"]);
        t.add_group(["phosphoenolpyruvate", "PEP"]);
        t.add_group(["acetyl-CoA", "acetyl coenzyme A"]);
        t
    }

    /// Number of synonym groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Order-sensitive hash of the registered groups, for cheap identity
    /// checks (e.g. detecting that cached analysis was computed under a
    /// different table). Tables built by the same registration sequence
    /// hash equal; semantically equal tables built in different orders
    /// may hash differently — callers treat a mismatch conservatively.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.groups.hash(&mut hasher);
        hasher.finish()
    }

    /// Total registered names.
    pub fn name_count(&self) -> usize {
        self.index.len()
    }

    /// Register a group of mutually synonymous names. Names already known
    /// merge their groups (union semantics).
    pub fn add_group<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let names: Vec<String> = names.into_iter().map(|s| s.as_ref().to_owned()).collect();
        if names.is_empty() {
            return;
        }
        // Any registration can change canonical keys; drop the memo.
        self.key_cache.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        // Find an existing group to join, if any member is known.
        let existing = names.iter().find_map(|n| self.index.get(&normalize(n)).copied());
        let group_id = match existing {
            Some(id) => id,
            None => {
                self.groups.push(Vec::new());
                self.groups.len() - 1
            }
        };
        for name in names {
            let key = normalize(&name);
            if key.is_empty() {
                continue;
            }
            match self.index.get(&key).copied() {
                None => {
                    self.index.insert(key, group_id);
                    self.groups[group_id].push(name);
                }
                Some(other) if other != group_id => self.merge_groups(group_id, other),
                Some(_) => {}
            }
        }
    }

    /// Register `synonym` as an alternative for `canonical`.
    pub fn add_synonym(&mut self, canonical: &str, synonym: &str) {
        self.add_group([canonical, synonym]);
    }

    fn merge_groups(&mut self, keep: usize, absorb: usize) {
        let moved = std::mem::take(&mut self.groups[absorb]);
        for name in &moved {
            self.index.insert(normalize(name), keep);
        }
        self.groups[keep].extend(moved);
    }

    /// The canonical (first-registered) name of the group `name` belongs
    /// to, or `None` if the name is unknown.
    pub fn canonical(&self, name: &str) -> Option<&str> {
        let group = *self.index.get(&normalize(name))?;
        self.groups[group].first().map(String::as_str)
    }

    /// Are two names equal under normalisation or registered synonymy?
    /// This is the `≈` of the paper's node-equality definition.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (na, nb) = (normalize(a), normalize(b));
        if na == nb {
            return !na.is_empty();
        }
        match (self.index.get(&na), self.index.get(&nb)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    /// A canonical matching key for indexing: the group's canonical name if
    /// known, otherwise the normalised input.
    pub fn match_key(&self, name: &str) -> String {
        self.match_key_shared(name).as_ref().to_owned()
    }

    /// As [`SynonymTable::match_key`], but memoised and shared: the first
    /// lookup of a name normalises and allocates once, every repeat is a
    /// single hash probe returning a refcount bump on the cached
    /// `Arc<str>`. This is the form index builders and candidate
    /// generators should call in loops.
    pub fn match_key_shared(&self, name: &str) -> Arc<str> {
        if let Some(hit) = self
            .key_cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(hit);
        }
        let key: Arc<str> = match self.canonical(name) {
            Some(c) => Arc::from(normalize(c).as_str()),
            None => Arc::from(normalize(name).as_str()),
        };
        self.key_cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name.to_owned(), Arc::clone(&key));
        key
    }

    /// Absorb every group of `other` into this table.
    pub fn extend_from(&mut self, other: &SynonymTable) {
        for group in &other.groups {
            if !group.is_empty() {
                self.add_group(group.iter().map(String::as_str));
            }
        }
    }

    /// Iterate over groups (canonical name first in each).
    pub fn groups(&self) -> impl Iterator<Item = &[String]> {
        self.groups.iter().filter(|g| !g.is_empty()).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(normalize("  D-Glucose  "), "d_glucose");
        assert_eq!(normalize("adenosine   triphosphate"), "adenosine_triphosphate");
        assert_eq!(normalize("A__B--C"), "a_b_c");
        assert_eq!(normalize("ATP"), "atp");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("-x-"), "x");
    }

    #[test]
    fn same_name_is_synonym_of_itself() {
        let t = SynonymTable::new();
        assert!(t.are_synonyms("ATP", "atp"));
        assert!(t.are_synonyms("a b", "a_b"));
        assert!(!t.are_synonyms("", ""));
        assert!(!t.are_synonyms("x", "y"));
    }

    #[test]
    fn group_membership() {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose"]);
        assert!(t.are_synonyms("glucose", "dextrose"));
        assert!(t.are_synonyms("dextrose", "glucose"), "symmetry");
        assert!(!t.are_synonyms("glucose", "fructose"));
        assert_eq!(t.canonical("dextrose"), Some("glucose"));
        assert_eq!(t.canonical("fructose"), None);
    }

    #[test]
    fn transitive_union_of_groups() {
        let mut t = SynonymTable::new();
        t.add_group(["a", "b"]);
        t.add_group(["c", "d"]);
        assert!(!t.are_synonyms("a", "c"));
        // Bridge the two groups.
        t.add_group(["b", "c"]);
        assert!(t.are_synonyms("a", "d"), "groups must union transitively");
        assert_eq!(t.group_count(), 2, "bridging reuses an existing group slot");
        assert_eq!(t.groups().count(), 1, "the absorbed slot is left empty");
    }

    #[test]
    fn match_key_canonicalises() {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose"]);
        assert_eq!(t.match_key("DEXTROSE"), "glucose");
        assert_eq!(t.match_key("unknown thing"), "unknown_thing");
    }

    #[test]
    fn add_synonym_shorthand() {
        let mut t = SynonymTable::new();
        t.add_synonym("ATP", "adenosine triphosphate");
        assert!(t.are_synonyms("atp", "Adenosine  Triphosphate"));
    }

    #[test]
    fn builtins_sanity() {
        let t = SynonymTable::with_builtins();
        assert!(t.group_count() >= 20);
        assert!(t.are_synonyms("glucose", "Glc"));
        assert!(t.are_synonyms("H2O", "water"));
        assert!(t.are_synonyms("Pi", "inorganic phosphate"));
        assert!(!t.are_synonyms("ATP", "ADP"));
    }

    #[test]
    fn extend_from_unions() {
        let mut a = SynonymTable::new();
        a.add_group(["x", "y"]);
        let mut b = SynonymTable::new();
        b.add_group(["y", "z"]);
        a.extend_from(&b);
        assert!(a.are_synonyms("x", "z"));
    }

    #[test]
    fn empty_and_whitespace_names_ignored() {
        let mut t = SynonymTable::new();
        t.add_group(["", "  ", "real"]);
        assert_eq!(t.name_count(), 1);
        assert_eq!(t.canonical("real"), Some("real"));
    }

    #[test]
    fn match_key_cache_hits_share_one_allocation() {
        let mut t = SynonymTable::new();
        t.add_group(["glucose", "dextrose"]);
        let first = t.match_key_shared("DEXTROSE");
        let second = t.match_key_shared("DEXTROSE");
        assert!(Arc::ptr_eq(&first, &second), "repeat lookups must reuse the memo");
        assert_eq!(first.as_ref(), "glucose");
        // The owned form agrees with the shared form.
        assert_eq!(t.match_key("DEXTROSE"), "glucose");
    }

    #[test]
    fn match_key_cache_invalidated_by_registration() {
        let mut t = SynonymTable::new();
        assert_eq!(t.match_key("dextrose"), "dextrose", "unknown name normalises");
        // Registering a group that now canonicalises the name must not be
        // masked by the earlier cached answer.
        t.add_group(["glucose", "dextrose"]);
        assert_eq!(t.match_key("dextrose"), "glucose");
        // ...and bridging groups after further lookups re-canonicalises.
        t.add_group(["Glc", "glucose"]);
        assert_eq!(t.match_key("Glc"), "glucose");
    }

    #[test]
    fn cloned_table_answers_like_the_original() {
        let mut t = SynonymTable::new();
        t.add_group(["a", "b"]);
        let _warm = t.match_key_shared("b");
        let cloned = t.clone();
        assert_eq!(cloned.match_key("b"), "a");
        assert!(cloned.are_synonyms("A", "B"));
        assert_eq!(cloned.content_hash(), t.content_hash());
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut t = SynonymTable::new();
        t.add_group(["a", "b"]);
        t.add_group(["a", "b"]);
        t.add_group(["A", "B"]);
        assert_eq!(t.name_count(), 2);
        assert_eq!(t.groups().count(), 1);
    }
}
