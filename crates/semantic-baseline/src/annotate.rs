//! The annotation pass: tag every model component with database ids.
//!
//! semanticSBML "first annotates the elements in the model with identifiers
//! from biological model databases to allow the meaning of each element to
//! be known. This involves database lookups which are slow and do not scale
//! up."

use std::collections::HashMap;

use sbml_model::Model;

use crate::db::AnnotationDb;

/// The annotation produced for one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Component id in the model.
    pub component_id: String,
    /// Resolved database accession (MIRIAM-style), if the lookup hit.
    pub accession: Option<String>,
}

/// Annotate every component of a model against the database. Returns the
/// annotation map (component id → annotation) and the number of resolved
/// lookups.
pub fn annotate(model: &Model, db: &AnnotationDb) -> (HashMap<String, Annotation>, usize) {
    let mut out = HashMap::new();
    let mut resolved = 0usize;
    let mut tag = |id: &str, name: Option<&str>| {
        // The tool tries the display name first, then the id.
        let hit = name
            .and_then(|n| db.lookup(n))
            .or_else(|| db.lookup(id))
            .map(|e| e.accession.clone());
        if hit.is_some() {
            resolved += 1;
        }
        out.insert(
            id.to_owned(),
            Annotation { component_id: id.to_owned(), accession: hit },
        );
    };
    for s in &model.species {
        tag(&s.id, s.name.as_deref());
    }
    for c in &model.compartments {
        tag(&c.id, c.name.as_deref());
    }
    for p in &model.parameters {
        tag(&p.id, p.name.as_deref());
    }
    for r in &model.reactions {
        tag(&r.id, r.name.as_deref());
    }
    for f in &model.function_definitions {
        tag(&f.id, f.name.as_deref());
    }
    for u in &model.unit_definitions {
        tag(&u.id, u.name.as_deref());
    }
    (out, resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    #[test]
    fn annotates_all_components() {
        let db = AnnotationDb::load();
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 1.0)
            .species("unknown_species_xyz", 0.0)
            .parameter("k1", 0.5)
            .reaction("r1", &["glc"], &[], "k1*glc")
            .build();
        let (annotations, resolved) = annotate(&m, &db);
        assert_eq!(annotations.len(), 5);
        assert!(annotations["glc"].accession.is_some(), "glucose resolves");
        assert!(annotations["unknown_species_xyz"].accession.is_none());
        assert!(resolved >= 1);
    }

    #[test]
    fn empty_model_annotates_empty() {
        let db = AnnotationDb::load();
        let (annotations, resolved) = annotate(&Model::new("m"), &db);
        assert!(annotations.is_empty());
        assert_eq!(resolved, 0);
    }
}
