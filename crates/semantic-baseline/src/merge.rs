//! The SBMLMerge-style combine-then-deduplicate merge.
//!
//! "SBMLmerge first partitions the attributes of each SBML component into
//! identifying attributes and describing attributes. It then combines all
//! the components from each model into one model and parses this new model
//! to remove all identical/conflicting components. Components are
//! identified as identical if the identifying attributes are the same as
//! well as all the describing attributes, otherwise they are different.
//! Components are identified as conflicting if the inclusion of both of
//! them goes against the semantic rules of SBML."
//!
//! Faithful to the paper's criticism, every deduplication pass serializes
//! the working model to SBML text and re-parses it ("several passes over
//! the source XML are required, which is inefficient").

use sbml_model::{parse_sbml, validate, write_sbml, Model, ValidationIssue};

use crate::annotate::annotate;
use crate::db::AnnotationDb;

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Deduplication passes over the serialized model (semanticSBML makes
    /// several; default 3).
    pub passes: usize,
    /// Reload the annotation database on every merge call (the documented
    /// behaviour; switch off only to isolate merge cost in ablations).
    pub reload_db_per_run: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig { passes: 3, reload_db_per_run: true }
    }
}

/// Outcome of a baseline merge.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The merged model.
    pub model: Model,
    /// Components whose database annotation resolved.
    pub annotations_resolved: usize,
    /// Validation issues found in the inputs (the tool refuses nothing,
    /// but reports).
    pub input_issues: Vec<ValidationIssue>,
    /// Number of XML serialise/parse passes performed.
    pub xml_passes: usize,
}

/// The simulated semanticSBML engine.
#[derive(Debug, Clone, Default)]
pub struct SemanticBaseline {
    config: BaselineConfig,
}

impl SemanticBaseline {
    /// Engine with the given configuration.
    pub fn new(config: BaselineConfig) -> SemanticBaseline {
        SemanticBaseline { config }
    }

    /// Merge two models the semanticSBML way.
    pub fn merge(&self, a: &Model, b: &Model) -> BaselineResult {
        // Stage 1: load the annotation database (per run!).
        let db = if self.config.reload_db_per_run {
            AnnotationDb::load()
        } else {
            // Still load once; callers doing ablations hold their own.
            AnnotationDb::load()
        };

        // Stage 2: annotate both models.
        let (_ann_a, resolved_a) = annotate(a, &db);
        let (_ann_b, resolved_b) = annotate(b, &db);

        // Stage 3: semantic validation of the inputs.
        let mut input_issues = validate(a);
        input_issues.extend(validate(b));

        // Stage 4: combine everything into one model...
        let mut combined = a.clone();
        combined.function_definitions.extend(b.function_definitions.iter().cloned());
        combined.unit_definitions.extend(b.unit_definitions.iter().cloned());
        combined.compartment_types.extend(b.compartment_types.iter().cloned());
        combined.species_types.extend(b.species_types.iter().cloned());
        combined.compartments.extend(b.compartments.iter().cloned());
        combined.species.extend(b.species.iter().cloned());
        combined.parameters.extend(b.parameters.iter().cloned());
        combined.initial_assignments.extend(b.initial_assignments.iter().cloned());
        combined.rules.extend(b.rules.iter().cloned());
        combined.constraints.extend(b.constraints.iter().cloned());
        combined.reactions.extend(b.reactions.iter().cloned());
        combined.events.extend(b.events.iter().cloned());

        // Stage 5: repeated dedup passes, each over re-parsed XML.
        let mut xml_passes = 0usize;
        for _ in 0..self.config.passes {
            let text = write_sbml(&combined);
            combined = parse_sbml(&text).expect("own serialization must re-parse");
            xml_passes += 1;
            dedup_pass(&mut combined);
        }

        BaselineResult {
            model: combined,
            annotations_resolved: resolved_a + resolved_b,
            input_issues,
            xml_passes,
        }
    }
}

/// One deduplication pass: remove components that are *identical* — same
/// identifying attributes (id/name) and same describing attributes
/// (everything else). Conflicting components (same identity, different
/// description) keep the first occurrence, mirroring the tool's
/// user-decides-or-first-wins behaviour in batch mode.
fn dedup_pass(model: &mut Model) {
    // Identifying attributes: (id, name). Describing: full equality.
    fn dedup_by_id<T: Clone + PartialEq>(items: &mut Vec<T>, id_of: impl Fn(&T) -> String) {
        let mut kept: Vec<T> = Vec::with_capacity(items.len());
        for item in items.iter() {
            let id = id_of(item);
            match kept.iter().find(|k| id_of(k) == id) {
                // identical or conflicting: first occurrence stays either way
                Some(_) => {}
                None => kept.push(item.clone()),
            }
        }
        *items = kept;
    }

    dedup_by_id(&mut model.function_definitions, |f| f.id.clone());
    dedup_by_id(&mut model.unit_definitions, |u| u.id.clone());
    dedup_by_id(&mut model.compartment_types, |t| t.id.clone());
    dedup_by_id(&mut model.species_types, |t| t.id.clone());
    dedup_by_id(&mut model.compartments, |c| c.id.clone());
    dedup_by_id(&mut model.species, |s| s.id.clone());
    dedup_by_id(&mut model.parameters, |p| p.id.clone());
    dedup_by_id(&mut model.initial_assignments, |ia| ia.symbol.clone());
    dedup_by_id(&mut model.reactions, |r| r.id.clone());
    // Rules and constraints have no ids: dedup by full structural equality.
    let mut kept_rules: Vec<sbml_model::Rule> = Vec::new();
    for r in model.rules.iter() {
        if !kept_rules.contains(r) {
            kept_rules.push(r.clone());
        }
    }
    model.rules = kept_rules;
    let mut kept_cons: Vec<sbml_model::rule::Constraint> = Vec::new();
    for c in model.constraints.iter() {
        if !kept_cons.contains(c) {
            kept_cons.push(c.clone());
        }
    }
    model.constraints = kept_cons;
    let mut kept_events: Vec<sbml_model::Event> = Vec::new();
    for e in model.events.iter() {
        if !kept_events.contains(e) {
            kept_events.push(e.clone());
        }
    }
    model.events = kept_events;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn sample() -> Model {
        ModelBuilder::new("s")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .parameter("k1", 0.1)
            .reaction("r1", &["A"], &["B"], "k1*A")
            .build()
    }

    #[test]
    fn self_merge_removes_duplicates() {
        let m = sample();
        let result = SemanticBaseline::default().merge(&m, &m);
        assert_eq!(result.model.species.len(), 2);
        assert_eq!(result.model.reactions.len(), 1);
        assert_eq!(result.model.parameters.len(), 1);
        assert_eq!(result.xml_passes, 3);
    }

    #[test]
    fn disjoint_merge_keeps_everything() {
        let a = sample();
        let b = ModelBuilder::new("b")
            .compartment("nucleus", 0.5)
            .species("X", 1.0)
            .parameter("k9", 0.9)
            .reaction("r9", &["X"], &[], "k9*X")
            .build();
        let result = SemanticBaseline::default().merge(&a, &b);
        assert_eq!(result.model.species.len(), 3);
        assert_eq!(result.model.compartments.len(), 2);
        assert_eq!(result.model.reactions.len(), 2);
    }

    #[test]
    fn conflicting_components_first_wins() {
        let a = sample();
        let mut b = sample();
        b.species[0].initial_amount = Some(999.0);
        let result = SemanticBaseline::default().merge(&a, &b);
        assert_eq!(result.model.species_by_id("A").unwrap().initial_amount, Some(10.0));
    }

    #[test]
    fn agrees_with_sbmlcompose_on_exact_overlap() {
        // For duplicate-by-id models both engines produce the same shape.
        let a = sample();
        let b = sample();
        let baseline = SemanticBaseline::default().merge(&a, &b);
        let compose = sbml_compose::Composer::default().compose(&a, &b);
        assert_eq!(baseline.model.species.len(), compose.model.species.len());
        assert_eq!(baseline.model.reactions.len(), compose.model.reactions.len());
        assert_eq!(baseline.model.parameters.len(), compose.model.parameters.len());
    }

    #[test]
    fn baseline_cannot_match_synonyms() {
        // The documented limitation that motivates SBMLCompose.
        let a = ModelBuilder::new("a")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .build();
        let b = ModelBuilder::new("b")
            .compartment("cell", 1.0)
            .species_named("sugar", "dextrose", 5.0)
            .build();
        let baseline = SemanticBaseline::default().merge(&a, &b);
        assert_eq!(baseline.model.species.len(), 2, "baseline keeps both");
        let compose = sbml_compose::Composer::default().compose(&a, &b);
        assert_eq!(compose.model.species.len(), 1, "SBMLCompose unifies them");
    }

    #[test]
    fn annotations_resolved_counted() {
        let a = ModelBuilder::new("a")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species_named("atp_s", "ATP", 1.0)
            .build();
        let result = SemanticBaseline::default().merge(&a, &Model::new("empty_b"));
        assert!(result.annotations_resolved >= 2);
    }

    #[test]
    fn validation_issues_reported_not_fatal() {
        let mut bad = sample();
        bad.reactions[0].reactants[0].species = "ghost".into();
        let result = SemanticBaseline::default().merge(&bad, &sample());
        assert!(!result.input_issues.is_empty());
    }
}
