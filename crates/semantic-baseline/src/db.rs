//! The synthetic 54,929-entry annotation database.
//!
//! The paper: "a local database is loaded consisting of 54,929 entries from
//! Gene Ontology \[1\], KEGG Compound \[14\], ChEBI \[8\], PubChem, 3DMET and
//! CAS". We reproduce the six sources with their characteristic identifier
//! shapes, generated deterministically so every run builds the identical
//! database — and, crucially for Figure 9, builds it *from scratch on every
//! merge call*, exactly as the paper observed of semanticSBML.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total entry count, matching the paper's figure.
pub const DB_ENTRIES: usize = 54_929;

/// The six databases semanticSBML loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Gene Ontology (`GO:0001234`).
    GeneOntology,
    /// KEGG Compound (`C00031`).
    KeggCompound,
    /// ChEBI (`CHEBI:17234`).
    Chebi,
    /// PubChem (`CID5793`).
    PubChem,
    /// 3DMET (`B01234`).
    ThreeDMet,
    /// CAS registry (`50-99-7`).
    Cas,
}

impl Source {
    fn format_id(self, n: u32) -> String {
        match self {
            Source::GeneOntology => format!("GO:{n:07}"),
            Source::KeggCompound => format!("C{n:05}"),
            Source::Chebi => format!("CHEBI:{n}"),
            Source::PubChem => format!("CID{n}"),
            Source::ThreeDMet => format!("B{n:05}"),
            Source::Cas => format!("{}-{:02}-{}", n / 1000 + 50, n % 100, n % 10),
        }
    }
}

/// One database entry: a biological term and its database identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbEntry {
    /// Source database.
    pub source: Source,
    /// The identifier within the source.
    pub accession: String,
}

/// The in-memory annotation database.
#[derive(Debug)]
pub struct AnnotationDb {
    /// term (lower-cased) → entry. Includes generated filler terms plus the
    /// common biochemical vocabulary real models use.
    entries: HashMap<String, DbEntry>,
}

/// Vocabulary that maps real model species names onto database hits, so
/// annotation succeeds for realistic models (the 17-model comparison corpus
/// uses these names).
const COMMON_TERMS: &[&str] = &[
    "glucose", "dextrose", "atp", "adp", "amp", "nad", "nadh", "pyruvate", "lactate",
    "citrate", "oxygen", "water", "phosphate", "fructose", "sucrose", "glycogen",
    "insulin", "glucagon", "calcium", "sodium", "potassium", "acetyl-coa", "co2",
    "g6p", "f6p", "pep", "g3p", "enzyme", "substrate", "product", "inhibitor",
];

impl AnnotationDb {
    /// Build the full database. Deterministic (fixed seed), and rebuilt on
    /// every call by design — this is the baseline's per-run start-up cost.
    pub fn load() -> AnnotationDb {
        let mut rng = StdRng::seed_from_u64(54_929);
        let sources = [
            (Source::GeneOntology, 0.35),
            (Source::KeggCompound, 0.15),
            (Source::Chebi, 0.20),
            (Source::PubChem, 0.18),
            (Source::ThreeDMet, 0.05),
            (Source::Cas, 0.07),
        ];
        let mut entries = HashMap::with_capacity(DB_ENTRIES);
        // Real vocabulary first so lookups of model species succeed.
        for (i, term) in COMMON_TERMS.iter().enumerate() {
            entries.insert(
                (*term).to_owned(),
                DbEntry { source: Source::Chebi, accession: Source::Chebi.format_id(i as u32 + 10_000) },
            );
        }
        // Filler terms up to the documented size.
        let mut n = entries.len();
        let mut counter = 0u32;
        while n < DB_ENTRIES {
            let roll: f64 = rng.gen();
            let mut acc = 0.0;
            let mut source = Source::GeneOntology;
            for (s, w) in sources {
                acc += w;
                if roll < acc {
                    source = s;
                    break;
                }
            }
            counter += 1;
            let term = format!("term_{counter:06}");
            let id = rng.gen_range(1..9_999_999);
            entries.insert(term, DbEntry { source, accession: source.format_id(id) });
            n = entries.len();
        }
        AnnotationDb { entries }
    }

    /// Number of entries (always [`DB_ENTRIES`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (never, after [`AnnotationDb::load`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a term (case-insensitive).
    pub fn lookup(&self, term: &str) -> Option<&DbEntry> {
        self.entries.get(&term.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_documented_entry_count() {
        let db = AnnotationDb::load();
        assert_eq!(db.len(), DB_ENTRIES);
        assert!(!db.is_empty());
    }

    #[test]
    fn deterministic_across_loads() {
        let a = AnnotationDb::load();
        let b = AnnotationDb::load();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.lookup("term_000100"), b.lookup("term_000100"));
    }

    #[test]
    fn common_vocabulary_resolves() {
        let db = AnnotationDb::load();
        assert!(db.lookup("glucose").is_some());
        assert!(db.lookup("Glucose").is_some(), "case-insensitive");
        assert!(db.lookup("ATP").is_some());
        assert!(db.lookup("absolutely_not_a_term").is_none());
    }

    #[test]
    fn id_formats() {
        assert_eq!(Source::GeneOntology.format_id(1234), "GO:0001234");
        assert_eq!(Source::KeggCompound.format_id(31), "C00031");
        assert_eq!(Source::Chebi.format_id(17234), "CHEBI:17234");
        assert_eq!(Source::PubChem.format_id(5793), "CID5793");
    }
}
