//! A faithful *behavioural* reimplementation of the semanticSBML /
//! SBMLMerge baseline the paper benchmarks against (Figure 9).
//!
//! The original is a closed Python tool; what the paper documents — and
//! what this crate reproduces so the comparison is honest — is its *cost
//! structure*:
//!
//! 1. **per-run database load**: "for each run of semanticSBML, a local
//!    database is loaded consisting of 54,929 entries from Gene Ontology,
//!    KEGG Compound, ChEBI, PubChem, 3DMET and CAS" ([`AnnotationDb`],
//!    rebuilt on every [`SemanticBaseline::merge`] call);
//! 2. **annotation pass**: every component is looked up in that database
//!    and tagged with its database identifier;
//! 3. **semantic validation pass** over both inputs;
//! 4. **combine-then-deduplicate merge**: all components of both models are
//!    concatenated, then repeatedly scanned to remove identical components
//!    and resolve conflicts, with the model *serialized to SBML text and
//!    re-parsed between passes* — the "several passes over the source XML
//!    ... which is inefficient" the paper criticises;
//! 5. components are compared by partitioning attributes into
//!    **identifying** (id, name) and **describing** (everything else):
//!    identical iff both partitions agree; conflicting iff the identifying
//!    attributes agree but describing ones differ.
//!
//! On the merge *outcome* the two engines agree for models within the
//! baseline's reach (exact-duplicate components); SBMLCompose additionally
//! matches synonyms/commutative math, which the baseline cannot do
//! automatically (the paper's motivation).

pub mod annotate;
pub mod db;
pub mod merge;

pub use annotate::Annotation;
pub use db::AnnotationDb;
pub use merge::{BaselineConfig, BaselineResult, SemanticBaseline};
