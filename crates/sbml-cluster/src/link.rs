//! One coordinator→shard connection: lazy connect, bounded retry with
//! linear backoff, request deadlines via [`Budget`], and reconnection
//! after any I/O fault.
//!
//! A [`ShardLink`] owns at most one [`TcpStream`] behind a [`Mutex`] —
//! frames on one link are serialized (the daemon's round-robin
//! multiplexing answers them in order), while the coordinator's scatter
//! runs different links concurrently. Every error string a link
//! produces is prefixed `shard <i> (<addr>):` so failures surface named
//! all the way up the coordinator's failure ladder.

use std::io;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use sbml_compose::guard::Site;
use sbml_compose::Budget;
use sbml_serve::protocol::{read_frame, write_frame, Request, Response};

/// How hard a [`ShardLink`] tries before declaring a shard dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (connect + roundtrip counts as one).
    pub attempts: u32,
    /// Base backoff between attempts; attempt `k` waits `k * backoff`.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 5, backoff_ms: 20 }
    }
}

/// A persistent, self-healing connection to one shard daemon.
#[derive(Debug)]
pub struct ShardLink {
    /// The shard index this link serves (`slot % shards == index`).
    pub index: usize,
    /// The daemon's address, as given to the coordinator.
    pub addr: String,
    retry: RetryPolicy,
    deadline_ms: Option<u64>,
    stream: Mutex<Option<TcpStream>>,
}

impl ShardLink {
    /// A link to shard `index` at `addr`. Nothing connects until the
    /// first [`ShardLink::request`].
    pub fn new(
        index: usize,
        addr: String,
        retry: RetryPolicy,
        deadline_ms: Option<u64>,
    ) -> ShardLink {
        ShardLink { index, addr, retry, deadline_ms, stream: Mutex::new(None) }
    }

    /// Send one request and decode the response, retrying (with a fresh
    /// connection) on any I/O fault up to the policy's attempts, all
    /// under the request deadline. The error names this shard.
    pub fn request(&self, request: &Request) -> Result<Response, String> {
        let mut budget = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline_ms(ms);
        }
        let meter = budget.start();
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let mut last = "no attempts configured".to_owned();
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(
                    self.retry.backoff_ms.saturating_mul(u64::from(attempt)),
                ));
            }
            if let Err(e) = meter.check_deadline(Site::Shard(self.index)) {
                last = e.to_string();
                break;
            }
            if guard.is_none() {
                match TcpStream::connect(&self.addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        if let Some(ms) = self.deadline_ms {
                            let timeout = Some(Duration::from_millis(ms.max(1)));
                            let _ = stream.set_read_timeout(timeout);
                            let _ = stream.set_write_timeout(timeout);
                        }
                        *guard = Some(stream);
                    }
                    Err(e) => {
                        last = format!("connect: {e}");
                        continue;
                    }
                }
            }
            let Some(stream) = guard.as_mut() else { continue };
            match roundtrip(stream, request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // The stream may be desynced mid-frame — never
                    // reuse it after a fault.
                    last = e.to_string();
                    *guard = None;
                }
            }
        }
        Err(format!("shard {} ({}): {last}", self.index, self.addr))
    }

    /// Drop the cached connection (the next request reconnects).
    pub fn disconnect(&self) {
        *self.stream.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

fn roundtrip(stream: &mut TcpStream, request: &Request) -> io::Result<Response> {
    write_frame(stream, &request.encode())?;
    let payload = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
    })?;
    Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn never_up_shard_fails_named_after_retries() {
        // Bind-then-drop guarantees a port nothing listens on.
        let port = {
            let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
            probe.local_addr().expect("probe addr").port()
        };
        let link = ShardLink::new(
            3,
            format!("127.0.0.1:{port}"),
            RetryPolicy { attempts: 2, backoff_ms: 1 },
            None,
        );
        let err = link.request(&Request::Stats).expect_err("nothing listens");
        assert!(err.starts_with("shard 3 (127.0.0.1:"), "names the shard: {err}");
        assert!(err.contains("connect:"), "carries the I/O detail: {err}");
    }

    #[test]
    fn deadline_bounds_the_retry_loop() {
        let port = {
            let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
            probe.local_addr().expect("probe addr").port()
        };
        // An absurd retry count, a tiny deadline: the budget must win.
        let link = ShardLink::new(
            0,
            format!("127.0.0.1:{port}"),
            RetryPolicy { attempts: 1_000_000, backoff_ms: 5 },
            Some(30),
        );
        let started = std::time::Instant::now();
        let err = link.request(&Request::Stats).expect_err("nothing listens");
        assert!(started.elapsed() < Duration::from_secs(5), "deadline cut the loop");
        assert!(err.starts_with("shard 0 ("), "names the shard: {err}");
    }
}
