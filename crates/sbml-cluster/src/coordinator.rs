//! The scatter-gather coordinator: one process speaking the unmodified
//! client protocol, fronting `n` shard daemons.
//!
//! # Request routing
//!
//! | verb              | plan                                            |
//! |-------------------|-------------------------------------------------|
//! | `MATCH` / `QUERY` | scatter `PMATCH`/`PQUERY` to every shard on the |
//! |                   | worker pool, gather binary partials, merge      |
//! |                   | ([`crate::merge`]), render                      |
//! | `UPSERT`          | allocate global slot `u`, pinned `UPSERT u` to  |
//! |                   | shard `u % n`, then `REMOVE id` on every other  |
//! |                   | shard (a replace may live anywhere)             |
//! | `REMOVE`          | scatter to every shard; hit anywhere is exit 0  |
//! | `COMPOSE`         | runs locally (composition needs no corpus)      |
//! | `STATS`           | coordinator aggregate + every shard's `STATS`   |
//! |                   | body verbatim                                   |
//! | `SHUTDOWN`        | stops the coordinator only — shards are owned   |
//! |                   | by their own lifecycles                         |
//!
//! # Bind handshake
//!
//! [`Coordinator::bind`] sends `STATS` to every shard (retrying under
//! the [`RetryPolicy`]) and refuses to start unless each daemon reports
//! the expected `shard_index`/`shard_total`, all fingerprints,
//! semantics and universes agree, and the options fingerprint matches
//! what the coordinator will cache and compose under. A cluster that
//! cannot answer bit-identically to a single process never comes up.
//!
//! # Consistency
//!
//! Writes are serialized by one coordinator-side lock (slot allocation
//! is monotonic), and each shard applies its share atomically; reads
//! scattered *during* a multi-shard write may observe it partially —
//! the same read-committed-per-shard semantics a client sees when
//! driving shard daemons directly. After any write completes, every
//! subsequent read is bit-identical to the single-process answer.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sbml_compose::{Budget, ComposeOptions, CompositionSession, WorkerPool};
use sbml_model::{parse_sbml, write_sbml, Model};
use sbml_serve::cache::QueryCache;
use sbml_serve::metrics::Metrics;
use sbml_serve::protocol::{ErrKind, Request, Response};
use sbml_serve::server::{cache_key, serve_frames, FrameHandler, FrameOutcome};
use sbml_serve::snapshot::{preset_options, semantics_from_token, semantics_token};
use sbml_serve::wire::{PartialCandidates, PartialMatches};

use crate::link::{RetryPolicy, ShardLink};
use crate::merge::{merge_candidates, merge_matches};

/// Tunables applied at [`Coordinator::bind`] time. The `top_k`,
/// `max_steps` and `deadline_ms` knobs must match the shard daemons'
/// (`sbmlcompose coordinator` and `serve --shard` share the flags) —
/// top-k because the merge cut relies on per-shard cuts under the same
/// order, budgets so a truncation verdict is the same everywhere.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker threads handling client connections (`0` = one per core).
    pub threads: usize,
    /// Result-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Local `COMPOSE` step ceiling (mirrors [`sbml_serve::ServerConfig`]).
    pub max_steps: Option<u64>,
    /// Per-request wall-clock allowance, also bounding every shard call
    /// (connect retries included).
    pub deadline_ms: Option<u64>,
    /// Approximate hits ranked per `MATCH` miss; must equal the shards'.
    pub top_k: usize,
    /// How hard shard calls retry before a shard is declared dead.
    pub retry: RetryPolicy,
    /// The compose options the cluster runs under. `None` derives the
    /// preset from the shards' semantics handshake (the CLI path);
    /// either way the fingerprint must match every shard's.
    pub options: Option<ComposeOptions>,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            threads: 0,
            cache_capacity: 256,
            max_steps: None,
            deadline_ms: None,
            top_k: 10,
            retry: RetryPolicy::default(),
            options: None,
        }
    }
}

/// Cluster-wide mutable counters, serialized by one lock: the write
/// path allocates slots and tracks the live total (which is what turns
/// a shard-local insert rank into the global rank clients see).
struct WriteState {
    universe: u64,
    live: u64,
}

struct CoordState {
    links: Vec<ShardLink>,
    options: ComposeOptions,
    cache: Mutex<QueryCache>,
    metrics: Metrics,
    /// Scatter pool, one lane per shard.
    pool: WorkerPool,
    /// Compose sessions share the same parked threads.
    compose_pool: Arc<WorkerPool>,
    write: Mutex<WriteState>,
    config: CoordinatorConfig,
    threads: usize,
}

/// A bound, not-yet-running coordinator. [`Coordinator::run`] blocks
/// until a `SHUTDOWN` request arrives.
pub struct Coordinator {
    listener: TcpListener,
    state: Arc<CoordState>,
    addr: SocketAddr,
    live_at_bind: u64,
}

fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, message)
}

/// Parse a daemon STATS body into its key → value lines.
fn stats_map(body: &str) -> HashMap<&str, &str> {
    body.lines().filter_map(|line| line.split_once(' ')).collect()
}

impl Coordinator {
    /// Bind the coordinator to `addr` and handshake with every shard
    /// daemon: shard `i` must be listening at `shard_addrs[i]` and
    /// identify as `i/n` over a corpus agreeing with its peers on
    /// fingerprint, semantics and slot universe. An unreachable or
    /// misconfigured shard fails the bind with an error naming it.
    pub fn bind(
        addr: impl ToSocketAddrs,
        shard_addrs: &[String],
        config: CoordinatorConfig,
    ) -> io::Result<Coordinator> {
        if shard_addrs.is_empty() {
            return Err(bad("a cluster needs at least one shard address".into()));
        }
        let n = shard_addrs.len();
        let links: Vec<ShardLink> = shard_addrs
            .iter()
            .enumerate()
            .map(|(i, a)| ShardLink::new(i, a.clone(), config.retry, config.deadline_ms))
            .collect();

        struct Identity {
            universe: u64,
            live: u64,
            fingerprint: String,
            semantics: String,
        }
        let mut first: Option<Identity> = None;
        let mut live_total = 0u64;
        for link in &links {
            let named = |detail: String| {
                bad(format!("shard {} ({}): {detail}", link.index, link.addr))
            };
            let response = link.request(&Request::Stats).map_err(bad)?;
            let body = match response {
                Response::Ok { code: 0, body } => String::from_utf8(body)
                    .map_err(|_| named("STATS body is not UTF-8".into()))?,
                Response::Ok { code, .. } => {
                    return Err(named(format!("STATS answered with code {code}")))
                }
                Response::Err { kind, message } => {
                    return Err(named(format!("ERR {} {message}", kind.token())))
                }
            };
            let map = stats_map(&body);
            let field = |key: &str| -> io::Result<&str> {
                map.get(key).copied().ok_or_else(|| {
                    named(format!("STATS is missing {key} — not a cluster shard daemon?"))
                })
            };
            let numeric = |key: &str| -> io::Result<u64> {
                field(key)?
                    .parse::<u64>()
                    .map_err(|_| named(format!("STATS {key} is not a number")))
            };
            let (shard_index, shard_total) = (numeric("shard_index")?, numeric("shard_total")?);
            if (shard_index, shard_total) != (link.index as u64, n as u64) {
                return Err(named(format!(
                    "daemon identifies as shard {shard_index}/{shard_total}, expected {}/{n}",
                    link.index,
                )));
            }
            let identity = Identity {
                universe: numeric("universe")?,
                live: numeric("live_models")?,
                fingerprint: field("fingerprint")?.to_owned(),
                semantics: field("semantics")?.to_owned(),
            };
            live_total += identity.live;
            match &first {
                None => first = Some(identity),
                Some(reference) => {
                    if identity.fingerprint != reference.fingerprint {
                        return Err(named(format!(
                            "options fingerprint {} disagrees with shard 0's {}",
                            identity.fingerprint, reference.fingerprint,
                        )));
                    }
                    if identity.semantics != reference.semantics {
                        return Err(named(format!(
                            "semantics {} disagrees with shard 0's {}",
                            identity.semantics, reference.semantics,
                        )));
                    }
                    if identity.universe != reference.universe {
                        return Err(named(format!(
                            "slot universe {} disagrees with shard 0's {} — \
                             the shards were not split from one corpus state",
                            identity.universe, reference.universe,
                        )));
                    }
                }
            }
        }
        let Some(reference) = first else {
            return Err(bad("a cluster needs at least one shard address".into()));
        };

        let options = match config.options.clone() {
            Some(options) => options,
            None => {
                let level = semantics_from_token(&reference.semantics).ok_or_else(|| {
                    bad(format!("shard 0 reports unknown semantics {:?}", reference.semantics))
                })?;
                preset_options(level)
            }
        };
        let expected = format!("{:016x}", options.fingerprint().stable_hash());
        if expected != reference.fingerprint {
            return Err(bad(format!(
                "shards run options fingerprint {} but the coordinator would use {expected} \
                 (pass the shards' exact options)",
                reference.fingerprint,
            )));
        }

        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let threads = resolve_threads(config.threads);
        let compose_pool = Arc::new(match options.pool_threads {
            0 => WorkerPool::for_host(),
            t => WorkerPool::new(t),
        });
        let state = Arc::new(CoordState {
            pool: WorkerPool::new(n),
            compose_pool,
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            metrics: Metrics::new(),
            write: Mutex::new(WriteState { universe: reference.universe, live: live_total }),
            links,
            options,
            config,
            threads,
        });
        Ok(Coordinator { listener, state, addr: local, live_at_bind: live_total })
    }

    /// The address the coordinator is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many shard daemons this coordinator fronts.
    pub fn shards(&self) -> usize {
        self.state.links.len()
    }

    /// Cluster-wide live model count observed at bind time.
    pub fn live_models(&self) -> u64 {
        self.live_at_bind
    }

    /// Serve client frames until a `SHUTDOWN` request arrives, on the
    /// same drain-on-shutdown accept loop as the daemon
    /// ([`sbml_serve::serve_frames`]).
    pub fn run(self) -> io::Result<()> {
        let Coordinator { listener, state, .. } = self;
        let threads = state.threads;
        let handler: FrameHandler = Arc::new(move |payload: &[u8]| {
            let started = Instant::now();
            Metrics::bump(&state.metrics.requests);
            let mut shutdown = false;
            let response = match Request::decode(payload) {
                Ok(request) => respond(&state, request, &mut shutdown),
                Err(message) => {
                    Metrics::bump(&state.metrics.errors);
                    encode(Response::Err { kind: ErrKind::Proto, message })
                }
            };
            state.metrics.record_latency_us(started.elapsed().as_micros() as u64);
            FrameOutcome { response, shutdown }
        });
        serve_frames(listener, threads, handler)
    }
}

fn encode(response: Response) -> Arc<[u8]> {
    Arc::from(response.encode().into_boxed_slice())
}

/// Run `call` against every link concurrently (one pool lane per
/// shard); results are positional with `links`.
fn scatter<T, F>(state: &CoordState, call: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(&ShardLink) -> Result<T, String> + Sync,
{
    let links = &state.links;
    let results: Vec<Mutex<Option<Result<T, String>>>> =
        links.iter().map(|_| Mutex::new(None)).collect();
    let call = &call;
    let fill = |i: usize| {
        let outcome = call(&links[i]);
        if let Ok(mut slot) = results[i].lock() {
            *slot = Some(outcome);
        }
    };
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (1..links.len())
        .map(|i| Box::new(move || fill(i)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    state.pool.run_scoped(|| fill(0), tasks);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| Err("scatter task did not run".into()))
        })
        .collect()
}

/// Ask one shard and decode its binary partial body; `decode` is the
/// wire type's parser. Protocol-level errors are strings naming the
/// shard, like every [`ShardLink`] error.
fn partial<T>(
    link: &ShardLink,
    request: &Request,
    decode: impl Fn(&[u8]) -> Result<T, String>,
) -> Result<T, String> {
    match link.request(request)? {
        Response::Ok { code: _, body } => decode(&body)
            .map_err(|e| format!("shard {} ({}): {e}", link.index, link.addr)),
        Response::Err { kind, message } => Err(format!(
            "shard {} ({}): ERR {} {message}",
            link.index,
            link.addr,
            kind.token(),
        )),
    }
}

fn parse_query_model(xml: &str, metrics: &Metrics) -> Result<Model, Arc<[u8]>> {
    parse_sbml(xml).map_err(|e| {
        Metrics::bump(&metrics.errors);
        encode(Response::Err { kind: ErrKind::Parse, message: e.to_string() })
    })
}

fn cache_get(state: &CoordState, key: &str) -> Option<Arc<[u8]>> {
    let mut cache = state.cache.lock().ok()?;
    let hit = cache.get(key);
    if hit.is_some() {
        Metrics::bump(&state.metrics.cache_hits);
    }
    hit
}

fn cache_put(state: &CoordState, key: String, response: &Arc<[u8]>) {
    if let Ok(mut cache) = state.cache.lock() {
        cache.put(key, Arc::clone(response));
    }
}

fn invalidate_cache(state: &CoordState) {
    if let Ok(mut cache) = state.cache.lock() {
        cache.clear();
    }
}

/// Gather a scatter's results, splitting survivors from dead shards.
fn split_gather<T>(results: Vec<Result<T, String>>) -> (Vec<T>, Vec<String>) {
    let mut parts = Vec::with_capacity(results.len());
    let mut dead = Vec::new();
    for result in results {
        match result {
            Ok(part) => parts.push(part),
            Err(detail) => dead.push(detail),
        }
    }
    (parts, dead)
}

/// Render a degraded read: the merged answer over the surviving shards,
/// prefixed with one `dead shard …` line per missing shard, under the
/// partial exit code. Never cached.
fn degrade(dead: &[String], text: &str) -> Response {
    let mut body = String::new();
    for detail in dead {
        body.push_str("dead ");
        body.push_str(detail);
        body.push('\n');
    }
    body.push_str(text);
    Response::Ok { code: 4, body: body.into_bytes() }
}

fn respond(state: &CoordState, request: Request, shutdown: &mut bool) -> Arc<[u8]> {
    match request {
        Request::Match { query_xml } => {
            Metrics::bump(&state.metrics.match_requests);
            let query = match parse_query_model(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("MATCH", &query, &state.options);
            if let Some(hit) = cache_get(state, &key) {
                return hit;
            }
            Metrics::bump(&state.metrics.cache_misses);
            let request = Request::PartialMatch { query_xml };
            let results =
                scatter(state, |link| partial(link, &request, PartialMatches::decode));
            let (parts, dead) = split_gather(results);
            if parts.is_empty() {
                Metrics::bump(&state.metrics.errors);
                let message = dead.into_iter().next().unwrap_or_else(|| "no shards".into());
                return encode(Response::Err { kind: ErrKind::Budget, message });
            }
            let (code, text) = merge_matches(&parts, state.config.top_k);
            if !dead.is_empty() {
                Metrics::bump(&state.metrics.budget_cuts);
                return encode(degrade(&dead, &text));
            }
            let response = encode(Response::Ok { code, body: text.into_bytes() });
            cache_put(state, key, &response);
            response
        }
        Request::Query { query_xml } => {
            Metrics::bump(&state.metrics.query_requests);
            let query = match parse_query_model(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("QUERY", &query, &state.options);
            if let Some(hit) = cache_get(state, &key) {
                return hit;
            }
            Metrics::bump(&state.metrics.cache_misses);
            let request = Request::PartialQuery { query_xml };
            let results =
                scatter(state, |link| partial(link, &request, PartialCandidates::decode));
            let (parts, dead) = split_gather(results);
            if parts.is_empty() {
                Metrics::bump(&state.metrics.errors);
                let message = dead.into_iter().next().unwrap_or_else(|| "no shards".into());
                return encode(Response::Err { kind: ErrKind::Budget, message });
            }
            let (code, text) = merge_candidates(&parts);
            if !dead.is_empty() {
                Metrics::bump(&state.metrics.budget_cuts);
                return encode(degrade(&dead, &text));
            }
            let response = encode(Response::Ok { code, body: text.into_bytes() });
            cache_put(state, key, &response);
            response
        }
        Request::Compose { models_xml } => {
            Metrics::bump(&state.metrics.compose_requests);
            if models_xml.len() < 2 {
                Metrics::bump(&state.metrics.errors);
                return encode(Response::Err {
                    kind: ErrKind::Proto,
                    message: "COMPOSE needs at least two documents".into(),
                });
            }
            let mut models = Vec::with_capacity(models_xml.len());
            for xml in &models_xml {
                match parse_query_model(xml, &state.metrics) {
                    Ok(model) => models.push(model),
                    Err(response) => return response,
                }
            }
            let mut budget = Budget::unlimited();
            if let Some(steps) = state.config.max_steps {
                budget = budget.with_max_steps(steps);
            }
            if let Some(ms) = state.config.deadline_ms {
                budget = budget.with_deadline_ms(ms);
            }
            let meter = budget.start();
            let mut session = CompositionSession::new(&state.options);
            session.set_pool(Arc::clone(&state.compose_pool));
            for model in &models {
                if let Err(error) = session.push_guarded(model, Some(&meter)) {
                    Metrics::bump(&state.metrics.budget_cuts);
                    return encode(Response::Err {
                        kind: ErrKind::Budget,
                        message: error.to_string(),
                    });
                }
            }
            let result = session.finish();
            encode(Response::Ok { code: 0, body: write_sbml(&result.model).into_bytes() })
        }
        Request::Upsert { model_xml, slot } => {
            Metrics::bump(&state.metrics.upsert_requests);
            if slot.is_some() {
                Metrics::bump(&state.metrics.errors);
                return encode(Response::Err {
                    kind: ErrKind::Proto,
                    message: "the coordinator allocates slots; UPSERT takes no slot here"
                        .into(),
                });
            }
            let model = match parse_query_model(&model_xml, &state.metrics) {
                Ok(model) => model,
                Err(response) => return response,
            };
            let mut write = state.write.lock().unwrap_or_else(|e| e.into_inner());
            let global = write.universe;
            let target = (global % state.links.len() as u64) as usize;
            // Insert first: the target daemon validates and replaces any
            // same-id model it owns atomically, so a rejected or dead
            // insert leaves the cluster untouched.
            let inserted = match state.links[target].request(&Request::Upsert {
                model_xml,
                slot: Some(global),
            }) {
                Ok(Response::Ok { code: 0, body }) => body,
                Ok(Response::Ok { code, .. }) => {
                    Metrics::bump(&state.metrics.errors);
                    return encode(Response::Err {
                        kind: ErrKind::Proto,
                        message: format!(
                            "shard {target} ({}): UPSERT answered with code {code}",
                            state.links[target].addr,
                        ),
                    });
                }
                Ok(Response::Err { kind, message }) => {
                    Metrics::bump(&state.metrics.errors);
                    return encode(Response::Err {
                        kind,
                        message: format!(
                            "shard {target} ({}): {message}",
                            state.links[target].addr,
                        ),
                    });
                }
                Err(message) => {
                    Metrics::bump(&state.metrics.errors);
                    return encode(Response::Err { kind: ErrKind::Budget, message });
                }
            };
            let mut replaced = inserted.starts_with(b"replaced");
            // Evict the id from every other shard — a replace may have
            // lived anywhere. A dead shard here fails the write loudly:
            // it holds a model the cluster believes is gone.
            let id = model.id.clone();
            let results = scatter(state, |link| {
                if link.index == target {
                    return Ok(1u8);
                }
                match link.request(&Request::Remove { model_id: id.clone() })? {
                    Response::Ok { code, .. } => Ok(code),
                    Response::Err { kind, message } => Err(format!(
                        "shard {} ({}): ERR {} {message}",
                        link.index,
                        link.addr,
                        kind.token(),
                    )),
                }
            });
            let mut evicted = 0u64;
            for result in results {
                match result {
                    Ok(0) => evicted += 1,
                    Ok(_) => {}
                    Err(message) => {
                        Metrics::bump(&state.metrics.errors);
                        return encode(Response::Err { kind: ErrKind::Budget, message });
                    }
                }
            }
            replaced |= evicted > 0;
            write.universe = global + 1;
            write.live = write.live + 1 - evicted - u64::from(inserted.starts_with(b"replaced"));
            let rank = write.live - 1;
            drop(write);
            invalidate_cache(state);
            let verb = if replaced { "replaced" } else { "inserted" };
            encode(Response::Ok {
                code: 0,
                body: format!("{verb} {} model {rank}\n", model.id).into_bytes(),
            })
        }
        Request::Remove { model_id } => {
            Metrics::bump(&state.metrics.remove_requests);
            let mut write = state.write.lock().unwrap_or_else(|e| e.into_inner());
            let results = scatter(state, |link| {
                match link.request(&Request::Remove { model_id: model_id.clone() })? {
                    Response::Ok { code, .. } => Ok(code),
                    Response::Err { kind, message } => Err(format!(
                        "shard {} ({}): ERR {} {message}",
                        link.index,
                        link.addr,
                        kind.token(),
                    )),
                }
            });
            let mut hits = 0u64;
            for result in results {
                match result {
                    Ok(0) => hits += 1,
                    Ok(_) => {}
                    Err(message) => {
                        Metrics::bump(&state.metrics.errors);
                        return encode(Response::Err { kind: ErrKind::Budget, message });
                    }
                }
            }
            if hits == 0 {
                return encode(Response::Ok {
                    code: 1,
                    body: format!("no such model {model_id}\n").into_bytes(),
                });
            }
            write.live -= hits.min(write.live);
            drop(write);
            invalidate_cache(state);
            encode(Response::Ok {
                code: 0,
                body: format!("removed {model_id}\n").into_bytes(),
            })
        }
        Request::PartialMatch { .. } | Request::PartialQuery { .. } => {
            Metrics::bump(&state.metrics.errors);
            encode(Response::Err {
                kind: ErrKind::Proto,
                message: "PMATCH/PQUERY are shard-internal verbs; use MATCH/QUERY".into(),
            })
        }
        Request::Stats => {
            Metrics::bump(&state.metrics.stats_requests);
            let cache_entries = state.cache.lock().map(|c| c.len()).unwrap_or(0);
            let (universe, live) = {
                let write = state.write.lock().unwrap_or_else(|e| e.into_inner());
                (write.universe, write.live)
            };
            let mut body =
                state.metrics.report().render(cache_entries, live as usize, state.threads);
            body.push_str(&format!(
                "coordinator_shards {}\nuniverse {universe}\nfingerprint {:016x}\nsemantics {}\n",
                state.links.len(),
                state.options.fingerprint().stable_hash(),
                semantics_token(state.options.semantics),
            ));
            // Observability must survive dead shards: every shard's own
            // STATS body verbatim, or the failure in its place.
            let results = scatter(state, |link| link.request(&Request::Stats));
            for (link, result) in state.links.iter().zip(results) {
                match result {
                    Ok(Response::Ok { code: _, body: shard_body }) => {
                        body.push_str(&format!("-- shard {} ({}) --\n", link.index, link.addr));
                        body.push_str(&String::from_utf8_lossy(&shard_body));
                    }
                    Ok(Response::Err { kind, message }) => {
                        body.push_str(&format!(
                            "-- shard {} ({}) dead: ERR {} {message} --\n",
                            link.index,
                            link.addr,
                            kind.token(),
                        ));
                    }
                    Err(detail) => {
                        body.push_str(&format!("-- dead {detail} --\n"));
                    }
                }
            }
            encode(Response::Ok { code: 0, body: body.into_bytes() })
        }
        Request::Shutdown => {
            *shutdown = true;
            encode(Response::Ok { code: 0, body: b"shutting down\n".to_vec() })
        }
    }
}
