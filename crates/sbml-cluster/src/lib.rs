//! **sbml-cluster** — the corpus as a *fleet*: multi-process shard
//! daemons behind a scatter-gather coordinator.
//!
//! One `sbmlcompose serve` process holds the whole index. At the 10k+
//! model scale the corpus-scale tiers exercise, that is a single
//! address space, a single page cache, and a single machine's cores.
//! This crate splits the daemon into `n` **shard processes** plus one
//! **coordinator** that speaks the unmodified client protocol, with one
//! invariant as the north star:
//!
//! > Every answer through the coordinator is **bit-identical** to the
//! > answer a single-process daemon over the same live corpus would
//! > give, at every shard count.
//!
//! # Topology
//!
//! ```text
//!                        sbmlcompose client
//!                               │ frames (MATCH/QUERY/UPSERT/…)
//!                               ▼
//!                    ┌─────────────────────┐
//!                    │     coordinator     │  sbmlcompose coordinator
//!                    │  route / scatter /  │
//!                    │   gather / merge    │
//!                    └──┬───────┬───────┬──┘
//!              PMATCH / │       │       │  UPSERT slot=s → shard s%n
//!              PQUERY   ▼       ▼       ▼
//!                 ┌────────┐┌────────┐┌────────┐
//!                 │shard 0 ││shard 1 ││shard 2 │  sbmlcompose serve
//!                 │slots ≡0││slots ≡1││slots ≡2│      --shard i/n
//!                 └────────┘└────────┘└────────┘
//! ```
//!
//! Ownership is the same deterministic rule the in-process
//! [`sbml_match::MatchIndex`] shards by: global slot `s` lives on shard
//! `s % n`. Each shard daemon runs an ordinary single-shard index over
//! *its* residue class, remapped to a dense local slot space
//! ([`carve`], or [`sbml_serve::Snapshot::load_shard`] from disk), plus
//! a positional table mapping local ranks back to global slots. Because
//! slots are allocated monotonically and each residue class preserves
//! order, local rank order *is* global slot order — which is what makes
//! merging a sort, not a negotiation.
//!
//! # Merge semantics ([`merge`])
//!
//! Shards answer the cluster-internal `PMATCH`/`PQUERY` verbs with
//! binary [`sbml_serve::wire`] bodies keyed by global slot. The
//! coordinator re-sorts gathered entries — slot-ascending for exact
//! hits, candidates and partial verdicts; `(score desc, slot asc)` with
//! a top-k cut for approximate hits, discarding every approximate list
//! as soon as any shard reports an exact hit — exactly reproducing the
//! single-process gather order, then renders through the same report
//! grammar as [`sbml_serve::format_matches`].
//!
//! # Failure ladder ([`coordinator`])
//!
//! * Reads (`MATCH`/`QUERY`) **degrade**: a dead shard's share is
//!   dropped, the answer is marked partial (`OK 4`, the CLI partial
//!   exit code) and prefixed with `dead shard <i> (<addr>): <detail>`
//!   lines naming every missing shard. Partial answers are never
//!   cached.
//! * Writes (`UPSERT`/`REMOVE`) **fail loudly** (`ERR budget`, naming
//!   the shard): a write that silently skipped a shard would fork the
//!   cluster's idea of the corpus.
//! * All shards dead, or a dead shard at bind handshake: structured
//!   `ERR` naming the first unreachable shard.
//!
//! Every shard call retries with backoff under the coordinator's
//! [`RetryPolicy`] and rides the request deadline via
//! [`sbml_compose::Budget`] ([`link`]).

pub mod carve;
pub mod coordinator;
pub mod link;
pub mod merge;

pub use carve::{carve, carve_all};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use link::{RetryPolicy, ShardLink};
pub use merge::{merge_candidates, merge_matches};
