//! Gathering per-shard partial answers into the single-process answer.
//!
//! The contract: [`merge_matches`] over the shards' `PMATCH` bodies
//! renders **byte-identical** text (and the same exit code) to
//! [`sbml_serve::format_matches`] over the single-process
//! [`sbml_match::MatchIndex`] result for the same live corpus, labels
//! and ids both being model ids. The ordering argument:
//!
//! * Global slots totally order the cluster corpus, and the
//!   single-process gather sorts exact hits, candidates, truncated and
//!   failed lists by slot before remapping to ranks — so re-sorting the
//!   union of shard lists by slot reproduces it exactly.
//! * Approximate ranking orders by `(score desc, slot asc)` and cuts to
//!   top-k. Each shard ships its local top-k under the same total
//!   order, and the global top-k is a subset of the union of per-shard
//!   top-k lists, so merge-sort-then-truncate is exact. The
//!   single-process index ranks only when *no* exact hit exists
//!   globally; a shard knows only its own corpus, so shards rank on
//!   local misses and the merge discards every approximate list once
//!   any shard reports an exact hit.
//!
//! The renderers mirror [`sbml_serve::format_matches`] (and the
//! daemon's `QUERY` body) line for line; the shared-grammar tests in
//! this module pin the bytes against the real formatter.

use std::fmt::Write as _;

use sbml_serve::wire::{ApproxEntry, ExactEntry, PartialCandidates, PartialMatches, SlotEntry};

/// Merge shard `PMATCH` answers and render the cluster-wide `MATCH`
/// response. `top_k` must equal the shards' configured top-k (the
/// coordinator hands both out of one config). Returns the CLI exit
/// code (0 hit, 1 miss, 4 partial) and the report text.
pub fn merge_matches(parts: &[PartialMatches], top_k: usize) -> (u8, String) {
    let mut exact: Vec<&ExactEntry> = parts.iter().flat_map(|p| p.exact.iter()).collect();
    let mut truncated: Vec<&SlotEntry> =
        parts.iter().flat_map(|p| p.truncated.iter()).collect();
    let mut failed: Vec<&SlotEntry> = parts.iter().flat_map(|p| p.failed.iter()).collect();
    exact.sort_by_key(|e| e.slot);
    truncated.sort_by_key(|e| e.slot);
    failed.sort_by_key(|e| e.slot);
    // "Rank only on a miss" is a *global* property: one exact hit
    // anywhere voids every shard's local approximate ranking.
    let mut approximate: Vec<&ApproxEntry> = if exact.is_empty() {
        parts.iter().flat_map(|p| p.approximate.iter()).collect()
    } else {
        Vec::new()
    };
    approximate.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.slot.cmp(&b.slot)));
    approximate.truncate(top_k);

    let mut out = String::new();
    for e in &truncated {
        let _ = writeln!(
            out,
            "truncated {} ({}): refinement budget exhausted before a verdict",
            e.id, e.id,
        );
    }
    for e in &failed {
        let _ = writeln!(out, "failed {} ({}): refinement panicked", e.id, e.id);
    }
    if exact.is_empty() {
        let _ = writeln!(out, "no exact embedding found");
        if approximate.is_empty() {
            let _ = writeln!(out, "no approximate match shares any key with the query");
        }
        for a in &approximate {
            let _ = writeln!(
                out,
                "approx {} ({}): score {:.3} (jaccard {:.3}, mapped {:.3})",
                a.id, a.id, a.score, a.jaccard, a.mapped_fraction,
            );
        }
        let code = if truncated.is_empty() && failed.is_empty() { 1 } else { 4 };
        return (code, out);
    }
    for e in &exact {
        let species =
            e.species.iter().map(|(q, t)| format!("{q}->{t}")).collect::<Vec<_>>().join(", ");
        let reactions =
            e.reactions.iter().map(|(q, t)| format!("{q}->{t}")).collect::<Vec<_>>().join(", ");
        let _ = writeln!(
            out,
            "exact {} ({}): species [{species}] reactions [{reactions}]",
            e.id, e.id,
        );
    }
    (0, out)
}

/// Merge shard `PQUERY` answers and render the cluster-wide `QUERY`
/// response: `candidates <k>/<total live>` then one `candidate <id>`
/// line per survivor in global (slot) order. Exit 0 when any candidate
/// survived, 1 otherwise.
pub fn merge_candidates(parts: &[PartialCandidates]) -> (u8, String) {
    let total: u64 = parts.iter().map(|p| p.live).sum();
    let mut candidates: Vec<&SlotEntry> =
        parts.iter().flat_map(|p| p.candidates.iter()).collect();
    candidates.sort_by_key(|e| e.slot);
    let mut body = format!("candidates {}/{total}\n", candidates.len());
    for e in &candidates {
        body.push_str("candidate ");
        body.push_str(&e.id);
        body.push('\n');
    }
    let code = if candidates.is_empty() { 1 } else { 0 };
    (code, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_match::{ApproxHit, CorpusHit, CorpusMatches, Embedding};
    use sbml_serve::format_matches;

    /// Split `result` across `n` shards the way the cluster would
    /// (slot = rank here: a freshly built corpus), then check the merge
    /// reproduces the single-process bytes of `want` — `result` with
    /// its approximate list cut to `top_k`, which is what the
    /// single-process index itself would have returned.
    fn shard_and_merge(result: &CorpusMatches, ids: &[String], n: usize, top_k: usize) {
        let mut want = result.clone();
        want.approximate.truncate(top_k);
        let (want_code, want_text) = format_matches(&want, ids, ids);
        let slots: Vec<u64> = (0..ids.len() as u64).collect();
        let parts: Vec<PartialMatches> = (0..n)
            .map(|shard| {
                // A shard sees only its residue class, with local ranks.
                let owned: Vec<usize> =
                    (0..ids.len()).filter(|m| m % n == shard).collect();
                let local = |m: usize| owned.iter().position(|&o| o == m);
                let sub = CorpusMatches {
                    exact: result
                        .exact
                        .iter()
                        .filter_map(|h| {
                            local(h.model).map(|m| CorpusHit {
                                model: m,
                                embedding: h.embedding.clone(),
                            })
                        })
                        .collect(),
                    // Local miss ⇒ the shard ranks it own corpus; the
                    // global result's approx list restricted to this
                    // shard is exactly what its local ranking yields.
                    approximate: result
                        .approximate
                        .iter()
                        .filter_map(|h| {
                            local(h.model).map(|m| ApproxHit { model: m, ..*h })
                        })
                        .collect(),
                    candidates: result
                        .candidates
                        .iter()
                        .filter_map(|&m| local(m))
                        .collect(),
                    truncated: result
                        .truncated
                        .iter()
                        .filter_map(|&m| local(m))
                        .collect(),
                    failed: result.failed.iter().filter_map(|&m| local(m)).collect(),
                };
                let ids_local: Vec<String> =
                    owned.iter().map(|&m| ids[m].clone()).collect();
                let slots_local: Vec<u64> = owned.iter().map(|&m| slots[m]).collect();
                PartialMatches::from_result(&sub, &ids_local, &slots_local)
            })
            .collect();
        let (code, text) = merge_matches(&parts, top_k);
        assert_eq!((code, text.as_str()), (want_code, want_text.as_str()), "{n} shards");
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("BIOMD{i}")).collect()
    }

    #[test]
    fn exact_hits_merge_bit_identically_at_every_shard_count() {
        let embedding = |q: &str, t: &str| Embedding {
            species: vec![(q.into(), t.into())],
            reactions: vec![("r".into(), "s".into())],
        };
        let result = CorpusMatches {
            exact: vec![
                CorpusHit { model: 1, embedding: embedding("a", "x") },
                CorpusHit { model: 4, embedding: embedding("b", "y") },
                CorpusHit { model: 5, embedding: embedding("c", "z") },
            ],
            approximate: vec![],
            candidates: vec![1, 4, 5],
            truncated: vec![0],
            failed: vec![3],
            // Ranking suppressed by the exact hits.
        };
        for n in [1, 2, 3, 4] {
            shard_and_merge(&result, &names(6), n, 10);
        }
    }

    #[test]
    fn approx_ranking_merges_with_topk_cut_and_slot_tiebreak() {
        let hit = |m: usize, s: f64| ApproxHit {
            model: m,
            score: s,
            jaccard: s,
            mapped_fraction: s,
        };
        let result = CorpusMatches {
            exact: vec![],
            // Ties on 0.5 break by ascending model — the merge must
            // reproduce that via slots.
            approximate: vec![hit(2, 0.75), hit(0, 0.5), hit(3, 0.5), hit(5, 0.25)],
            candidates: vec![0, 2, 3, 5],
            truncated: vec![],
            failed: vec![],
        };
        for n in [1, 2, 3] {
            shard_and_merge(&result, &names(6), n, 3);
        }
    }

    #[test]
    fn clean_and_partial_misses_keep_their_exit_codes() {
        let clean = CorpusMatches {
            exact: vec![],
            approximate: vec![],
            candidates: vec![],
            truncated: vec![],
            failed: vec![],
        };
        for n in [1, 2] {
            shard_and_merge(&clean, &names(4), n, 10);
        }
        let partial = CorpusMatches { truncated: vec![2], ..clean };
        for n in [1, 2, 3] {
            shard_and_merge(&partial, &names(4), n, 10);
        }
    }

    #[test]
    fn one_shards_exact_hit_voids_every_approx_list() {
        // Shard 0 missed (and ranked); shard 1 found an exact hit. The
        // merged answer must contain no approx lines at all.
        let parts = vec![
            PartialMatches {
                live: 2,
                approximate: vec![ApproxEntry {
                    slot: 0,
                    id: "m0".into(),
                    score: 0.9,
                    jaccard: 0.9,
                    mapped_fraction: 0.9,
                }],
                ..PartialMatches::default()
            },
            PartialMatches {
                live: 2,
                exact: vec![ExactEntry {
                    slot: 1,
                    id: "m1".into(),
                    species: vec![("a".into(), "x".into())],
                    reactions: vec![],
                }],
                ..PartialMatches::default()
            },
        ];
        let (code, text) = merge_matches(&parts, 10);
        assert_eq!(code, 0);
        assert_eq!(text, "exact m1 (m1): species [a->x] reactions []\n");
    }

    #[test]
    fn candidates_merge_in_slot_order_with_summed_total() {
        let entry = |slot: u64, id: &str| SlotEntry { slot, id: id.into() };
        let parts = vec![
            PartialCandidates { live: 3, candidates: vec![entry(0, "m0"), entry(4, "m4")] },
            PartialCandidates { live: 4, candidates: vec![entry(1, "m1")] },
        ];
        let (code, body) = merge_candidates(&parts);
        assert_eq!(code, 0);
        assert_eq!(body, "candidates 3/7\ncandidate m0\ncandidate m1\ncandidate m4\n");
        let (code, body) = merge_candidates(&[PartialCandidates {
            live: 5,
            candidates: vec![],
        }]);
        assert_eq!(code, 1);
        assert_eq!(body, "candidates 0/5\n");
    }
}
