//! Partitioning an in-memory index into per-shard daemon states.
//!
//! [`carve`] extracts one physical shard of a [`MatchIndex`] as a
//! standalone single-shard index over only the models that shard owns,
//! remapped to a dense local slot space, plus the [`ShardIdentity`]
//! ([`sbml_serve::Server::bind_shard`] needs) that maps the local live
//! corpus back to global slots. The disk-based equivalent is
//! [`sbml_serve::Snapshot::load_shard`]; this path serves in-process
//! tests and benches that already hold the full index.

use std::sync::Arc;

use sbml_compose::{ComposeOptions, PreparedModel};
use sbml_match::MatchIndex;
use sbml_serve::ShardIdentity;

/// Carve shard `shard` out of `index` (whose physical shard count
/// defines the cluster width): a dense local single-shard index over
/// the owned models plus the identity tying it back to the global slot
/// space. `threads` bounds the carved index's query pool.
pub fn carve(
    index: &MatchIndex,
    options: &ComposeOptions,
    threads: usize,
    shard: usize,
) -> Result<(MatchIndex, ShardIdentity), String> {
    let shards = index.shard_count();
    let raw = index.to_raw();
    let (local_raw, global) = raw.carve_shard(shard)?;
    let corpus = index.corpus();
    let live = index.live_slots();
    if live.len() != corpus.len() {
        return Err(format!(
            "{} live slot(s) for {} corpus model(s)",
            live.len(),
            corpus.len(),
        ));
    }
    let owned: Vec<Arc<PreparedModel>> = live
        .iter()
        .zip(corpus.iter())
        .filter(|&(&slot, _)| slot as usize % shards == shard)
        .map(|(_, p)| Arc::clone(p))
        .collect();
    let local = MatchIndex::from_raw(local_raw, &owned, options, threads)?;
    let identity = ShardIdentity {
        shard,
        shards,
        global_slots: global.iter().map(|&s| u64::from(s)).collect(),
        universe: index.slot_universe() as u64,
    };
    Ok((local, identity))
}

/// [`carve`] every shard of `index`, in shard order — one entry per
/// daemon process of the cluster.
pub fn carve_all(
    index: &MatchIndex,
    options: &ComposeOptions,
    threads: usize,
) -> Result<Vec<(MatchIndex, ShardIdentity)>, String> {
    (0..index.shard_count()).map(|i| carve(index, options, threads, i)).collect()
}
