//! The long-running daemon: a `std::net::TcpListener` accept loop
//! feeding a bounded worker pool, with the snapshot corpus hot behind
//! `Arc`s.
//!
//! # Request lifecycle
//!
//! ```text
//! accept → frame read → Request::decode
//!        → parse SBML body          (failure → ERR parse)
//!        → cache lookup (MATCH/QUERY; key = verb + the query's sorted
//!          canonical content keys)
//!        → hit: the cached bytes are sent verbatim — bit-identical to
//!          the first answer
//!        → miss: query/compose under the per-request guard::Budget
//!          (ExecError → ERR budget; the daemon keeps serving)
//!        → Response::encode → frame write → cache fill → metrics
//! ```
//!
//! Every worker shares one `ServeState`: the index (which owns the live
//! corpus) sits behind an `RwLock` — queries take read locks and run
//! concurrently; `UPSERT`/`REMOVE` take the write lock, mutate the index
//! in place (no rebuild) and clear the response cache; the cache sits
//! behind a `Mutex`, the counters are atomics. `SHUTDOWN` flips a flag
//! and pokes the listener with a loopback connection so the accept loop
//! observes it.
//!
//! Connections are **multiplexed round-robin** over the bounded pool: a
//! worker takes a connection off the shared queue, polls it for at most
//! one frame (a short read timeout, `POLL`), answers it, and puts the
//! connection back on the queue. A persistent connection therefore
//! never pins a worker while idle — with one worker and any number of
//! long-lived clients, every request still gets served (the alternative,
//! worker-per-connection-until-EOF, deadlocks as soon as idle
//! connections outnumber workers).

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use sbml_compose::{
    BatchComposer, Budget, ComposeOptions, Composer, CompositionSession, WorkerPool,
};
use sbml_match::MatchIndex;
use sbml_model::{parse_sbml, write_sbml, Model};

use crate::cache::QueryCache;
use crate::metrics::Metrics;
use crate::protocol::{write_frame, ErrKind, Request, Response, MAX_FRAME};
use crate::report::format_matches;
use crate::snapshot::semantics_token;
use crate::wire::{PartialCandidates, PartialMatches};

/// How long a worker waits on one connection for the start of a frame
/// before putting it back on the queue and serving someone else.
const POLL: Duration = Duration::from_millis(10);

/// Tunables applied at [`Server::bind`] time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (`0` = one per core).
    pub threads: usize,
    /// Result-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Per-request step ceiling: VF2 steps per `MATCH` candidate, guard
    /// steps per `COMPOSE` push. `None` = the engine defaults.
    pub max_steps: Option<u64>,
    /// Per-request wall-clock allowance in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Approximate hits ranked per `MATCH` miss.
    pub top_k: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 0,
            cache_capacity: 256,
            max_steps: None,
            deadline_ms: None,
            top_k: 10,
        }
    }
}

/// What one daemon is within a cluster: which residue class of the
/// global slot space it owns, and where its live models sit in that
/// space. A standalone daemon is the degenerate `0/1` identity whose
/// global slots equal its local ones. Built by the cluster layer (from
/// [`sbml_match::RawIndex::carve_shard`] or a per-shard snapshot) and
/// handed to [`Server::bind_shard`].
#[derive(Debug, Clone)]
pub struct ShardIdentity {
    /// This daemon's shard index (`slot % shards == shard` for every
    /// slot it owns).
    pub shard: usize,
    /// Total shards in the cluster.
    pub shards: usize,
    /// Global slot of each live model, positional with the index's live
    /// corpus (ascending — local rank order is global slot order).
    pub global_slots: Vec<u64>,
    /// Size of the cluster-wide slot universe (the next slot a
    /// coordinator will allocate).
    pub universe: u64,
}

/// The mutable heart of the daemon: the index (owner of the live
/// corpus) plus the positional model-id labels and global slot table,
/// kept in lockstep so a result's model number maps to its id and
/// cluster-wide position without touching the corpus.
struct Indexed {
    index: MatchIndex,
    /// Model ids, positional with the index's live corpus.
    ids: Vec<String>,
    /// Global slot per live model, positional with `ids`, ascending.
    slots: Vec<u64>,
    /// Global slot universe observed so far (next slot ≥ this).
    universe: u64,
}

impl Indexed {
    fn new(index: MatchIndex) -> Indexed {
        let ids = index.corpus().iter().map(|p| p.model().id.clone()).collect();
        let slots = index.live_slots().iter().map(|&s| u64::from(s)).collect();
        let universe = index.slot_universe() as u64;
        Indexed { index, ids, slots, universe }
    }

    fn with_identity(index: MatchIndex, slots: Vec<u64>, universe: u64) -> Indexed {
        let ids = index.corpus().iter().map(|p| p.model().id.clone()).collect();
        Indexed { index, ids, slots, universe }
    }
}

/// Everything the workers share.
struct ServeState {
    indexed: RwLock<Indexed>,
    options: ComposeOptions,
    cache: Mutex<QueryCache>,
    metrics: Metrics,
    config: ServerConfig,
    threads: usize,
    addr: SocketAddr,
    /// This daemon's (shard, shards) position; `(0, 1)` standalone.
    shard: usize,
    shards: usize,
    /// Daemon-lifetime compose worker pool: every COMPOSE session on
    /// every connection shares these parked threads instead of spawning
    /// scoped threads per request.
    compose_pool: Arc<WorkerPool>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a
/// `SHUTDOWN` request arrives.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// The cache key of a query: verb + the model's sorted canonical
/// content keys. Content keys canonically encode every component —
/// names up to synonyms, math up to commutative patterns, units up to
/// conversion — so two spellings of the same network (different model
/// id, reordered components, synonym names) land on one entry and get
/// byte-identical answers.
pub fn cache_key(verb: &str, model: &Model, options: &ComposeOptions) -> String {
    let mut keys = sbml_compose::model_content_keys(model, options);
    keys.sort_unstable();
    let mut out = String::with_capacity(keys.iter().map(|k| k.len() + 1).sum::<usize>() + 8);
    out.push_str(verb);
    out.push('\n');
    for k in &keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

impl Server {
    /// Bind the daemon to `addr` (use port 0 for an ephemeral port) over
    /// a loaded index (which owns its live corpus). The config's budget
    /// knobs are baked into the index here — every `MATCH` runs under
    /// them.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: MatchIndex,
        options: ComposeOptions,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_with(addr, index, options, config, None)
    }

    /// [`Server::bind`] for a cluster shard daemon: the daemon owns only
    /// `identity.shard`'s residue class of the global slot space, maps
    /// its local ranks through `identity.global_slots`, and validates
    /// slot ownership on pinned `UPSERT`s. Everything else — verbs,
    /// caching, budgets — behaves exactly like a standalone daemon.
    pub fn bind_shard(
        addr: impl ToSocketAddrs,
        index: MatchIndex,
        options: ComposeOptions,
        config: ServerConfig,
        identity: ShardIdentity,
    ) -> io::Result<Server> {
        Server::bind_with(addr, index, options, config, Some(identity))
    }

    fn bind_with(
        addr: impl ToSocketAddrs,
        index: MatchIndex,
        options: ComposeOptions,
        config: ServerConfig,
        identity: Option<ShardIdentity>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let threads = resolve_threads(config.threads);
        let mut index = index.with_threads(threads).with_top_k(config.top_k);
        if let Some(steps) = config.max_steps {
            index = index.with_budget(steps);
        }
        if let Some(ms) = config.deadline_ms {
            index = index.with_deadline_ms(ms);
        }
        let bad = |message: String| io::Error::new(io::ErrorKind::InvalidInput, message);
        let (shard, shards, indexed) = match identity {
            None => (0, 1, Indexed::new(index)),
            Some(identity) => {
                if identity.shards == 0 || identity.shard >= identity.shards {
                    return Err(bad(format!(
                        "shard {} out of range for {} shard(s)",
                        identity.shard, identity.shards,
                    )));
                }
                if identity.global_slots.len() != index.len() {
                    return Err(bad(format!(
                        "{} global slot(s) for {} live model(s)",
                        identity.global_slots.len(),
                        index.len(),
                    )));
                }
                if !identity.global_slots.windows(2).all(|w| w[0] < w[1]) {
                    return Err(bad("global slots must be strictly ascending".into()));
                }
                for &slot in &identity.global_slots {
                    if slot as usize % identity.shards != identity.shard {
                        return Err(bad(format!(
                            "global slot {slot} is not owned by shard {}/{}",
                            identity.shard, identity.shards,
                        )));
                    }
                    if slot >= identity.universe {
                        return Err(bad(format!(
                            "global slot {slot} beyond the declared universe {}",
                            identity.universe,
                        )));
                    }
                }
                (
                    identity.shard,
                    identity.shards,
                    Indexed::with_identity(index, identity.global_slots, identity.universe),
                )
            }
        };
        let options_pool_threads = options.pool_threads;
        let state = Arc::new(ServeState {
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            metrics: Metrics::new(),
            indexed: RwLock::new(indexed),
            options,
            config,
            threads,
            addr: local,
            shard,
            shards,
            compose_pool: Arc::new(match options_pool_threads {
                0 => WorkerPool::for_host(),
                n => WorkerPool::new(n),
            }),
        });
        Ok(Server { listener, state })
    }

    /// The address the daemon is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until a `SHUTDOWN` request arrives: accept connections and
    /// hand them to the worker pool. Each connection may carry any
    /// number of request frames; workers serve one frame per dispatch
    /// and re-enqueue the connection, so idle persistent connections
    /// never pin a worker.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, state } = self;
        let threads = state.threads;
        let handler: FrameHandler = Arc::new(move |payload: &[u8]| {
            let started = Instant::now();
            Metrics::bump(&state.metrics.requests);
            let mut shutdown = false;
            let response: Arc<[u8]> = match Request::decode(payload) {
                Ok(request) => respond(&state, request, &mut shutdown),
                Err(message) => {
                    Metrics::bump(&state.metrics.errors);
                    encode(Response::Err { kind: ErrKind::Proto, message })
                }
            };
            state.metrics.record_latency_us(started.elapsed().as_micros() as u64);
            FrameOutcome { response, shutdown }
        });
        serve_frames(listener, threads, handler)
    }
}

/// What a [`FrameHandler`] produced for one request frame.
pub struct FrameOutcome {
    /// The fully encoded response payload.
    pub response: Arc<[u8]>,
    /// True when this request asked the daemon to shut down (the
    /// response is still written first).
    pub shutdown: bool,
}

/// One request frame in, one encoded response out — the pluggable core
/// [`serve_frames`] runs for every frame. Must be panic-free for
/// malformed input; both the daemon and the cluster coordinator route
/// errors into `ERR` responses instead.
pub type FrameHandler = Arc<dyn Fn(&[u8]) -> FrameOutcome + Send + Sync>;

/// The daemon accept/serve loop, shared by [`Server::run`] and the
/// cluster coordinator: a `TcpListener` accept loop feeding a bounded
/// worker pool that multiplexes connections round-robin (one frame per
/// dispatch, then back on the queue — idle persistent connections never
/// pin a worker).
///
/// **Shutdown drains.** When a handler reports `shutdown`, its response
/// is written first, then the flag flips and the accept loop is poked.
/// Connections already queued (or carrying frames already sent) are not
/// dropped: each is polled once more and any complete in-flight request
/// frames are answered before the connection closes. Only then do the
/// workers exit — a client that pipelined `UPSERT; SHUTDOWN` over two
/// connections gets both answers.
pub fn serve_frames(listener: TcpListener, threads: usize, handler: FrameHandler) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = Arc::clone(&rx);
        let tx = tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let handler = Arc::clone(&handler);
        workers.push(std::thread::spawn(move || loop {
            let stream = {
                let Ok(guard) = rx.lock() else { return };
                // A bounded wait, not recv(): workers must observe
                // the shutdown flag even while the queue is quiet.
                guard.recv_timeout(POLL)
            };
            match stream {
                Ok(stream) => {
                    if shutdown.load(Ordering::SeqCst) {
                        // Drain, don't drop: answer the frames this
                        // connection already sent, then let it close.
                        drain_connection(stream, &handler);
                    } else {
                        service_once(stream, addr, &shutdown, &handler, &tx);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        // Queue quiet and the flag is up: every queued
                        // connection has been drained.
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }));
    }
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                // Responses must leave immediately — Nagle holding a
                // small frame back stalls every client roundtrip.
                let _ = stream.set_nodelay(true);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

/// What one poll of a connection yielded.
enum Polled {
    /// A complete request frame.
    Frame(Vec<u8>),
    /// No data within `POLL` — the connection is alive but quiet.
    Idle,
    /// The peer hung up cleanly.
    Closed,
}

fn would_block(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Wait up to `POLL` for the start of a frame. Once the first length
/// byte arrives, the rest of the frame is read in blocking mode — peers
/// write whole frames at once, so the remainder follows promptly.
fn poll_frame(stream: &mut TcpStream) -> io::Result<Polled> {
    stream.set_read_timeout(Some(POLL))?;
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut len[filled..]) {
            Ok(0) => return Ok(Polled::Closed),
            Ok(n) => filled += n,
            Err(e) if would_block(&e) => {
                if filled == 0 {
                    stream.set_read_timeout(None)?;
                    return Ok(Polled::Idle);
                }
                // Mid-prefix: the frame has started, keep waiting.
            }
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(None)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Polled::Frame(payload))
}

/// Poll one connection for one frame, answer it, and put the connection
/// back on the queue unless it closed, errored, or asked for shutdown.
fn service_once(
    mut stream: TcpStream,
    addr: SocketAddr,
    shutdown: &AtomicBool,
    handler: &FrameHandler,
    tx: &mpsc::Sender<TcpStream>,
) {
    let payload = match poll_frame(&mut stream) {
        Ok(Polled::Frame(payload)) => payload,
        Ok(Polled::Idle) => {
            let _ = tx.send(stream); // alive but quiet: back of the line
            return;
        }
        Ok(Polled::Closed) | Err(_) => return,
    };
    let outcome = handler(&payload);
    if write_frame(&mut stream, &outcome.response).is_err() {
        return;
    }
    if outcome.shutdown {
        shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(addr);
        return;
    }
    let _ = tx.send(stream);
}

/// Answer every request frame this connection has already sent, then
/// drop it — the shutdown path's bounded farewell (at most one `POLL`
/// wait after the last in-flight frame; the connection is not
/// re-enqueued, so a peer that keeps streaming cannot stall shutdown).
fn drain_connection(mut stream: TcpStream, handler: &FrameHandler) {
    while let Ok(Polled::Frame(payload)) = poll_frame(&mut stream) {
        let outcome = handler(&payload);
        if write_frame(&mut stream, &outcome.response).is_err() {
            return;
        }
    }
}

fn encode(response: Response) -> Arc<[u8]> {
    Arc::from(response.encode().into_boxed_slice())
}

fn parse_query(xml: &str, metrics: &Metrics) -> Result<Model, Arc<[u8]>> {
    parse_sbml(xml).map_err(|e| {
        Metrics::bump(&metrics.errors);
        encode(Response::Err { kind: ErrKind::Parse, message: e.to_string() })
    })
}

/// Read-lock the live index; a poisoned lock (a panicked mutation
/// holding it) still yields the data — mutations are applied in one
/// in-place call, so the state is consistent.
fn read_indexed(state: &ServeState) -> RwLockReadGuard<'_, Indexed> {
    state.indexed.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_indexed(state: &ServeState) -> RwLockWriteGuard<'_, Indexed> {
    state.indexed.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A corpus mutation happened: every cached answer may be stale.
fn invalidate_cache(state: &ServeState) {
    if let Ok(mut cache) = state.cache.lock() {
        cache.clear();
    }
}

/// Serve one decoded request. Returns the fully encoded response
/// payload — on a cache hit, the exact bytes of the first answer.
fn respond(state: &ServeState, request: Request, shutdown: &mut bool) -> Arc<[u8]> {
    match request {
        Request::Match { query_xml } => {
            Metrics::bump(&state.metrics.match_requests);
            let query = match parse_query(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("MATCH", &query, &state.options);
            with_cache(state, key, || {
                let ix = read_indexed(state);
                let result = ix.index.query_corpus(&query);
                if !result.truncated.is_empty() {
                    Metrics::bump(&state.metrics.budget_cuts);
                }
                let (code, text) = format_matches(&result, &ix.ids, &ix.ids);
                Response::Ok { code, body: text.into_bytes() }
            })
        }
        Request::Query { query_xml } => {
            Metrics::bump(&state.metrics.query_requests);
            let query = match parse_query(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("QUERY", &query, &state.options);
            with_cache(state, key, || {
                let ix = read_indexed(state);
                let candidates = ix.index.candidates(&query);
                let mut body =
                    format!("candidates {}/{}\n", candidates.len(), ix.index.len());
                for &m in &candidates {
                    body.push_str("candidate ");
                    body.push_str(&ix.ids[m]);
                    body.push('\n');
                }
                let code = if candidates.is_empty() { 1 } else { 0 };
                Response::Ok { code, body: body.into_bytes() }
            })
        }
        Request::Compose { models_xml } => {
            Metrics::bump(&state.metrics.compose_requests);
            if models_xml.len() < 2 {
                Metrics::bump(&state.metrics.errors);
                return encode(Response::Err {
                    kind: ErrKind::Proto,
                    message: "COMPOSE needs at least two documents".into(),
                });
            }
            let mut models = Vec::with_capacity(models_xml.len());
            for xml in &models_xml {
                match parse_query(xml, &state.metrics) {
                    Ok(model) => models.push(model),
                    Err(response) => return response,
                }
            }
            // Each COMPOSE runs under its own budget: a hostile request
            // is cut off with a structured error, the daemon keeps
            // serving.
            let mut budget = Budget::unlimited();
            if let Some(steps) = state.config.max_steps {
                budget = budget.with_max_steps(steps);
            }
            if let Some(ms) = state.config.deadline_ms {
                budget = budget.with_deadline_ms(ms);
            }
            let meter = budget.start();
            let mut session = CompositionSession::new(&state.options);
            session.set_pool(Arc::clone(&state.compose_pool));
            for model in &models {
                if let Err(error) = session.push_guarded(model, Some(&meter)) {
                    Metrics::bump(&state.metrics.budget_cuts);
                    return encode(Response::Err {
                        kind: ErrKind::Budget,
                        message: error.to_string(),
                    });
                }
            }
            let result = session.finish();
            encode(Response::Ok { code: 0, body: write_sbml(&result.model).into_bytes() })
        }
        Request::Upsert { model_xml, slot } => {
            Metrics::bump(&state.metrics.upsert_requests);
            let model = match parse_query(&model_xml, &state.metrics) {
                Ok(model) => model,
                Err(response) => return response,
            };
            // Prepare outside the write lock: canonicalisation is the
            // expensive part, the index mutation is an append.
            let batch = BatchComposer::new(Composer::new(state.options.clone()));
            let prepared = batch.prepare_corpus(std::slice::from_ref(&model));
            let Some(prepared) = prepared.into_iter().next() else {
                Metrics::bump(&state.metrics.errors);
                return encode(Response::Err {
                    kind: ErrKind::Parse,
                    message: "model did not survive preparation".into(),
                });
            };
            let mut ix = write_indexed(state);
            // A pinned slot must be fresh (appends keep the global-slot
            // table ascending, mirroring local insertion order) and must
            // land in this daemon's residue class — a misrouted frame is
            // a protocol error, not a silent reshard.
            let global = match slot {
                Some(slot) => {
                    if slot < ix.universe {
                        Metrics::bump(&state.metrics.errors);
                        return encode(Response::Err {
                            kind: ErrKind::Proto,
                            message: format!(
                                "stale slot {slot}: universe is already {}",
                                ix.universe,
                            ),
                        });
                    }
                    if slot as usize % state.shards != state.shard {
                        Metrics::bump(&state.metrics.errors);
                        return encode(Response::Err {
                            kind: ErrKind::Proto,
                            message: format!(
                                "slot {slot} is not owned by shard {}/{}",
                                state.shard, state.shards,
                            ),
                        });
                    }
                    slot
                }
                // Standalone behaviour: take the next owned slot.
                None => {
                    let n = state.shards as u64;
                    let i = state.shard as u64;
                    let r = ix.universe % n;
                    if r <= i {
                        ix.universe + (i - r)
                    } else {
                        ix.universe + (n - r) + i
                    }
                }
            };
            let replaced = ix.ids.iter().position(|id| *id == model.id);
            if let Some(rank) = replaced {
                ix.index.remove(rank);
                ix.ids.remove(rank);
                ix.slots.remove(rank);
            }
            let rank = ix.index.insert(prepared);
            ix.ids.push(model.id.clone());
            ix.slots.push(global);
            ix.universe = global + 1;
            drop(ix);
            invalidate_cache(state);
            let verb = if replaced.is_some() { "replaced" } else { "inserted" };
            encode(Response::Ok {
                code: 0,
                body: format!("{verb} {} model {rank}\n", model.id).into_bytes(),
            })
        }
        Request::Remove { model_id } => {
            Metrics::bump(&state.metrics.remove_requests);
            let mut ix = write_indexed(state);
            let Some(rank) = ix.ids.iter().position(|id| *id == model_id) else {
                return encode(Response::Ok {
                    code: 1,
                    body: format!("no such model {model_id}\n").into_bytes(),
                });
            };
            ix.index.remove(rank);
            ix.ids.remove(rank);
            ix.slots.remove(rank);
            drop(ix);
            invalidate_cache(state);
            encode(Response::Ok {
                code: 0,
                body: format!("removed {model_id}\n").into_bytes(),
            })
        }
        Request::PartialMatch { query_xml } => {
            Metrics::bump(&state.metrics.match_requests);
            let query = match parse_query(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("PMATCH", &query, &state.options);
            with_cache(state, key, || {
                let ix = read_indexed(state);
                let result = ix.index.query_corpus(&query);
                if !result.truncated.is_empty() {
                    Metrics::bump(&state.metrics.budget_cuts);
                }
                let part = PartialMatches::from_result(&result, &ix.ids, &ix.slots);
                Response::Ok { code: 0, body: part.encode() }
            })
        }
        Request::PartialQuery { query_xml } => {
            Metrics::bump(&state.metrics.query_requests);
            let query = match parse_query(&query_xml, &state.metrics) {
                Ok(query) => query,
                Err(response) => return response,
            };
            let key = cache_key("PQUERY", &query, &state.options);
            with_cache(state, key, || {
                let ix = read_indexed(state);
                let candidates = ix.index.candidates(&query);
                let part = PartialCandidates::from_candidates(&candidates, &ix.ids, &ix.slots);
                Response::Ok { code: 0, body: part.encode() }
            })
        }
        Request::Stats => {
            Metrics::bump(&state.metrics.stats_requests);
            let cache_entries = state.cache.lock().map(|c| c.len()).unwrap_or(0);
            let ix = read_indexed(state);
            let mut body = state.metrics.report().render(
                cache_entries,
                ix.index.len(),
                state.threads,
            );
            body.push_str(&format!(
                "index_generation {}\nshards {}\nlive_models {}\ntombstoned_models {}\n",
                ix.index.generation(),
                ix.index.shard_count(),
                ix.index.len(),
                ix.index.tombstoned_len(),
            ));
            // Cluster identity lines: a coordinator's bind handshake
            // reads these to validate topology and adopt the universe.
            body.push_str(&format!(
                "shard_index {}\nshard_total {}\nuniverse {}\nfingerprint {:016x}\nsemantics {}\n",
                state.shard,
                state.shards,
                ix.universe,
                state.options.fingerprint().stable_hash(),
                semantics_token(state.options.semantics),
            ));
            encode(Response::Ok { code: 0, body: body.into_bytes() })
        }
        Request::Shutdown => {
            *shutdown = true;
            encode(Response::Ok { code: 0, body: b"shutting down\n".to_vec() })
        }
    }
}

/// Answer from the cache, or compute, cache and answer.
fn with_cache(state: &ServeState, key: String, compute: impl FnOnce() -> Response) -> Arc<[u8]> {
    if let Ok(mut cache) = state.cache.lock() {
        if let Some(hit) = cache.get(&key) {
            Metrics::bump(&state.metrics.cache_hits);
            return hit;
        }
    }
    Metrics::bump(&state.metrics.cache_misses);
    let response = encode(compute());
    if let Ok(mut cache) = state.cache.lock() {
        cache.put(key, Arc::clone(&response));
    }
    response
}
