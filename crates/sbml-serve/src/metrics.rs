//! Usage metering for the daemon: request counters, cache hit/miss
//! rates, budget cuts, and latency percentiles, all lock-free on the
//! request path except a bounded latency ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many latency samples the ring retains; older samples are
/// overwritten, so percentiles describe recent traffic.
const LATENCY_RING: usize = 4096;

/// Shared counters; one instance per server, updated by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests decoded (including ones that later errored).
    pub requests: AtomicU64,
    /// `MATCH` requests served.
    pub match_requests: AtomicU64,
    /// `QUERY` requests served.
    pub query_requests: AtomicU64,
    /// `COMPOSE` requests served.
    pub compose_requests: AtomicU64,
    /// `UPSERT` requests served (index mutations).
    pub upsert_requests: AtomicU64,
    /// `REMOVE` requests served (index mutations).
    pub remove_requests: AtomicU64,
    /// `STATS` requests served.
    pub stats_requests: AtomicU64,
    /// Responses answered straight from the cache.
    pub cache_hits: AtomicU64,
    /// Cacheable requests that had to be computed.
    pub cache_misses: AtomicU64,
    /// Requests cut short by the per-request budget or deadline.
    pub budget_cuts: AtomicU64,
    /// Requests rejected as unparseable or malformed.
    pub errors: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

/// A point-in-time copy of the counters, plus derived percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Total requests decoded.
    pub requests: u64,
    /// Per-verb counts: match, query, compose, upsert, remove, stats.
    pub by_verb: [u64; 6],
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Budget/deadline cuts.
    pub budget_cuts: u64,
    /// Malformed or unparseable requests.
    pub errors: u64,
    /// Median request latency in microseconds (0 with no samples).
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency_us(&self, micros: u64) {
        let Ok(mut ring) = self.latencies_us.lock() else { return };
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(micros);
        } else {
            let at = ring.next;
            ring.samples[at] = micros;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Snapshot the counters and compute percentiles.
    pub fn report(&self) -> MetricsReport {
        let (p50_us, p99_us) = {
            match self.latencies_us.lock() {
                Ok(ring) if !ring.samples.is_empty() => {
                    let mut sorted = ring.samples.clone();
                    sorted.sort_unstable();
                    let pick = |q: f64| {
                        let at = ((sorted.len() - 1) as f64 * q).round() as usize;
                        sorted[at.min(sorted.len() - 1)]
                    };
                    (pick(0.50), pick(0.99))
                }
                _ => (0, 0),
            }
        };
        MetricsReport {
            requests: self.requests.load(Ordering::Relaxed),
            by_verb: [
                self.match_requests.load(Ordering::Relaxed),
                self.query_requests.load(Ordering::Relaxed),
                self.compose_requests.load(Ordering::Relaxed),
                self.upsert_requests.load(Ordering::Relaxed),
                self.remove_requests.load(Ordering::Relaxed),
                self.stats_requests.load(Ordering::Relaxed),
            ],
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            budget_cuts: self.budget_cuts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_us,
            p99_us,
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl MetricsReport {
    /// Render as the `STATS` response body: one `key value` pair per
    /// line, machine- and human-readable.
    pub fn render(&self, cache_entries: usize, models: usize, threads: usize) -> String {
        format!(
            "requests {}\nmatch {}\nquery {}\ncompose {}\nupsert {}\nremove {}\nstats {}\n\
             cache_hits {}\ncache_misses {}\ncache_entries {cache_entries}\n\
             budget_cuts {}\nerrors {}\np50_us {}\np99_us {}\n\
             models {models}\nthreads {threads}\n",
            self.requests,
            self.by_verb[0],
            self.by_verb[1],
            self.by_verb[2],
            self.by_verb[3],
            self.by_verb[4],
            self.by_verb[5],
            self.cache_hits,
            self.cache_misses,
            self.budget_cuts,
            self.errors,
            self.p50_us,
            self.p99_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let m = Metrics::new();
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let report = m.report();
        // Nearest-rank over 100 samples: rank round(99 * 0.5) = 50 → 51.
        assert_eq!(report.p50_us, 51);
        assert_eq!(report.p99_us, 99);
    }

    #[test]
    fn empty_metrics_render_zeroes() {
        let report = Metrics::new().report();
        assert_eq!(report.p50_us, 0);
        assert_eq!(report.p99_us, 0);
        let text = report.render(0, 187, 4);
        assert!(text.contains("requests 0\n"));
        assert!(text.contains("models 187\n"));
        assert!(text.contains("threads 4\n"));
    }

    #[test]
    fn ring_overwrites_old_samples() {
        let m = Metrics::new();
        for _ in 0..LATENCY_RING {
            m.record_latency_us(1_000_000);
        }
        for _ in 0..LATENCY_RING {
            m.record_latency_us(5);
        }
        let report = m.report();
        assert_eq!(report.p50_us, 5, "old epoch fully displaced");
        assert_eq!(report.p99_us, 5);
    }
}
