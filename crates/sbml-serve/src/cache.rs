//! Content-key-keyed response cache with LRU eviction.
//!
//! The daemon keys cached responses on the *canonical content keys* of
//! the query model (plus the verb), not on the raw XML bytes: two
//! textually different files describing the same network — reordered
//! attributes, different whitespace, renamed ids under heavy semantics —
//! hit the same entry. Values are the fully encoded response payloads,
//! shared as `Arc<[u8]>`, so a cache hit is a clone of a pointer and the
//! bytes sent are identical to the first answer's.

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded LRU map from request keys to response payloads. Wrap it in
/// a `Mutex` to share; hit/miss accounting lives in
/// [`crate::metrics::Metrics`], not here.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<[u8]>)>,
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache { capacity, tick: 0, map: HashMap::new() }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every entry — called after a corpus mutation (`UPSERT` /
    /// `REMOVE`), when any cached answer may be stale.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Look up a response, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        let (stamp, value) = self.map.get_mut(key)?;
        *stamp = tick;
        Some(Arc::clone(value))
    }

    /// Insert a response, evicting the least-recently-used entry when
    /// the cache is full.
    pub fn put(&mut self, key: String, value: Arc<[u8]>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(n) scan for the oldest stamp: the capacity is small
            // (hundreds) and eviction is off the hot path (only on
            // misses that filled the cache).
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn hits_return_the_same_bytes() {
        let mut cache = QueryCache::new(4);
        cache.put("a".into(), payload("answer"));
        let first = cache.get("a").expect("hit");
        let second = cache.get("a").expect("hit");
        assert_eq!(first, second);
        assert!(Arc::ptr_eq(&first, &second), "hits share one allocation");
        assert!(cache.get("b").is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.put("a".into(), payload("1"));
        cache.put("b".into(), payload("2"));
        let _ = cache.get("a"); // refresh a; b is now oldest
        cache.put("c".into(), payload("3"));
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = QueryCache::new(4);
        cache.put("a".into(), payload("1"));
        cache.put("b".into(), payload("2"));
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = QueryCache::new(0);
        cache.put("a".into(), payload("1"));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
    }
}
