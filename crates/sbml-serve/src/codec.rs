//! Structural binary codec for the snapshot format: little-endian,
//! length-prefixed, no self-description — the [`crate::snapshot`] header
//! carries the format version instead.
//!
//! Every decode path is written against *hostile* input (a snapshot file
//! may be truncated or bit-flipped): each declared length and element
//! count is checked against the bytes actually remaining **before** any
//! allocation (so a corrupted count cannot OOM), strings are validated
//! as UTF-8, enum tags are range-checked, and [`MathExpr`] decoding is
//! depth-capped. Errors are descriptive [`String`]s the snapshot layer
//! wraps into [`crate::snapshot::SnapshotError::Corrupt`]; nothing in
//! this module panics on malformed input.

use sbml_math::ast::{Constant, CsymbolKind, MathExpr, Op};
use sbml_model::rule::Constraint;
use sbml_model::{
    Compartment, CompartmentType, Event, EventAssignment, FunctionDefinition, InitialAssignment,
    KineticLaw, Model, Parameter, Reaction, Rule, Species, SpeciesReference, SpeciesType,
};
use sbml_units::kind::ALL_KINDS;
use sbml_units::{Unit, UnitDefinition};

/// Maximum [`MathExpr`] nesting the decoder will follow. Real kinetic
/// laws are a handful of levels deep; the cap exists so corrupted bytes
/// cannot drive unbounded recursion.
const MAX_EXPR_DEPTH: usize = 128;

/// [`Op`] variants in declaration order — the decode table for the `u8`
/// tag written as `op as u8`.
const OPS: [Op; 32] = [
    Op::Plus,
    Op::Times,
    Op::Minus,
    Op::Divide,
    Op::Power,
    Op::Root,
    Op::Exp,
    Op::Ln,
    Op::Log,
    Op::Abs,
    Op::Floor,
    Op::Ceiling,
    Op::Factorial,
    Op::Sin,
    Op::Cos,
    Op::Tan,
    Op::Arcsin,
    Op::Arccos,
    Op::Arctan,
    Op::Sinh,
    Op::Cosh,
    Op::Tanh,
    Op::Eq,
    Op::Neq,
    Op::Gt,
    Op::Lt,
    Op::Geq,
    Op::Leq,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
];

/// [`Constant`] decode table (tag = declaration order).
const CONSTANTS: [Constant; 6] = [
    Constant::Pi,
    Constant::ExponentialE,
    Constant::True,
    Constant::False,
    Constant::Infinity,
    Constant::NotANumber,
];

/// [`CsymbolKind`] decode table (tag = declaration order).
const CSYMBOLS: [CsymbolKind; 3] = [CsymbolKind::Time, CsymbolKind::Avogadro, CsymbolKind::Delay];

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    /// Interning dictionary for [`Writer::key`]: string → id, assigned
    /// densely in first-write order (so encoding is deterministic).
    dict: std::collections::HashMap<Box<str>, u32>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (for nesting sections).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bits, little-endian — round-trips NaN payloads exactly.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// One byte, `0` or `1`.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// An element count / length prefix. Snapshot payloads are bounded
    /// by model sizes, far under `u32::MAX`.
    pub fn count(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.count(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Interned string. Canonical content keys, identifiers and posting
    /// keys repeat heavily across a corpus; the first occurrence is
    /// written inline (marker `0` + string) and assigned the next dense
    /// dictionary id, every repeat is a 4-byte back-reference (`id + 1`).
    /// Decode with [`Reader::key`] — writer and reader must agree call
    /// for call on which strings are interned.
    pub fn key(&mut self, s: &str) {
        if let Some(&id) = self.dict.get(s) {
            self.u32(id + 1);
        } else {
            let id = self.dict.len() as u32;
            self.dict.insert(s.into(), id);
            self.u32(0);
            self.str(s);
        }
    }

    /// `Option<String>` as a presence byte + string.
    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }

    /// `Option<f64>` as a presence byte + bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
            None => self.u8(0),
        }
    }

    /// `Option<i32>` as a presence byte + value.
    pub fn opt_i32(&mut self, v: Option<i32>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.i32(v);
            }
            None => self.u8(0),
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Decoded interning dictionary, filled by [`Reader::key`] as inline
    /// entries arrive. Grows by at most one `Arc<str>` per inline string
    /// actually present in the input, so hostile bytes cannot inflate it
    /// beyond the input size.
    dict: Vec<std::sync::Arc<str>>,
}

impl<'a> Reader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, dict: Vec::new() }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if n > self.remaining() {
            return Err(format!(
                "truncated: {what} needs {n} byte(s), {} remain at offset {}",
                self.remaining(),
                self.pos,
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn fixed<const N: usize>(&mut self, what: &str) -> Result<[u8; N], String> {
        let slice = self.take(N, what)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Raw byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.fixed::<1>(what)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.fixed(what)?))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.fixed(what)?))
    }

    /// Little-endian `i32`.
    pub fn i32(&mut self, what: &str) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.fixed(what)?))
    }

    /// IEEE-754 bits, little-endian.
    pub fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(u64::from_le_bytes(self.fixed(what)?)))
    }

    /// One byte; anything other than 0/1 is corruption.
    pub fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("{what}: invalid bool byte {other}")),
        }
    }

    /// An element count whose elements each occupy at least `min_elem`
    /// byte(s). The count is validated against the bytes remaining
    /// *before* the caller allocates — a corrupted 4-billion count fails
    /// here instead of in `Vec::with_capacity`.
    pub fn count(&mut self, min_elem: usize, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        let budget = if min_elem == 0 { self.remaining() } else { self.remaining() / min_elem };
        if n > budget {
            return Err(format!(
                "corrupt count: {what} declares {n} element(s) but only {} byte(s) remain",
                self.remaining(),
            ));
        }
        Ok(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, String> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }

    /// Interned string written by [`Writer::key`]: marker `0` introduces
    /// a new inline string, any other tag is a back-reference into the
    /// dictionary built so far. Repeats decode to `Arc` clones of the
    /// first occurrence — one allocation per *distinct* string.
    pub fn key(&mut self, what: &str) -> Result<std::sync::Arc<str>, String> {
        let tag = self.u32(what)?;
        if tag == 0 {
            let len = self.count(1, what)?;
            let bytes = self.take(len, what)?;
            let s = std::str::from_utf8(bytes).map_err(|_| format!("{what}: invalid UTF-8"))?;
            let s: std::sync::Arc<str> = std::sync::Arc::from(s);
            self.dict.push(std::sync::Arc::clone(&s));
            Ok(s)
        } else {
            let id = (tag - 1) as usize;
            self.dict.get(id).cloned().ok_or_else(|| {
                format!("{what}: interned string id {id} beyond dictionary size {}", self.dict.len())
            })
        }
    }

    /// [`Reader::key`], materialised as an owned `String` (for struct
    /// fields that are not `Arc<str>`).
    pub fn key_string(&mut self, what: &str) -> Result<String, String> {
        Ok(self.key(what)?.as_ref().to_owned())
    }

    /// A length-validated run of `n` little-endian `u32`s, decoded in one
    /// bounds check instead of one per element — posting lists and
    /// adjacency arrays are the bulk of an index section.
    pub fn u32_list(&mut self, n: usize, what: &str) -> Result<Vec<u32>, String> {
        // `n` comes from `count(4, ..)`, so `n * 4` cannot overflow: it is
        // already bounded by the bytes remaining in the buffer.
        let bytes = self.take(n * 4, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Presence byte + string.
    pub fn opt_str(&mut self, what: &str) -> Result<Option<String>, String> {
        if self.bool(what)? {
            Ok(Some(self.str(what)?))
        } else {
            Ok(None)
        }
    }

    /// Presence byte + bits.
    pub fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, String> {
        if self.bool(what)? {
            Ok(Some(self.f64(what)?))
        } else {
            Ok(None)
        }
    }

    /// Presence byte + value.
    pub fn opt_i32(&mut self, what: &str) -> Result<Option<i32>, String> {
        if self.bool(what)? {
            Ok(Some(self.i32(what)?))
        } else {
            Ok(None)
        }
    }
}

/// Encode a [`MathExpr`] (tag byte per variant, children recursive).
pub fn write_expr(w: &mut Writer, e: &MathExpr) {
    match e {
        MathExpr::Num(v) => {
            w.u8(0);
            w.f64(*v);
        }
        MathExpr::Ci(id) => {
            w.u8(1);
            // Identifiers recur constantly inside kinetic laws — interned.
            w.key(id);
        }
        MathExpr::Csymbol { kind, name } => {
            w.u8(2);
            w.u8(*kind as u8);
            w.str(name);
        }
        MathExpr::Const(c) => {
            w.u8(3);
            w.u8(*c as u8);
        }
        MathExpr::Apply { op, args } => {
            w.u8(4);
            w.u8(*op as u8);
            w.count(args.len());
            for a in args {
                write_expr(w, a);
            }
        }
        MathExpr::Call { function, args } => {
            w.u8(5);
            w.str(function);
            w.count(args.len());
            for a in args {
                write_expr(w, a);
            }
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            w.u8(6);
            w.count(pieces.len());
            for (value, condition) in pieces {
                write_expr(w, value);
                write_expr(w, condition);
            }
            match otherwise {
                Some(e) => {
                    w.u8(1);
                    write_expr(w, e);
                }
                None => w.u8(0),
            }
        }
        MathExpr::Lambda { params, body } => {
            w.u8(7);
            w.count(params.len());
            for p in params {
                w.str(p);
            }
            write_expr(w, body);
        }
    }
}

/// Decode a [`MathExpr`]; depth-capped, tag- and count-checked.
pub fn read_expr(r: &mut Reader<'_>) -> Result<MathExpr, String> {
    read_expr_depth(r, 0)
}

fn read_expr_depth(r: &mut Reader<'_>, depth: usize) -> Result<MathExpr, String> {
    if depth > MAX_EXPR_DEPTH {
        return Err(format!("expression nesting exceeds {MAX_EXPR_DEPTH}"));
    }
    match r.u8("expr tag")? {
        0 => Ok(MathExpr::Num(r.f64("number")?)),
        1 => Ok(MathExpr::Ci(r.key_string("ci")?)),
        2 => {
            let tag = r.u8("csymbol kind")?;
            let kind = *CSYMBOLS
                .get(tag as usize)
                .ok_or_else(|| format!("invalid csymbol tag {tag}"))?;
            Ok(MathExpr::Csymbol { kind, name: r.str("csymbol name")? })
        }
        3 => {
            let tag = r.u8("constant")?;
            let c = *CONSTANTS
                .get(tag as usize)
                .ok_or_else(|| format!("invalid constant tag {tag}"))?;
            Ok(MathExpr::Const(c))
        }
        4 => {
            let tag = r.u8("op")?;
            let op = *OPS.get(tag as usize).ok_or_else(|| format!("invalid op tag {tag}"))?;
            let n = r.count(1, "apply args")?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(read_expr_depth(r, depth + 1)?);
            }
            Ok(MathExpr::Apply { op, args })
        }
        5 => {
            let function = r.str("call function")?;
            let n = r.count(1, "call args")?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(read_expr_depth(r, depth + 1)?);
            }
            Ok(MathExpr::Call { function, args })
        }
        6 => {
            let n = r.count(2, "piecewise pieces")?;
            let mut pieces = Vec::with_capacity(n);
            for _ in 0..n {
                let value = read_expr_depth(r, depth + 1)?;
                let condition = read_expr_depth(r, depth + 1)?;
                pieces.push((value, condition));
            }
            let otherwise = if r.bool("piecewise otherwise")? {
                Some(Box::new(read_expr_depth(r, depth + 1)?))
            } else {
                None
            };
            Ok(MathExpr::Piecewise { pieces, otherwise })
        }
        7 => {
            let n = r.count(1, "lambda params")?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(r.str("lambda param")?);
            }
            Ok(MathExpr::Lambda { params, body: Box::new(read_expr_depth(r, depth + 1)?) })
        }
        other => Err(format!("invalid expr tag {other}")),
    }
}

fn write_opt_expr(w: &mut Writer, e: Option<&MathExpr>) {
    match e {
        Some(e) => {
            w.u8(1);
            write_expr(w, e);
        }
        None => w.u8(0),
    }
}

fn read_opt_expr(r: &mut Reader<'_>, what: &str) -> Result<Option<MathExpr>, String> {
    if r.bool(what)? {
        Ok(Some(read_expr(r)?))
    } else {
        Ok(None)
    }
}

fn write_species_refs(w: &mut Writer, refs: &[SpeciesReference]) {
    w.count(refs.len());
    for sr in refs {
        // Species ids repeat across every reaction touching them — interned.
        w.key(&sr.species);
        w.f64(sr.stoichiometry);
    }
}

fn read_species_refs(r: &mut Reader<'_>) -> Result<Vec<SpeciesReference>, String> {
    let n = r.count(4, "species references")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(SpeciesReference {
            species: r.key_string("species reference id")?,
            stoichiometry: r.f64("stoichiometry")?,
        });
    }
    Ok(out)
}

fn write_parameter(w: &mut Writer, p: &Parameter) {
    w.str(&p.id);
    w.opt_str(p.name.as_deref());
    w.opt_f64(p.value);
    w.opt_str(p.units.as_deref());
    w.bool(p.constant);
}

fn read_parameter(r: &mut Reader<'_>) -> Result<Parameter, String> {
    Ok(Parameter {
        id: r.str("parameter id")?,
        name: r.opt_str("parameter name")?,
        value: r.opt_f64("parameter value")?,
        units: r.opt_str("parameter units")?,
        constant: r.bool("parameter constant")?,
    })
}

/// Encode a whole [`Model`] (every list length-prefixed, fields in
/// struct order).
pub fn write_model(w: &mut Writer, m: &Model) {
    w.str(&m.id);
    w.opt_str(m.name.as_deref());

    w.count(m.function_definitions.len());
    for f in &m.function_definitions {
        w.str(&f.id);
        w.opt_str(f.name.as_deref());
        w.count(f.params.len());
        for p in &f.params {
            w.str(p);
        }
        write_expr(w, &f.body);
    }

    w.count(m.unit_definitions.len());
    for ud in &m.unit_definitions {
        w.str(&ud.id);
        w.opt_str(ud.name.as_deref());
        w.count(ud.units.len());
        for u in &ud.units {
            // Tag = position in the spec-ordered ALL_KINDS table.
            let tag = ALL_KINDS.iter().position(|k| *k == u.kind).unwrap_or(0);
            w.u8(tag as u8);
            w.i32(u.exponent);
            w.i32(u.scale);
            w.f64(u.multiplier);
        }
    }

    w.count(m.compartment_types.len());
    for ct in &m.compartment_types {
        w.str(&ct.id);
        w.opt_str(ct.name.as_deref());
    }

    w.count(m.species_types.len());
    for st in &m.species_types {
        w.str(&st.id);
        w.opt_str(st.name.as_deref());
    }

    w.count(m.compartments.len());
    for c in &m.compartments {
        w.str(&c.id);
        w.opt_str(c.name.as_deref());
        w.opt_str(c.compartment_type.as_deref());
        w.u32(c.spatial_dimensions);
        w.opt_f64(c.size);
        w.opt_str(c.units.as_deref());
        w.opt_str(c.outside.as_deref());
        w.bool(c.constant);
    }

    w.count(m.species.len());
    for s in &m.species {
        w.str(&s.id);
        w.opt_str(s.name.as_deref());
        w.opt_str(s.species_type.as_deref());
        // A handful of compartments hold every species — interned.
        w.key(&s.compartment);
        w.opt_f64(s.initial_amount);
        w.opt_f64(s.initial_concentration);
        w.opt_str(s.substance_units.as_deref());
        w.bool(s.has_only_substance_units);
        w.bool(s.boundary_condition);
        w.opt_i32(s.charge);
        w.bool(s.constant);
    }

    w.count(m.parameters.len());
    for p in &m.parameters {
        write_parameter(w, p);
    }

    w.count(m.initial_assignments.len());
    for ia in &m.initial_assignments {
        w.str(&ia.symbol);
        write_expr(w, &ia.math);
    }

    w.count(m.rules.len());
    for rule in &m.rules {
        match rule {
            Rule::Algebraic { math } => {
                w.u8(0);
                write_expr(w, math);
            }
            Rule::Assignment { variable, math } => {
                w.u8(1);
                w.str(variable);
                write_expr(w, math);
            }
            Rule::Rate { variable, math } => {
                w.u8(2);
                w.str(variable);
                write_expr(w, math);
            }
        }
    }

    w.count(m.constraints.len());
    for c in &m.constraints {
        write_expr(w, &c.math);
        w.opt_str(c.message.as_deref());
    }

    w.count(m.reactions.len());
    for rx in &m.reactions {
        w.str(&rx.id);
        w.opt_str(rx.name.as_deref());
        w.bool(rx.reversible);
        w.bool(rx.fast);
        write_species_refs(w, &rx.reactants);
        write_species_refs(w, &rx.products);
        write_species_refs(w, &rx.modifiers);
        match &rx.kinetic_law {
            Some(kl) => {
                w.u8(1);
                write_expr(w, &kl.math);
                w.count(kl.parameters.len());
                for p in &kl.parameters {
                    write_parameter(w, p);
                }
            }
            None => w.u8(0),
        }
    }

    w.count(m.events.len());
    for ev in &m.events {
        w.opt_str(ev.id.as_deref());
        w.opt_str(ev.name.as_deref());
        write_expr(w, &ev.trigger);
        write_opt_expr(w, ev.delay.as_ref());
        w.count(ev.assignments.len());
        for ea in &ev.assignments {
            w.str(&ea.variable);
            write_expr(w, &ea.math);
        }
    }
}

/// Decode a whole [`Model`]; the exact inverse of [`write_model`].
pub fn read_model(r: &mut Reader<'_>) -> Result<Model, String> {
    let mut m = Model::new(r.str("model id")?);
    m.name = r.opt_str("model name")?;

    let n = r.count(1, "function definitions")?;
    for _ in 0..n {
        let id = r.str("function id")?;
        let name = r.opt_str("function name")?;
        let np = r.count(1, "function params")?;
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            params.push(r.str("function param")?);
        }
        let body = read_expr(r)?;
        m.function_definitions.push(FunctionDefinition { id, name, params, body });
    }

    let n = r.count(1, "unit definitions")?;
    for _ in 0..n {
        let id = r.str("unit definition id")?;
        let name = r.opt_str("unit definition name")?;
        let nu = r.count(17, "units")?;
        let mut units = Vec::with_capacity(nu);
        for _ in 0..nu {
            let tag = r.u8("unit kind")?;
            let kind = *ALL_KINDS
                .get(tag as usize)
                .ok_or_else(|| format!("invalid unit kind tag {tag}"))?;
            units.push(Unit {
                kind,
                exponent: r.i32("unit exponent")?,
                scale: r.i32("unit scale")?,
                multiplier: r.f64("unit multiplier")?,
            });
        }
        m.unit_definitions.push(UnitDefinition { id, name, units });
    }

    let n = r.count(1, "compartment types")?;
    for _ in 0..n {
        m.compartment_types.push(CompartmentType {
            id: r.str("compartment type id")?,
            name: r.opt_str("compartment type name")?,
        });
    }

    let n = r.count(1, "species types")?;
    for _ in 0..n {
        m.species_types.push(SpeciesType {
            id: r.str("species type id")?,
            name: r.opt_str("species type name")?,
        });
    }

    let n = r.count(1, "compartments")?;
    for _ in 0..n {
        m.compartments.push(Compartment {
            id: r.str("compartment id")?,
            name: r.opt_str("compartment name")?,
            compartment_type: r.opt_str("compartment type ref")?,
            spatial_dimensions: r.u32("spatial dimensions")?,
            size: r.opt_f64("compartment size")?,
            units: r.opt_str("compartment units")?,
            outside: r.opt_str("compartment outside")?,
            constant: r.bool("compartment constant")?,
        });
    }

    let n = r.count(1, "species")?;
    for _ in 0..n {
        m.species.push(Species {
            id: r.str("species id")?,
            name: r.opt_str("species name")?,
            species_type: r.opt_str("species type ref")?,
            compartment: r.key_string("species compartment")?,
            initial_amount: r.opt_f64("initial amount")?,
            initial_concentration: r.opt_f64("initial concentration")?,
            substance_units: r.opt_str("substance units")?,
            has_only_substance_units: r.bool("has only substance units")?,
            boundary_condition: r.bool("boundary condition")?,
            charge: r.opt_i32("charge")?,
            constant: r.bool("species constant")?,
        });
    }

    let n = r.count(1, "parameters")?;
    for _ in 0..n {
        m.parameters.push(read_parameter(r)?);
    }

    let n = r.count(1, "initial assignments")?;
    for _ in 0..n {
        m.initial_assignments.push(InitialAssignment {
            symbol: r.str("initial assignment symbol")?,
            math: read_expr(r)?,
        });
    }

    let n = r.count(1, "rules")?;
    for _ in 0..n {
        m.rules.push(match r.u8("rule tag")? {
            0 => Rule::Algebraic { math: read_expr(r)? },
            1 => Rule::Assignment { variable: r.str("rule variable")?, math: read_expr(r)? },
            2 => Rule::Rate { variable: r.str("rule variable")?, math: read_expr(r)? },
            other => return Err(format!("invalid rule tag {other}")),
        });
    }

    let n = r.count(1, "constraints")?;
    for _ in 0..n {
        m.constraints.push(Constraint {
            math: read_expr(r)?,
            message: r.opt_str("constraint message")?,
        });
    }

    let n = r.count(1, "reactions")?;
    for _ in 0..n {
        let id = r.str("reaction id")?;
        let name = r.opt_str("reaction name")?;
        let reversible = r.bool("reversible")?;
        let fast = r.bool("fast")?;
        let reactants = read_species_refs(r)?;
        let products = read_species_refs(r)?;
        let modifiers = read_species_refs(r)?;
        let kinetic_law = if r.bool("kinetic law")? {
            let math = read_expr(r)?;
            let np = r.count(1, "kinetic law parameters")?;
            let mut parameters = Vec::with_capacity(np);
            for _ in 0..np {
                parameters.push(read_parameter(r)?);
            }
            Some(KineticLaw { math, parameters })
        } else {
            None
        };
        m.reactions.push(Reaction {
            id,
            name,
            reversible,
            fast,
            reactants,
            products,
            modifiers,
            kinetic_law,
        });
    }

    let n = r.count(1, "events")?;
    for _ in 0..n {
        let id = r.opt_str("event id")?;
        let name = r.opt_str("event name")?;
        let trigger = read_expr(r)?;
        let delay = read_opt_expr(r, "event delay")?;
        let na = r.count(1, "event assignments")?;
        let mut assignments = Vec::with_capacity(na);
        for _ in 0..na {
            assignments.push(EventAssignment {
                variable: r.str("event assignment variable")?,
                math: read_expr(r)?,
            });
        }
        m.events.push(Event { id, name, trigger, delay, assignments });
    }

    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;
    use sbml_model::parse_sbml;

    fn sample() -> Model {
        let mut m = ModelBuilder::new("sample")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .parameter("k1", 0.4)
            .reaction("hex", &["glc"], &["G6P"], "k1*glc")
            .build();
        m.name = Some("A sample".into());
        m.constraints.push(Constraint {
            math: MathExpr::Apply {
                op: Op::Geq,
                args: vec![MathExpr::Ci("glc".into()), MathExpr::Num(0.0)],
            },
            message: Some("non-negative".into()),
        });
        m.events.push(Event {
            id: Some("e1".into()),
            name: None,
            trigger: MathExpr::Apply {
                op: Op::Gt,
                args: vec![MathExpr::Ci("G6P".into()), MathExpr::Num(2.0)],
            },
            delay: Some(MathExpr::Num(1.0)),
            assignments: vec![EventAssignment {
                variable: "glc".into(),
                math: MathExpr::Piecewise {
                    pieces: vec![(MathExpr::Num(0.0), MathExpr::Const(Constant::True))],
                    otherwise: Some(Box::new(MathExpr::Num(1.0))),
                },
            }],
        });
        m
    }

    #[test]
    fn model_round_trips_bit_exact() {
        let model = sample();
        let mut w = Writer::new();
        write_model(&mut w, &model);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_model(&mut r).expect("clean bytes decode");
        assert!(r.is_done(), "decoder must consume exactly what the encoder wrote");
        assert_eq!(back, model);
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let mut w = Writer::new();
        write_model(&mut w, &sample());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_model(&mut r).is_err(), "truncation at {cut} must error");
        }
    }

    #[test]
    fn hostile_counts_cannot_allocate() {
        // A count of u32::MAX with no bytes behind it must fail in
        // `count`, before any Vec::with_capacity.
        let mut w = Writer::new();
        w.str("m");
        w.u8(0); // no name
        w.u32(u32::MAX); // function definition count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = read_model(&mut r).unwrap_err();
        assert!(err.contains("corrupt count"), "{err}");
    }

    #[test]
    fn deep_expression_nesting_is_capped() {
        let mut w = Writer::new();
        // 200 nested unary minus applications, then garbage.
        for _ in 0..200 {
            w.u8(4); // Apply
            w.u8(2); // Minus
            w.u32(1); // one arg
        }
        w.u8(0);
        w.f64(1.0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = read_expr(&mut r).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn corpus_model_xml_and_codec_agree() {
        // The codec must agree with the XML round trip on a realistic
        // model, including kinetic laws and unit definitions.
        let model = sample();
        let xml = sbml_model::write_sbml(&model);
        let reparsed = parse_sbml(&xml).expect("own XML reparses");
        let mut w = Writer::new();
        write_model(&mut w, &reparsed);
        let bytes = w.into_bytes();
        let decoded = read_model(&mut Reader::new(&bytes)).expect("decodes");
        assert_eq!(decoded, reparsed);
    }
}
