//! Versioned binary corpus snapshots.
//!
//! A snapshot persists a *prepared* corpus — every
//! [`PreparedModel`]'s model, canonical content keys and initial
//! values — plus the full [`MatchIndex`] skeleton (graphs and posting
//! lists), so a daemon restart is a single file read and a slice-based
//! decode instead of re-parsing, re-canonicalising and re-indexing 187
//! models. State that is a pure function of the model (free-reference
//! sets, per-kind lookup indexes, graph adjacency) is *not* stored:
//! the loaded corpus re-derives it lazily on first use.
//!
//! # On-disk layout (format version 2)
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic  "SBMLSNAP"                                   8 bytes  │
//! │ format version (u32 le)                             4 bytes  │
//! │ semantics level (u8: 0 heavy, 1 light, 2 none)      1 byte   │
//! │ options fingerprint (stable FNV-1a, u64 le)         8 bytes  │
//! │ live model count (u32 le)                           4 bytes  │
//! │ index generation (u64 le)                           8 bytes  │
//! │ shard count (u32 le)                                4 bytes  │
//! │ per shard: generation u64, live u32, dead u32,               │
//! │            node / edge / participant postings 3×u32          │
//! │ section count (u32 le)                              4 bytes  │
//! │ section table: (tag u8, byte length u64 le) × n              │
//! │ section payloads, in table order                             │
//! │   tag 0 MODELS — RawPrepared per live model, sequential      │
//! │   tag 2 LAYOUT — live slot list + per-model match graphs     │
//! │   tag 3 SHARD  — one per shard: membership + posting lists   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every section carries its **own** string-interning dictionary, so a
//! SHARD section is a self-contained byte range: when only one shard of
//! a mutated index changed, [`Snapshot::write_update`] re-encodes that
//! shard and splices the other shards' bytes from the previous file
//! verbatim (generation counters in the header say which is which).
//! Per-shard stats — generation, live/tombstoned models, posting counts
//! per family — live in the fixed header, so `sbmlcompose snapshot
//! inspect` reports them without touching any payload.
//!
//! All integers are little-endian; every list is length-prefixed; every
//! declared length is validated against the bytes actually present
//! before any allocation (see [`crate::codec`]). Loading never panics on
//! hostile input: truncation, bit flips and impossible counts surface as
//! [`SnapshotError::Corrupt`], a wrong options fingerprint as
//! [`SnapshotError::FingerprintMismatch`].

use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use sbml_compose::{ComposeOptions, PreparedModel, RawPrepared, SemanticsLevel};
use sbml_match::{MatchIndex, RawGraph, RawIndex, RawShard};

use crate::codec::{read_model, write_model, Reader, Writer};

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"SBMLSNAP";

/// Current snapshot format version. Version 2 introduced sharded
/// indexes: per-shard self-contained sections, per-shard header stats,
/// and the live-slot layout section (version 1 files are not readable
/// by this build — regenerate with `sbmlcompose snapshot build`).
pub const FORMAT_VERSION: u32 = 2;

const SECTION_MODELS: u8 = 0;
const SECTION_LAYOUT: u8 = 2;
const SECTION_SHARD: u8 = 3;
/// Cluster identity of a per-shard snapshot emitted by
/// [`Snapshot::split_bytes`]: which residue class of which global slot
/// space this file holds. Old readers skip the unknown tag and load the
/// file as an ordinary standalone snapshot.
const SECTION_CLUSTER: u8 = 4;

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file is a snapshot, but of a format this build cannot read.
    UnsupportedVersion(u32),
    /// The snapshot was built under different [`ComposeOptions`] than
    /// the caller supplied — its cached keys would be meaningless.
    FingerprintMismatch {
        /// Fingerprint of the caller's options.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// Truncated or bit-flipped content; the detail says where.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})")
            }
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "options fingerprint mismatch: snapshot was built under {found:#018x}, \
                 caller options hash to {expected:#018x}",
            ),
            SnapshotError::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

fn corrupt(detail: String) -> SnapshotError {
    SnapshotError::Corrupt(detail)
}

/// Per-shard facts stored in the fixed snapshot header — available to
/// `sbmlcompose snapshot inspect` without decoding any payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotShardInfo {
    /// The shard's mutation counter at write time.
    pub generation: u64,
    /// Live models the shard owns.
    pub live: usize,
    /// Tombstoned models the shard owns (slots stay reserved so slot
    /// ids survive save/mutate/save cycles).
    pub dead: usize,
    /// Distinct node-key posting lists in the shard.
    pub node_postings: usize,
    /// Distinct edge-key posting lists.
    pub edge_postings: usize,
    /// Distinct participant-key posting lists.
    pub participant_postings: usize,
}

impl SnapshotShardInfo {
    /// Fraction of the shard's slot ownership that is tombstoned:
    /// `dead / (live + dead)` (0.0 for an empty shard). Written
    /// snapshots are always compacted, so this measures membership
    /// history, not pending posting garbage.
    pub fn tombstone_fraction(&self) -> f64 {
        let total = self.live + self.dead;
        if total == 0 {
            return 0.0;
        }
        self.dead as f64 / total as f64
    }
}

/// Header facts about a snapshot, without decoding its payload. What
/// `sbmlcompose snapshot inspect` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version of the file.
    pub version: u32,
    /// Semantics level the corpus was prepared under.
    pub semantics: SemanticsLevel,
    /// Stable hash of the build options ([`sbml_compose::OptionsFingerprint::stable_hash`]).
    pub fingerprint: u64,
    /// Number of live prepared models in the corpus.
    pub models: usize,
    /// Index-wide mutation counter at write time.
    pub generation: u64,
    /// Per-shard stats, in shard order.
    pub shards: Vec<SnapshotShardInfo>,
    /// Distinct node-key posting lists, summed across shards.
    pub node_postings: usize,
    /// Distinct edge-key posting lists, summed across shards.
    pub edge_postings: usize,
    /// Distinct participant-key posting lists, summed across shards.
    pub participant_postings: usize,
    /// Total snapshot size in bytes.
    pub bytes: usize,
}

/// Cluster identity of a per-shard snapshot: which slot residue class
/// this file holds out of a global slot universe. Written as the
/// CLUSTER section by [`Snapshot::split_bytes`]; reconstructed by
/// [`Snapshot::load_shard`] when carving a shard out of a full
/// snapshot. Because global slots are allocated densely from 0, shard
/// `i` of `n` owns exactly the slots `{i, i+n, i+2n, ...}` below
/// `universe`, so a local (dense) slot `l` maps to global slot
/// `i + n*l` — no explicit slot table is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Which residue class this file holds (`0 <= shard < shards`).
    pub shard: usize,
    /// Total shard processes in the cluster.
    pub shards: usize,
    /// Size of the *global* slot universe (live + tombstoned slots
    /// across every shard) at split time.
    pub universe: u64,
}

impl ClusterInfo {
    /// Translate a shard-local slot id to its global slot id.
    pub fn global_slot(&self, local: u32) -> u64 {
        self.shard as u64 + self.shards as u64 * local as u64
    }

    /// The global slot ids of a shard-local index's live models, in
    /// live (rank) order — ascending, because local slots ascend.
    pub fn global_slots(&self, index: &MatchIndex) -> Vec<u64> {
        index.live_slots().iter().map(|&l| self.global_slot(l)).collect()
    }

    /// How many global slots this shard owns: `|{s < universe : s ≡
    /// shard (mod shards)}|`. A per-shard file whose local slot
    /// universe disagrees with this is corrupt — the shard would
    /// silently drop or invent slots it is responsible for.
    pub fn owned_slots(&self) -> u64 {
        let (i, n) = (self.shard as u64, self.shards as u64);
        if self.universe <= i {
            0
        } else {
            (self.universe - i).div_ceil(n)
        }
    }
}

/// A fully decoded snapshot: the shared corpus and the hot index over
/// it, ready to serve queries.
pub struct LoadedSnapshot {
    /// The prepared corpus; the index holds `Arc` clones of the same
    /// preparations.
    pub corpus: Vec<Arc<PreparedModel>>,
    /// The match index rebuilt from the stored skeleton.
    pub index: MatchIndex,
    /// The options the snapshot was built (and now loaded) under.
    pub options: ComposeOptions,
    /// Header facts.
    pub info: SnapshotInfo,
    /// Cluster identity, when this is one shard of a partitioned
    /// corpus (a per-shard file, or a [`Snapshot::load_shard`] carve).
    /// `None` for ordinary standalone snapshots.
    pub cluster: Option<ClusterInfo>,
}

/// The preset [`ComposeOptions`] a snapshot's semantics byte denotes.
/// Snapshots built through the CLI always use a preset; a snapshot built
/// through the library with bespoke options can still be loaded by
/// passing those options to [`Snapshot::load`] explicitly.
pub fn preset_options(semantics: SemanticsLevel) -> ComposeOptions {
    match semantics {
        SemanticsLevel::Heavy => ComposeOptions::heavy(),
        SemanticsLevel::Light => ComposeOptions::light(),
        SemanticsLevel::None => ComposeOptions::none(),
    }
}

fn semantics_tag(level: SemanticsLevel) -> u8 {
    match level {
        SemanticsLevel::Heavy => 0,
        SemanticsLevel::Light => 1,
        SemanticsLevel::None => 2,
    }
}

fn semantics_from_tag(tag: u8) -> Result<SemanticsLevel, SnapshotError> {
    match tag {
        0 => Ok(SemanticsLevel::Heavy),
        1 => Ok(SemanticsLevel::Light),
        2 => Ok(SemanticsLevel::None),
        other => Err(corrupt(format!("invalid semantics byte {other}"))),
    }
}

/// The canonical lowercase token for a semantics level — what the CLI's
/// `--semantics` flag accepts and what daemon STATS / `snapshot inspect`
/// print. The coordinator's handshake compares these tokens across
/// shards, so they must stay stable.
pub fn semantics_token(level: SemanticsLevel) -> &'static str {
    match level {
        SemanticsLevel::Heavy => "heavy",
        SemanticsLevel::Light => "light",
        SemanticsLevel::None => "none",
    }
}

/// Parse a [`semantics_token`] back to its level.
pub fn semantics_from_token(token: &str) -> Option<SemanticsLevel> {
    match token {
        "heavy" => Some(SemanticsLevel::Heavy),
        "light" => Some(SemanticsLevel::Light),
        "none" => Some(SemanticsLevel::None),
        _ => None,
    }
}

// Key families are written through the codec's interning dictionary
// ([`Writer::key`]): canonical content keys repeat heavily across the
// models of a corpus (the same species, compartments and reaction
// patterns recur), so each distinct string is stored once and decoded
// to `Arc` clones of a single allocation.

fn write_key_family(w: &mut Writer, keys: &[Arc<str>]) {
    w.count(keys.len());
    for k in keys {
        w.key(k);
    }
}

fn read_key_family(r: &mut Reader<'_>, what: &str) -> Result<Vec<Arc<str>>, String> {
    let n = r.count(4, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.key(what)?);
    }
    Ok(out)
}

// Free-reference sets are deliberately NOT part of the format: they are
// a pure function of the model (no canonicalisation), so the preparation
// re-derives them lazily on first compose use instead of spending disk
// and decode time on them.
fn write_prepared(w: &mut Writer, raw: &RawPrepared) {
    write_model(w, &raw.model);
    write_key_family(w, &raw.function_keys);
    write_key_family(w, &raw.unit_keys);
    write_key_family(w, &raw.compartment_type_keys);
    write_key_family(w, &raw.species_type_keys);
    write_key_family(w, &raw.compartment_keys);
    write_key_family(w, &raw.species_keys);
    write_key_family(w, &raw.rule_keys);
    write_key_family(w, &raw.constraint_keys);
    write_key_family(w, &raw.reaction_keys);
    write_key_family(w, &raw.event_keys);
    w.count(raw.initial_values.len());
    for (symbol, value) in &raw.initial_values {
        w.key(symbol);
        w.f64(*value);
    }
}

fn read_prepared(r: &mut Reader<'_>) -> Result<RawPrepared, String> {
    let model = read_model(r)?;
    let function_keys = read_key_family(r, "function keys")?;
    let unit_keys = read_key_family(r, "unit keys")?;
    let compartment_type_keys = read_key_family(r, "compartment type keys")?;
    let species_type_keys = read_key_family(r, "species type keys")?;
    let compartment_keys = read_key_family(r, "compartment keys")?;
    let species_keys = read_key_family(r, "species keys")?;
    let rule_keys = read_key_family(r, "rule keys")?;
    let constraint_keys = read_key_family(r, "constraint keys")?;
    let reaction_keys = read_key_family(r, "reaction keys")?;
    let event_keys = read_key_family(r, "event keys")?;
    let n = r.count(12, "initial values")?;
    let mut initial_values = Vec::with_capacity(n);
    for _ in 0..n {
        let symbol = r.key_string("initial value symbol")?;
        let value = r.f64("initial value")?;
        initial_values.push((symbol, value));
    }
    Ok(RawPrepared {
        model,
        function_keys,
        unit_keys,
        compartment_type_keys,
        species_type_keys,
        compartment_keys,
        species_keys,
        rule_keys,
        constraint_keys,
        reaction_keys,
        event_keys,
        initial_values,
    })
}

fn write_postings_arc(w: &mut Writer, postings: &[(Arc<str>, Vec<u32>)]) {
    w.count(postings.len());
    for (key, ids) in postings {
        w.key(key);
        w.count(ids.len());
        for id in ids {
            w.u32(*id);
        }
    }
}

fn read_postings_arc(
    r: &mut Reader<'_>,
    what: &str,
) -> Result<Vec<(Arc<str>, Vec<u32>)>, String> {
    let n = r.count(8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.key(what)?;
        let m = r.count(4, what)?;
        out.push((key, r.u32_list(m, what)?));
    }
    Ok(out)
}

/// The LAYOUT section: the live slot list plus every live model's match
/// graph, in live order. Self-contained (own interning dictionary).
/// Per-model participant-key lists are deliberately NOT part of the
/// format: they are a pure function of the prepared model and the
/// semantics, so the index re-derives them lazily on first ranked use.
fn write_layout(raw: &RawIndex) -> Vec<u8> {
    let mut w = Writer::new();
    w.count(raw.live.len());
    for slot in &raw.live {
        w.u32(*slot);
    }
    w.count(raw.graphs.len());
    for g in &raw.graphs {
        write_key_family(&mut w, &g.node_keys);
        w.count(g.edges.len());
        for (from, to, key) in &g.edges {
            w.u32(*from);
            w.u32(*to);
            w.key(key);
        }
        w.count(g.edge_reaction.len());
        for rx in &g.edge_reaction {
            w.u32(*rx as u32);
        }
    }
    w.into_bytes()
}

fn read_layout(r: &mut Reader<'_>) -> Result<(Vec<u32>, Vec<RawGraph>), String> {
    let nl = r.count(4, "live slots")?;
    let live = r.u32_list(nl, "live slots")?;
    let ng = r.count(12, "graphs")?;
    let mut graphs = Vec::with_capacity(ng);
    for _ in 0..ng {
        let node_keys = read_key_family(r, "graph node keys")?;
        let ne = r.count(12, "graph edges")?;
        let mut edges = Vec::with_capacity(ne);
        for _ in 0..ne {
            let from = r.u32("edge from")?;
            let to = r.u32("edge to")?;
            let key = r.key("edge key")?;
            edges.push((from, to, key));
        }
        let nr = r.count(4, "edge reactions")?;
        let edge_reaction =
            r.u32_list(nr, "edge reactions")?.into_iter().map(|v| v as usize).collect();
        graphs.push(RawGraph { node_keys, edges, edge_reaction });
    }
    Ok((live, graphs))
}

/// One SHARD section: the shard's membership and its three posting
/// families. Self-contained — its own interning dictionary and no
/// references into other sections — so [`Snapshot::write_update`] can
/// splice an unchanged shard's bytes verbatim from a previous file.
/// (The shard generation lives in the header, not here.)
fn write_shard(raw: &RawShard) -> Vec<u8> {
    let mut w = Writer::new();
    w.count(raw.members.len());
    for slot in &raw.members {
        w.u32(*slot);
    }
    w.count(raw.dead.len());
    for slot in &raw.dead {
        w.u32(*slot);
    }
    write_postings_arc(&mut w, &raw.node_postings);
    write_postings_arc(&mut w, &raw.edge_postings);
    write_postings_arc(&mut w, &raw.participant_postings);
    w.into_bytes()
}

fn read_shard(r: &mut Reader<'_>) -> Result<RawShard, String> {
    let nm = r.count(4, "shard members")?;
    let members = r.u32_list(nm, "shard members")?;
    let nd = r.count(4, "shard tombstones")?;
    let dead = r.u32_list(nd, "shard tombstones")?;
    let node_postings = read_postings_arc(r, "node postings")?;
    let edge_postings = read_postings_arc(r, "edge postings")?;
    let participant_postings = read_postings_arc(r, "participant postings")?;
    Ok(RawShard {
        generation: 0, // filled from the header by the caller
        members,
        dead,
        node_postings,
        edge_postings,
        participant_postings,
    })
}

/// Decode a CLUSTER section payload: shard index u32, shard count u32,
/// global slot universe u64.
fn read_cluster(section: &[u8]) -> Result<ClusterInfo, SnapshotError> {
    let mut r = Reader::new(section);
    let shard = r.u32("cluster shard").map_err(corrupt)? as usize;
    let shards = r.u32("cluster shard count").map_err(corrupt)? as usize;
    let universe = r.u64("cluster universe").map_err(corrupt)?;
    if !r.is_done() {
        return Err(corrupt(format!(
            "CLUSTER section holds {} undecoded trailing byte(s)",
            r.remaining(),
        )));
    }
    if shards == 0 || shard >= shards {
        return Err(corrupt(format!(
            "CLUSTER section names shard {shard} of {shards}",
        )));
    }
    Ok(ClusterInfo { shard, shards, universe })
}

/// Entry points for writing and reading snapshot files; see the
/// [module docs](self) for the format.
pub struct Snapshot;

impl Snapshot {
    /// Encode an index — its live prepared corpus
    /// ([`MatchIndex::corpus`]) plus the full skeleton — into snapshot
    /// bytes. Deterministic: the same index state and options always
    /// produce the same bytes (postings and key sets are sorted on the
    /// way out).
    pub fn encode(index: &MatchIndex, options: &ComposeOptions) -> Vec<u8> {
        Snapshot::encode_update(index, options, None).0
    }

    /// [`Snapshot::encode`] with incremental shard reuse: when
    /// `previous` holds the bytes of a snapshot written from an earlier
    /// state of the *same* index (same options, same shard count), every
    /// shard whose generation and header stats are unchanged is spliced
    /// into the output verbatim — only mutated shards re-encode. Returns
    /// the bytes and how many shard sections were reused.
    pub fn encode_update(
        index: &MatchIndex,
        options: &ComposeOptions,
        previous: Option<&[u8]>,
    ) -> (Vec<u8>, usize) {
        Snapshot::encode_with(index, options, previous, None)
    }

    /// [`Snapshot::encode_update`] plus an optional CLUSTER section
    /// stamping the bytes as one shard of a partitioned corpus.
    fn encode_with(
        index: &MatchIndex,
        options: &ComposeOptions,
        previous: Option<&[u8]>,
        cluster: Option<&ClusterInfo>,
    ) -> (Vec<u8>, usize) {
        let corpus = index.corpus();
        let raw = index.to_raw();
        let reusable: Vec<Option<&[u8]>> = previous
            .and_then(|bytes| Snapshot::reusable_shards(bytes, options, &raw))
            .unwrap_or_default();

        let mut models = Writer::new();
        models.count(corpus.len());
        for p in corpus {
            write_prepared(&mut models, &p.to_raw());
        }
        let models = models.into_bytes();
        let layout = write_layout(&raw);
        let mut reused = 0usize;
        let shard_bytes: Vec<Vec<u8>> = raw
            .shards
            .iter()
            .enumerate()
            .map(|(i, rs)| match reusable.get(i).copied().flatten() {
                Some(bytes) => {
                    reused += 1;
                    bytes.to_vec()
                }
                None => write_shard(rs),
            })
            .collect();

        let mut w = Writer::new();
        for b in MAGIC {
            w.u8(b);
        }
        w.u32(FORMAT_VERSION);
        w.u8(semantics_tag(options.semantics));
        w.u64(options.fingerprint().stable_hash());
        w.count(corpus.len());
        w.u64(raw.generation);
        w.count(raw.shards.len());
        for rs in &raw.shards {
            w.u64(rs.generation);
            w.count(rs.members.len());
            w.count(rs.dead.len());
            w.count(rs.node_postings.len());
            w.count(rs.edge_postings.len());
            w.count(rs.participant_postings.len());
        }
        let cluster_bytes = cluster.map(|c| {
            let mut cw = Writer::new();
            cw.u32(c.shard as u32);
            cw.u32(c.shards as u32);
            cw.u64(c.universe);
            cw.into_bytes()
        });
        w.count(2 + shard_bytes.len() + usize::from(cluster_bytes.is_some()));
        w.u8(SECTION_MODELS);
        w.u64(models.len() as u64);
        w.u8(SECTION_LAYOUT);
        w.u64(layout.len() as u64);
        for sb in &shard_bytes {
            w.u8(SECTION_SHARD);
            w.u64(sb.len() as u64);
        }
        if let Some(cb) = &cluster_bytes {
            w.u8(SECTION_CLUSTER);
            w.u64(cb.len() as u64);
        }
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&models);
        bytes.extend_from_slice(&layout);
        for sb in &shard_bytes {
            bytes.extend_from_slice(sb);
        }
        if let Some(cb) = &cluster_bytes {
            bytes.extend_from_slice(cb);
        }
        (bytes, reused)
    }

    /// Which of `raw`'s shards can reuse their encoded section from a
    /// previous snapshot's bytes: the previous file must parse, carry
    /// the same fingerprint and shard count, and the shard's generation
    /// and header stats must be unchanged. Any mismatch (or an
    /// unreadable previous file) simply disables reuse — never an error.
    fn reusable_shards<'a>(
        bytes: &'a [u8],
        options: &ComposeOptions,
        raw: &RawIndex,
    ) -> Option<Vec<Option<&'a [u8]>>> {
        let (info, sections) = Snapshot::header(bytes).ok()?;
        if info.fingerprint != options.fingerprint().stable_hash()
            || info.shards.len() != raw.shards.len()
        {
            return None;
        }
        let shard_sections: Vec<&[u8]> = sections
            .iter()
            .filter(|&&(tag, _, _)| tag == SECTION_SHARD)
            .map(|&(_, start, end)| &bytes[start..end])
            .collect();
        if shard_sections.len() != info.shards.len() {
            return None;
        }
        Some(
            raw.shards
                .iter()
                .zip(info.shards.iter().zip(shard_sections))
                .map(|(rs, (si, section))| {
                    (si.generation == rs.generation
                        && si.live == rs.members.len()
                        && si.dead == rs.dead.len()
                        && si.node_postings == rs.node_postings.len()
                        && si.edge_postings == rs.edge_postings.len()
                        && si.participant_postings == rs.participant_postings.len())
                        .then_some(section)
                })
                .collect(),
        )
    }

    /// Write a snapshot file (full encode).
    pub fn write(
        path: impl AsRef<Path>,
        index: &MatchIndex,
        options: &ComposeOptions,
    ) -> Result<(), SnapshotError> {
        fs::write(path, Snapshot::encode(index, options))?;
        Ok(())
    }

    /// Rewrite a snapshot file incrementally: shard sections whose
    /// generation is unchanged since the file was last written are
    /// copied from it byte-for-byte instead of re-encoded (a mutated
    /// shard rewrites alone). A missing or stale previous file falls
    /// back to a full write. Returns how many shard sections were
    /// reused.
    pub fn write_update(
        path: impl AsRef<Path>,
        index: &MatchIndex,
        options: &ComposeOptions,
    ) -> Result<usize, SnapshotError> {
        let path = path.as_ref();
        let previous = fs::read(path).ok();
        let (bytes, reused) = Snapshot::encode_update(index, options, previous.as_deref());
        fs::write(path, bytes)?;
        Ok(reused)
    }

    /// Decode the header and section table; returns the info plus the
    /// `(tag, start, end)` byte ranges of every section.
    fn header(bytes: &[u8]) -> Result<(SnapshotInfo, Vec<(u8, usize, usize)>), SnapshotError> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.u8("magic").map_err(|_| SnapshotError::BadMagic)?;
        }
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32("version").map_err(corrupt)?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let semantics = semantics_from_tag(r.u8("semantics").map_err(corrupt)?)?;
        let fingerprint = r.u64("fingerprint").map_err(corrupt)?;
        let models = r.count(0, "model count").map_err(corrupt)?;
        let generation = r.u64("index generation").map_err(corrupt)?;
        // Each shard entry is 8 + 5×4 = 28 header bytes, so the count is
        // bounded by the bytes actually present before any allocation.
        let nshards = r.count(28, "shard count").map_err(corrupt)?;
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            shards.push(SnapshotShardInfo {
                generation: r.u64("shard generation").map_err(corrupt)?,
                live: r.count(0, "shard live count").map_err(corrupt)?,
                dead: r.count(0, "shard tombstone count").map_err(corrupt)?,
                node_postings: r.count(0, "shard node posting count").map_err(corrupt)?,
                edge_postings: r.count(0, "shard edge posting count").map_err(corrupt)?,
                participant_postings: r
                    .count(0, "shard participant posting count")
                    .map_err(corrupt)?,
            });
        }
        let nsec = r.count(9, "section count").map_err(corrupt)?;
        let mut table = Vec::with_capacity(nsec);
        let mut declared: u64 = 0;
        for _ in 0..nsec {
            let tag = r.u8("section tag").map_err(corrupt)?;
            let len = r.u64("section length").map_err(corrupt)?;
            declared = declared.saturating_add(len);
            table.push((tag, len));
        }
        // Cap every declared section length against the bytes that are
        // actually in the file before anything is sliced or allocated.
        if declared > r.remaining() as u64 {
            return Err(corrupt(format!(
                "section table declares {declared} payload byte(s) but only {} remain",
                r.remaining(),
            )));
        }
        let mut offset = bytes.len() - r.remaining();
        let mut sections = Vec::with_capacity(table.len());
        for (tag, len) in table {
            sections.push((tag, offset, offset + len as usize));
            offset += len as usize;
        }
        let sum = |f: fn(&SnapshotShardInfo) -> usize| shards.iter().map(f).sum();
        let info = SnapshotInfo {
            version,
            semantics,
            fingerprint,
            models,
            generation,
            node_postings: sum(|s| s.node_postings),
            edge_postings: sum(|s| s.edge_postings),
            participant_postings: sum(|s| s.participant_postings),
            shards,
            bytes: bytes.len(),
        };
        Ok((info, sections))
    }

    /// Read the header of a snapshot file — version, fingerprint, model
    /// and posting counts — without decoding the payload.
    pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
        Snapshot::inspect_bytes(&fs::read(path)?)
    }

    /// [`Snapshot::inspect`] over bytes already in memory.
    pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
        Ok(Snapshot::header(bytes)?.0)
    }

    /// Load a snapshot file under explicitly supplied options (they must
    /// fingerprint-match the snapshot). `threads` bounds the query
    /// thread pool of the rebuilt index (`0` = one per core).
    pub fn load(
        path: impl AsRef<Path>,
        options: &ComposeOptions,
        threads: usize,
    ) -> Result<LoadedSnapshot, SnapshotError> {
        Snapshot::load_bytes(&fs::read(path)?, options, threads)
    }

    /// Load a snapshot file using the preset options its semantics byte
    /// denotes — the CLI path, where options always come from
    /// `--semantics`.
    pub fn load_auto(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<LoadedSnapshot, SnapshotError> {
        let bytes = fs::read(path)?;
        let (info, _) = Snapshot::header(&bytes)?;
        let options = preset_options(info.semantics);
        Snapshot::load_bytes(&bytes, &options, threads)
    }

    /// [`Snapshot::load`] over bytes already in memory — the corruption
    /// property tests drive this directly.
    pub fn load_bytes(
        bytes: &[u8],
        options: &ComposeOptions,
        threads: usize,
    ) -> Result<LoadedSnapshot, SnapshotError> {
        let (info, sections) = Snapshot::header(bytes)?;
        let expected = options.fingerprint().stable_hash();
        if info.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                expected,
                found: info.fingerprint,
            });
        }
        if options.semantics != info.semantics {
            return Err(corrupt(
                "semantics byte disagrees with options of the same fingerprint".into(),
            ));
        }
        let mut models_section: Option<&[u8]> = None;
        let mut layout_section: Option<&[u8]> = None;
        let mut shard_sections: Vec<&[u8]> = Vec::new();
        let mut cluster_section: Option<&[u8]> = None;
        for (tag, start, end) in sections {
            match tag {
                SECTION_MODELS => models_section = Some(&bytes[start..end]),
                SECTION_LAYOUT => layout_section = Some(&bytes[start..end]),
                SECTION_SHARD => shard_sections.push(&bytes[start..end]),
                SECTION_CLUSTER => cluster_section = Some(&bytes[start..end]),
                // Unknown sections are skipped: a future writer may
                // append new ones without breaking this reader.
                _ => {}
            }
        }
        let cluster = cluster_section.map(read_cluster).transpose()?;
        let models_section =
            models_section.ok_or_else(|| corrupt("missing MODELS section".into()))?;
        let layout_section =
            layout_section.ok_or_else(|| corrupt("missing LAYOUT section".into()))?;
        if shard_sections.len() != info.shards.len() {
            return Err(corrupt(format!(
                "{} SHARD section(s) but the header declares {} shard(s)",
                shard_sections.len(),
                info.shards.len(),
            )));
        }

        let mut r = Reader::new(models_section);
        let n = r.count(1, "model count").map_err(corrupt)?;
        if n != info.models {
            return Err(corrupt(format!(
                "MODELS section holds {n} model(s), header says {}",
                info.models,
            )));
        }
        let mut corpus = Vec::with_capacity(n);
        for i in 0..n {
            let raw = read_prepared(&mut r).map_err(|e| corrupt(format!("model {i}: {e}")))?;
            let prepared = PreparedModel::from_raw(raw, options)
                .map_err(|e| corrupt(format!("model {i}: {e}")))?;
            corpus.push(Arc::new(prepared));
        }
        // Forward compatibility lives at the section level (unknown tags
        // are skipped above); *within* a section, bytes left over after a
        // full decode mean the payload and the decoder disagree.
        if !r.is_done() {
            return Err(corrupt(format!(
                "MODELS section holds {} undecoded trailing byte(s)",
                r.remaining(),
            )));
        }

        let mut r = Reader::new(layout_section);
        let (live, graphs) = read_layout(&mut r).map_err(corrupt)?;
        if !r.is_done() {
            return Err(corrupt(format!(
                "LAYOUT section holds {} undecoded trailing byte(s)",
                r.remaining(),
            )));
        }

        let mut raw_shards = Vec::with_capacity(shard_sections.len());
        for (i, (section, si)) in shard_sections.iter().zip(&info.shards).enumerate() {
            let mut r = Reader::new(section);
            let mut shard = read_shard(&mut r).map_err(|e| corrupt(format!("shard {i}: {e}")))?;
            if !r.is_done() {
                return Err(corrupt(format!(
                    "SHARD section {i} holds {} undecoded trailing byte(s)",
                    r.remaining(),
                )));
            }
            // The payload must agree with the header stats — they gate
            // shard-section reuse on the next incremental write.
            if shard.members.len() != si.live || shard.dead.len() != si.dead {
                return Err(corrupt(format!(
                    "shard {i} holds {} live / {} dead slot(s), header says {} / {}",
                    shard.members.len(),
                    shard.dead.len(),
                    si.live,
                    si.dead,
                )));
            }
            let stats =
                (shard.node_postings.len(), shard.edge_postings.len(), shard.participant_postings.len());
            if stats != (si.node_postings, si.edge_postings, si.participant_postings) {
                return Err(corrupt(format!(
                    "shard {i} posting counts {stats:?} disagree with header ({}, {}, {})",
                    si.node_postings, si.edge_postings, si.participant_postings,
                )));
            }
            shard.generation = si.generation;
            raw_shards.push(shard);
        }

        let raw_index =
            RawIndex { generation: info.generation, live, graphs, shards: raw_shards };
        let index = MatchIndex::from_raw(raw_index, &corpus, options, threads)
            .map_err(|e| corrupt(format!("index: {e}")))?;

        if let Some(c) = &cluster {
            // The file's local slot universe must account for exactly
            // the global slots its residue class owns — anything else
            // means the shard would drop or invent slot ownership.
            let local = index.slot_universe() as u64;
            if local != c.owned_slots() {
                return Err(corrupt(format!(
                    "CLUSTER section claims shard {}/{} of a {}-slot universe \
                     (owning {} slot(s)) but the file holds {local} slot(s)",
                    c.shard,
                    c.shards,
                    c.universe,
                    c.owned_slots(),
                )));
            }
        }

        Ok(LoadedSnapshot { corpus, index, options: options.clone(), info, cluster })
    }

    /// Read just the CLUSTER identity of a snapshot file, if it has one
    /// — `None` for ordinary standalone snapshots. Decodes only the
    /// header and the (16-byte) CLUSTER payload.
    pub fn cluster_info(path: impl AsRef<Path>) -> Result<Option<ClusterInfo>, SnapshotError> {
        Snapshot::cluster_info_bytes(&fs::read(path)?)
    }

    /// [`Snapshot::cluster_info`] over bytes already in memory.
    pub fn cluster_info_bytes(bytes: &[u8]) -> Result<Option<ClusterInfo>, SnapshotError> {
        let (_, sections) = Snapshot::header(bytes)?;
        sections
            .iter()
            .find(|&&(tag, _, _)| tag == SECTION_CLUSTER)
            .map(|&(_, start, end)| read_cluster(&bytes[start..end]))
            .transpose()
    }

    /// Carve one shard's partition out of a full snapshot: decode the
    /// layout, retain only the models whose slot satisfies
    /// `slot % shards == shard`, decode **only** that shard's SHARD
    /// section (the others' byte ranges are never touched — the same
    /// splice-awareness [`Snapshot::write_update`] exploits), and remap
    /// the partition to a dense local slot space. The returned
    /// [`LoadedSnapshot`] holds a single-shard index over the owned
    /// models with `cluster` describing the global identity.
    ///
    /// `shards` must equal the snapshot's physical shard count (built
    /// with `snapshot build --shards n`) — slot ownership on disk is
    /// `slot % n`, so the file's own partitioning defines the cluster
    /// topology.
    pub fn load_shard(
        path: impl AsRef<Path>,
        threads: usize,
        shard: usize,
        shards: usize,
    ) -> Result<LoadedSnapshot, SnapshotError> {
        let bytes = fs::read(path)?;
        let (info, _) = Snapshot::header(&bytes)?;
        let options = preset_options(info.semantics);
        Snapshot::load_shard_bytes(&bytes, &options, threads, shard, shards)
    }

    /// [`Snapshot::load_shard`] over bytes already in memory, under
    /// explicitly supplied options.
    pub fn load_shard_bytes(
        bytes: &[u8],
        options: &ComposeOptions,
        threads: usize,
        shard: usize,
        shards: usize,
    ) -> Result<LoadedSnapshot, SnapshotError> {
        let (info, sections) = Snapshot::header(bytes)?;
        let expected = options.fingerprint().stable_hash();
        if info.fingerprint != expected {
            return Err(SnapshotError::FingerprintMismatch {
                expected,
                found: info.fingerprint,
            });
        }
        if options.semantics != info.semantics {
            return Err(corrupt(
                "semantics byte disagrees with options of the same fingerprint".into(),
            ));
        }
        if shards == 0 || shard >= shards {
            return Err(corrupt(format!("shard {shard}/{shards} is not a valid identity")));
        }
        if info.shards.len() != shards {
            return Err(corrupt(format!(
                "snapshot partitions into {} shard(s); cannot serve shard {shard}/{shards} \
                 (rebuild with `snapshot build --shards {shards}`)",
                info.shards.len(),
            )));
        }
        let mut models_section: Option<&[u8]> = None;
        let mut layout_section: Option<&[u8]> = None;
        let mut shard_sections: Vec<&[u8]> = Vec::new();
        for (tag, start, end) in sections {
            match tag {
                SECTION_MODELS => models_section = Some(&bytes[start..end]),
                SECTION_LAYOUT => layout_section = Some(&bytes[start..end]),
                SECTION_SHARD => shard_sections.push(&bytes[start..end]),
                _ => {}
            }
        }
        let models_section =
            models_section.ok_or_else(|| corrupt("missing MODELS section".into()))?;
        let layout_section =
            layout_section.ok_or_else(|| corrupt("missing LAYOUT section".into()))?;
        if shard_sections.len() != info.shards.len() {
            return Err(corrupt(format!(
                "{} SHARD section(s) but the header declares {} shard(s)",
                shard_sections.len(),
                info.shards.len(),
            )));
        }

        let mut r = Reader::new(layout_section);
        let (live, graphs) = read_layout(&mut r).map_err(corrupt)?;
        if !r.is_done() {
            return Err(corrupt(format!(
                "LAYOUT section holds {} undecoded trailing byte(s)",
                r.remaining(),
            )));
        }
        if live.len() != info.models {
            return Err(corrupt(format!(
                "LAYOUT lists {} live slot(s), header says {} model(s)",
                live.len(),
                info.models,
            )));
        }

        // The MODELS section is one sequential stream (a shared
        // interning dictionary), so every model is decoded — but only
        // the owned residue class pays preparation and retention.
        let mut r = Reader::new(models_section);
        let n = r.count(1, "model count").map_err(corrupt)?;
        if n != info.models {
            return Err(corrupt(format!(
                "MODELS section holds {n} model(s), header says {}",
                info.models,
            )));
        }
        let mut corpus = Vec::new();
        for i in 0..n {
            let raw = read_prepared(&mut r).map_err(|e| corrupt(format!("model {i}: {e}")))?;
            if live[i] as usize % shards == shard {
                let prepared = PreparedModel::from_raw(raw, options)
                    .map_err(|e| corrupt(format!("model {i}: {e}")))?;
                corpus.push(Arc::new(prepared));
            }
        }
        if !r.is_done() {
            return Err(corrupt(format!(
                "MODELS section holds {} undecoded trailing byte(s)",
                r.remaining(),
            )));
        }

        // Decode only the owned SHARD section.
        let si = &info.shards[shard];
        let mut r = Reader::new(shard_sections[shard]);
        let mut owned =
            read_shard(&mut r).map_err(|e| corrupt(format!("shard {shard}: {e}")))?;
        if !r.is_done() {
            return Err(corrupt(format!(
                "SHARD section {shard} holds {} undecoded trailing byte(s)",
                r.remaining(),
            )));
        }
        if owned.members.len() != si.live || owned.dead.len() != si.dead {
            return Err(corrupt(format!(
                "shard {shard} holds {} live / {} dead slot(s), header says {} / {}",
                owned.members.len(),
                owned.dead.len(),
                si.live,
                si.dead,
            )));
        }
        owned.generation = si.generation;

        // A full RawIndex with every *other* shard left empty: carving
        // only reads the target shard's lists plus the global live
        // layout, so the placeholders are never consulted.
        let mut placeholder: Vec<RawShard> = Vec::with_capacity(shards);
        placeholder.resize_with(shards, RawShard::default);
        placeholder[shard] = owned;
        let full = RawIndex {
            generation: info.generation,
            live,
            graphs,
            shards: placeholder,
        };
        let (local_raw, _global) = full
            .carve_shard(shard)
            .map_err(|e| corrupt(format!("shard {shard}: {e}")))?;
        let index = MatchIndex::from_raw(local_raw, &corpus, options, threads)
            .map_err(|e| corrupt(format!("shard {shard} index: {e}")))?;
        let universe =
            info.models as u64 + info.shards.iter().map(|s| s.dead as u64).sum::<u64>();
        let cluster = ClusterInfo { shard, shards, universe };

        Ok(LoadedSnapshot { corpus, index, options: options.clone(), info, cluster: Some(cluster) })
    }

    /// Split a full snapshot into one standalone per-shard snapshot per
    /// physical shard. Each output is an ordinary single-shard format-2
    /// file (loadable by any reader) plus a CLUSTER section recording
    /// its identity, so `sbmlcompose serve --shard i/n` can start from
    /// it without reading the other partitions at all.
    pub fn split(path: impl AsRef<Path>) -> Result<Vec<Vec<u8>>, SnapshotError> {
        Snapshot::split_bytes(&fs::read(path)?)
    }

    /// [`Snapshot::split`] over bytes already in memory.
    pub fn split_bytes(bytes: &[u8]) -> Result<Vec<Vec<u8>>, SnapshotError> {
        let (info, _) = Snapshot::header(bytes)?;
        let options = preset_options(info.semantics);
        let shards = info.shards.len();
        (0..shards)
            .map(|i| {
                let loaded = Snapshot::load_shard_bytes(bytes, &options, 1, i, shards)?;
                let cluster = loaded
                    .cluster
                    .ok_or_else(|| corrupt(format!("shard {i}: carve lost cluster identity")))?;
                let (out, _) =
                    Snapshot::encode_with(&loaded.index, &options, None, Some(&cluster));
                Ok(out)
            })
            .collect()
    }
}
