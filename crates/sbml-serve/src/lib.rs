//! **sbml-serve** — the corpus as a *service*: persistent prepared-corpus
//! snapshots and a long-running match/compose daemon.
//!
//! Everything else in this workspace is one-shot: each CLI invocation
//! re-parses the corpus, re-prepares every model and rebuilds the
//! [`sbml_match::MatchIndex`] before answering a single query — the
//! opposite of the "repository of curated models queried by many users"
//! deployment the paper envisions. This crate closes that gap in two
//! layers:
//!
//! * **[`snapshot`]** — a versioned binary on-disk format
//!   ([`Snapshot`]) that persists a prepared corpus (each
//!   [`sbml_compose::PreparedModel`]'s canonical content keys and
//!   initial values) together with the full
//!   index skeleton (match graphs + posting lists). `Snapshot::load` is
//!   a single file read plus a slice-based decode — no XML parsing, no
//!   re-canonicalisation, no re-analysis — and every corruption mode
//!   (truncation, bit flips, hostile counts) surfaces as a structured
//!   [`SnapshotError`], never a panic or an OOM.
//! * **[`server`]** — `sbmlcompose serve`: a daemon on
//!   `std::net::TcpListener` (the workspace is offline — no HTTP
//!   crates) speaking a length-prefixed frame protocol
//!   ([`protocol`]: `MATCH`, `QUERY`, `COMPOSE`, `UPSERT`, `REMOVE`,
//!   `STATS`, `SHUTDOWN`) from a bounded worker pool. The index stays
//!   hot behind an `RwLock` and mutates *in place* — `UPSERT` appends
//!   postings, `REMOVE` tombstones — with no rebuild and no restart;
//!   each request runs under a [`sbml_compose::Budget`] so a hostile
//!   query gets a structured `ERR budget` frame while the daemon keeps
//!   serving; answers are cached by canonical content keys with LRU
//!   eviction ([`cache`]); usage is metered ([`metrics`]) and exposed
//!   via `STATS`.
//!
//! [`client`] is the matching blocking client (`sbmlcompose client`),
//! and [`report`] holds the one formatter both the one-shot CLI and the
//! daemon render match results through — which is what makes a daemon
//! answer bit-identical to a one-shot answer for the same request.
//!
//! # Snapshot → serve, end to end
//!
//! ```
//! use std::sync::Arc;
//! use sbml_compose::{BatchComposer, ComposeOptions, Composer};
//! use sbml_match::MatchIndex;
//! use sbml_model::builder::ModelBuilder;
//! use sbml_serve::Snapshot;
//!
//! let options = ComposeOptions::default();
//! let models = vec![
//!     ModelBuilder::new("m0")
//!         .compartment("cell", 1.0)
//!         .species("A", 1.0)
//!         .species("B", 0.0)
//!         .parameter("k", 0.1)
//!         .reaction("r", &["A"], &["B"], "k*A")
//!         .build(),
//! ];
//! let batch = BatchComposer::new(Composer::new(options.clone()));
//! let corpus = batch.prepare_corpus(&models);
//! let index = MatchIndex::build(&corpus, &options);
//!
//! // Persist, then reload without re-preparing anything.
//! let bytes = Snapshot::encode(&index, &options);
//! let loaded = sbml_serve::Snapshot::load_bytes(&bytes, &options, 0).unwrap();
//! assert_eq!(loaded.corpus.len(), 1);
//! assert_eq!(loaded.index.posting_stats(), index.posting_stats());
//! ```

pub mod cache;
pub mod client;
pub mod codec;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use cache::QueryCache;
pub use client::Client;
pub use metrics::{Metrics, MetricsReport};
pub use protocol::{read_frame, write_frame, ErrKind, Request, Response, MAX_FRAME};
pub use report::format_matches;
pub use server::{serve_frames, FrameHandler, FrameOutcome, Server, ServerConfig, ShardIdentity};
pub use snapshot::{
    preset_options, semantics_from_token, semantics_token, ClusterInfo, LoadedSnapshot, Snapshot,
    SnapshotError, SnapshotInfo, SnapshotShardInfo, FORMAT_VERSION, MAGIC,
};
pub use wire::{PartialCandidates, PartialMatches};
