//! Binary partial-result bodies for the cluster-internal `PMATCH` /
//! `PQUERY` verbs ([`crate::protocol::Request::PartialMatch`] /
//! [`crate::protocol::Request::PartialQuery`]).
//!
//! A shard daemon owns a contiguous *local* rank space but a sparse
//! residue class of the *global* slot space (`slot % n == shard`).
//! Rendered text answers index models by local rank, which is
//! meaningless to a coordinator; these bodies instead carry every hit as
//! a `(global slot, model id, payload)` tuple, encoded with the
//! bounds-checked [`crate::codec`] primitives. Because global slots
//! totally order the cluster-wide corpus, a coordinator can merge shard
//! answers by plain sorting — slot-ascending for exact hits and
//! candidates, `(score desc, slot asc)` for approximate hits — and
//! reproduce the single-process [`sbml_match::MatchIndex`] gather
//! bit-for-bit without ranks ever crossing the wire.
//!
//! Decoding is written against hostile peers (a confused or malicious
//! shard): counts are validated against remaining bytes before
//! allocation, strings must be UTF-8, and trailing bytes are an error.

use sbml_match::CorpusMatches;

use crate::codec::{Reader, Writer};

/// A model reference in a partial answer: its global slot and SBML id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotEntry {
    /// Global slot id (totally ordered across the cluster).
    pub slot: u64,
    /// The model's SBML id, used verbatim as its label in merged output.
    pub id: String,
}

/// An exact embedding found by one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactEntry {
    /// Global slot of the matched corpus model.
    pub slot: u64,
    /// The matched model's SBML id.
    pub id: String,
    /// Witness species mapping, query id → target id, in witness order.
    pub species: Vec<(String, String)>,
    /// Witness reaction mapping, query id → target id, in witness order.
    pub reactions: Vec<(String, String)>,
}

/// One approximately ranked hit from a shard's local top-k.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxEntry {
    /// Global slot of the scored corpus model.
    pub slot: u64,
    /// The scored model's SBML id.
    pub id: String,
    /// Combined score (mean of Jaccard and mapped fraction).
    pub score: f64,
    /// Content-key Jaccard similarity.
    pub jaccard: f64,
    /// Fraction of query keys present in the model.
    pub mapped_fraction: f64,
}

/// One shard's share of a `MATCH` answer.
///
/// Invariants the producing daemon upholds (a merging coordinator
/// re-sorts rather than trusting them, so a hostile shard can skew only
/// its own answers): `exact`, `truncated` and `failed` ascend by slot;
/// `approximate` is the shard's local top-k in `(score desc, slot asc)`
/// order and is non-empty only when the shard found no exact hit — the
/// same "rank only on a miss" rule the single-process gather applies
/// globally, which the coordinator restores by discarding every
/// approximate list as soon as any shard reports an exact hit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialMatches {
    /// Live models this shard serves (summed by the coordinator into the
    /// cluster-wide corpus size).
    pub live: u64,
    /// Exact embeddings, slot-ascending.
    pub exact: Vec<ExactEntry>,
    /// Candidates whose refinement ran out of budget/deadline.
    pub truncated: Vec<SlotEntry>,
    /// Candidates whose refinement panicked (contained).
    pub failed: Vec<SlotEntry>,
    /// Local top-k approximate hits; empty when `exact` is non-empty.
    pub approximate: Vec<ApproxEntry>,
}

/// One shard's share of a `QUERY` answer: the candidates surviving its
/// posting-list intersection, slot-ascending.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialCandidates {
    /// Live models this shard serves.
    pub live: u64,
    /// Surviving candidates, slot-ascending.
    pub candidates: Vec<SlotEntry>,
}

fn write_slot_entries(w: &mut Writer, entries: &[SlotEntry]) {
    w.count(entries.len());
    for e in entries {
        w.u64(e.slot);
        w.str(&e.id);
    }
}

fn read_slot_entries(r: &mut Reader<'_>, what: &str) -> Result<Vec<SlotEntry>, String> {
    let n = r.count(12, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(SlotEntry { slot: r.u64(what)?, id: r.str(what)? });
    }
    Ok(out)
}

fn write_pairs(w: &mut Writer, pairs: &[(String, String)]) {
    w.count(pairs.len());
    for (q, t) in pairs {
        // Query-side ids repeat across every hit of one answer — interned.
        w.key(q);
        w.str(t);
    }
}

fn read_pairs(r: &mut Reader<'_>, what: &str) -> Result<Vec<(String, String)>, String> {
    let n = r.count(8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let q = r.key_string(what)?;
        let t = r.str(what)?;
        out.push((q, t));
    }
    Ok(out)
}

impl PartialMatches {
    /// Translate a shard-local [`CorpusMatches`] into the wire form.
    /// `ids[m]` / `slots[m]` are the id and global slot of local rank
    /// `m` — the daemon's positional tables, kept in lockstep with its
    /// index.
    pub fn from_result(result: &CorpusMatches, ids: &[String], slots: &[u64]) -> PartialMatches {
        let entry = |m: usize| SlotEntry { slot: slots[m], id: ids[m].clone() };
        PartialMatches {
            live: slots.len() as u64,
            exact: result
                .exact
                .iter()
                .map(|hit| ExactEntry {
                    slot: slots[hit.model],
                    id: ids[hit.model].clone(),
                    species: hit.embedding.species.clone(),
                    reactions: hit.embedding.reactions.clone(),
                })
                .collect(),
            truncated: result.truncated.iter().map(|&m| entry(m)).collect(),
            failed: result.failed.iter().map(|&m| entry(m)).collect(),
            approximate: result
                .approximate
                .iter()
                .map(|hit| ApproxEntry {
                    slot: slots[hit.model],
                    id: ids[hit.model].clone(),
                    score: hit.score,
                    jaccard: hit.jaccard,
                    mapped_fraction: hit.mapped_fraction,
                })
                .collect(),
        }
    }

    /// Encode as a response body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.live);
        w.count(self.exact.len());
        for e in &self.exact {
            w.u64(e.slot);
            w.str(&e.id);
            write_pairs(&mut w, &e.species);
            write_pairs(&mut w, &e.reactions);
        }
        write_slot_entries(&mut w, &self.truncated);
        write_slot_entries(&mut w, &self.failed);
        w.count(self.approximate.len());
        for a in &self.approximate {
            w.u64(a.slot);
            w.str(&a.id);
            w.f64(a.score);
            w.f64(a.jaccard);
            w.f64(a.mapped_fraction);
        }
        w.into_bytes()
    }

    /// Decode a response body; the exact inverse of
    /// [`PartialMatches::encode`]. Trailing bytes are an error.
    pub fn decode(bytes: &[u8]) -> Result<PartialMatches, String> {
        let mut r = Reader::new(bytes);
        let live = r.u64("partial live count")?;
        let n = r.count(20, "exact hits")?;
        let mut exact = Vec::with_capacity(n);
        for _ in 0..n {
            exact.push(ExactEntry {
                slot: r.u64("exact slot")?,
                id: r.str("exact id")?,
                species: read_pairs(&mut r, "exact species pair")?,
                reactions: read_pairs(&mut r, "exact reaction pair")?,
            });
        }
        let truncated = read_slot_entries(&mut r, "truncated entry")?;
        let failed = read_slot_entries(&mut r, "failed entry")?;
        let n = r.count(36, "approximate hits")?;
        let mut approximate = Vec::with_capacity(n);
        for _ in 0..n {
            approximate.push(ApproxEntry {
                slot: r.u64("approx slot")?,
                id: r.str("approx id")?,
                score: r.f64("approx score")?,
                jaccard: r.f64("approx jaccard")?,
                mapped_fraction: r.f64("approx mapped fraction")?,
            });
        }
        if !r.is_done() {
            return Err(format!("partial match body: {} trailing byte(s)", r.remaining()));
        }
        Ok(PartialMatches { live, exact, truncated, failed, approximate })
    }
}

impl PartialCandidates {
    /// Build from a shard-local candidate list (local ranks, ascending).
    pub fn from_candidates(candidates: &[usize], ids: &[String], slots: &[u64]) -> PartialCandidates {
        PartialCandidates {
            live: slots.len() as u64,
            candidates: candidates
                .iter()
                .map(|&m| SlotEntry { slot: slots[m], id: ids[m].clone() })
                .collect(),
        }
    }

    /// Encode as a response body.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.live);
        write_slot_entries(&mut w, &self.candidates);
        w.into_bytes()
    }

    /// Decode a response body. Trailing bytes are an error.
    pub fn decode(bytes: &[u8]) -> Result<PartialCandidates, String> {
        let mut r = Reader::new(bytes);
        let live = r.u64("partial live count")?;
        let candidates = read_slot_entries(&mut r, "candidate entry")?;
        if !r.is_done() {
            return Err(format!("partial candidates body: {} trailing byte(s)", r.remaining()));
        }
        Ok(PartialCandidates { live, candidates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matches() -> PartialMatches {
        PartialMatches {
            live: 7,
            exact: vec![ExactEntry {
                slot: 4,
                id: "BIOMD4".into(),
                species: vec![("a".into(), "x".into()), ("b".into(), "y".into())],
                reactions: vec![("r".into(), "s".into())],
            }],
            truncated: vec![SlotEntry { slot: 8, id: "BIOMD8".into() }],
            failed: vec![],
            approximate: vec![ApproxEntry {
                slot: 12,
                id: "BIOMD12".into(),
                score: 0.625,
                jaccard: 0.5,
                mapped_fraction: 0.75,
            }],
        }
    }

    #[test]
    fn partial_matches_round_trip() {
        let part = sample_matches();
        let bytes = part.encode();
        assert_eq!(PartialMatches::decode(&bytes).as_ref(), Ok(&part));
        // Empty answers round-trip too (the common "this shard has
        // nothing" frame).
        let empty = PartialMatches { live: 3, ..PartialMatches::default() };
        assert_eq!(PartialMatches::decode(&empty.encode()).as_ref(), Ok(&empty));
    }

    #[test]
    fn partial_candidates_round_trip() {
        let part = PartialCandidates {
            live: 5,
            candidates: vec![
                SlotEntry { slot: 0, id: "m0".into() },
                SlotEntry { slot: 15, id: "m15".into() },
            ],
        };
        assert_eq!(PartialCandidates::decode(&part.encode()).as_ref(), Ok(&part));
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = sample_matches().encode();
        for cut in 0..bytes.len() {
            assert!(PartialMatches::decode(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(PartialMatches::decode(&padded).is_err(), "trailing byte");
    }

    #[test]
    fn from_result_translates_ranks_to_slots() {
        use sbml_match::{ApproxHit, CorpusHit, CorpusMatches, Embedding};
        let result = CorpusMatches {
            exact: vec![CorpusHit {
                model: 1,
                embedding: Embedding { species: vec![("q".into(), "t".into())], reactions: vec![] },
            }],
            approximate: vec![ApproxHit { model: 0, score: 0.5, jaccard: 0.5, mapped_fraction: 0.5 }],
            candidates: vec![0, 1],
            truncated: vec![0],
            failed: vec![],
        };
        let ids = vec!["m0".to_owned(), "m1".to_owned()];
        let slots = vec![2u64, 5u64];
        let part = PartialMatches::from_result(&result, &ids, &slots);
        assert_eq!(part.live, 2);
        assert_eq!(part.exact[0].slot, 5);
        assert_eq!(part.exact[0].id, "m1");
        assert_eq!(part.truncated[0].slot, 2);
        assert_eq!(part.approximate[0].slot, 2);
        let cand = PartialCandidates::from_candidates(&result.candidates, &ids, &slots);
        assert_eq!(
            cand.candidates.iter().map(|e| e.slot).collect::<Vec<_>>(),
            vec![2, 5],
        );
    }
}
