//! The daemon's wire protocol: length-prefixed frames carrying
//! newline-delimited verb lines.
//!
//! Every message — request or response — travels as one **frame**: a
//! `u32` little-endian byte length followed by that many payload bytes
//! ([`write_frame`] / [`read_frame`]). A request payload is a verb line
//! (`MATCH`, `QUERY`, `COMPOSE <n>`, `UPSERT [slot]`, `REMOVE <id>`,
//! `PMATCH`, `PQUERY`, `STATS`, `SHUTDOWN`) terminated by `\n`,
//! followed by the verb's body; a response payload is a status
//! line (`OK <code>` or `ERR <kind> <message>`) followed by the response
//! body. The `<code>` of an `OK` is the exit code the equivalent
//! one-shot CLI run would return (0 hit, 1 miss, 4 partial), so
//! `sbmlcompose client` can forward it verbatim.
//!
//! `PMATCH`/`PQUERY` are the cluster-internal halves of `MATCH`/`QUERY`:
//! a shard daemon answers with a *binary* partial-result body (see
//! [`crate::wire`]) carrying global slot ids instead of rendered text,
//! so a coordinator can merge answers from many shards bit-identically
//! to a single-process index. `UPSERT <slot>` pins the inserted model to
//! an explicit global slot — the coordinator allocates slots so routing
//! (`slot % n`) and result ordering stay consistent across the fleet.
//!
//! Frames are capped at [`MAX_FRAME`] bytes in both directions; a peer
//! declaring more is a protocol error, not an allocation.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (64 MiB) — far above any
/// real corpus answer, low enough that a hostile length prefix cannot
/// OOM the peer.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Full corpus search of an SBML query: exact embeddings, or ranked
    /// approximate matches when none exists.
    Match {
        /// The query model as SBML XML.
        query_xml: String,
    },
    /// Candidate generation only: which models survive the posting-list
    /// intersection (no VF2 refinement).
    Query {
        /// The query model as SBML XML.
        query_xml: String,
    },
    /// Compose two or more models left to right under the server's
    /// options, under the per-request budget.
    Compose {
        /// The models as SBML XML documents, in fold order.
        models_xml: Vec<String>,
    },
    /// Insert a model into the live index, replacing any live model
    /// with the same SBML id (an in-place mutation — no rebuild, no
    /// restart).
    Upsert {
        /// The model as SBML XML.
        model_xml: String,
        /// Pin the insert to this global slot id (cluster-internal: the
        /// coordinator allocates slots; the daemon validates ownership
        /// and monotonicity). `None` lets the daemon pick the next slot
        /// itself — the standalone behaviour.
        slot: Option<u64>,
    },
    /// Tombstone a live model by SBML id; it stops answering
    /// immediately and its postings are compacted away lazily.
    Remove {
        /// The SBML model id to remove.
        model_id: String,
    },
    /// Cluster-internal `MATCH`: same search, but the body is a binary
    /// [`crate::wire::PartialMatches`] carrying global slot ids for a
    /// coordinator to merge, not rendered text.
    PartialMatch {
        /// The query model as SBML XML.
        query_xml: String,
    },
    /// Cluster-internal `QUERY`: candidate generation answered as a
    /// binary [`crate::wire::PartialCandidates`].
    PartialQuery {
        /// The query model as SBML XML.
        query_xml: String,
    },
    /// Usage metering: counters, cache statistics, latency percentiles.
    Stats,
    /// Stop accepting connections and shut the daemon down.
    Shutdown,
}

/// What kind of error a response frame reports, mapped by
/// `sbmlcompose client` onto the CLI exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The request body was not parseable SBML (client exit 3).
    Parse,
    /// The per-request budget or deadline cut the work short (exit 4).
    Budget,
    /// The frame itself was malformed (client exit 2).
    Proto,
}

impl ErrKind {
    /// Wire token.
    pub fn token(self) -> &'static str {
        match self {
            ErrKind::Parse => "parse",
            ErrKind::Budget => "budget",
            ErrKind::Proto => "proto",
        }
    }

    /// Inverse of [`ErrKind::token`].
    pub fn from_token(token: &str) -> Option<ErrKind> {
        Some(match token {
            "parse" => ErrKind::Parse,
            "budget" => ErrKind::Budget,
            "proto" => ErrKind::Proto,
            _ => return None,
        })
    }

    /// The exit code `sbmlcompose client` maps this error onto.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrKind::Parse => 3,
            ErrKind::Budget => 4,
            ErrKind::Proto => 2,
        }
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request was served.
    Ok {
        /// Suggested process exit code (CLI contract: 0 hit/success,
        /// 1 miss, 4 partial).
        code: u8,
        /// Verb-specific body (match report, merged SBML, stats text).
        body: Vec<u8>,
    },
    /// The request failed; the daemon keeps serving.
    Err {
        /// Failure class.
        kind: ErrKind,
        /// One-line human-readable detail.
        message: String,
    },
}

/// Write one frame: `u32` LE payload length, then the payload.
///
/// Prefix and payload go out in a **single** write: two back-to-back
/// small writes on a TCP socket interact with Nagle + delayed ACK and
/// can stall every request/response hop by tens of milliseconds —
/// ruinous for the coordinator, which adds a second hop to each query.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF before the length
/// prefix (the peer hung up between requests); a declared length above
/// [`MAX_FRAME`] is an error before any allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Split a payload at its first newline into (line, rest).
fn split_line(payload: &[u8]) -> Result<(&str, &[u8]), String> {
    let nl = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "missing verb line".to_owned())?;
    let line = std::str::from_utf8(&payload[..nl])
        .map_err(|_| "verb line is not UTF-8".to_owned())?;
    Ok((line, &payload[nl + 1..]))
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Match { query_xml } => {
                let mut out = b"MATCH\n".to_vec();
                out.extend_from_slice(query_xml.as_bytes());
                out
            }
            Request::Query { query_xml } => {
                let mut out = b"QUERY\n".to_vec();
                out.extend_from_slice(query_xml.as_bytes());
                out
            }
            Request::Compose { models_xml } => {
                let mut out = format!("COMPOSE {}\n", models_xml.len()).into_bytes();
                for doc in models_xml {
                    out.extend_from_slice(&(doc.len() as u32).to_le_bytes());
                    out.extend_from_slice(doc.as_bytes());
                }
                out
            }
            Request::Upsert { model_xml, slot } => {
                let mut out = match slot {
                    Some(slot) => format!("UPSERT {slot}\n").into_bytes(),
                    None => b"UPSERT\n".to_vec(),
                };
                out.extend_from_slice(model_xml.as_bytes());
                out
            }
            Request::Remove { model_id } => format!("REMOVE {model_id}\n").into_bytes(),
            Request::PartialMatch { query_xml } => {
                let mut out = b"PMATCH\n".to_vec();
                out.extend_from_slice(query_xml.as_bytes());
                out
            }
            Request::PartialQuery { query_xml } => {
                let mut out = b"PQUERY\n".to_vec();
                out.extend_from_slice(query_xml.as_bytes());
                out
            }
            Request::Stats => b"STATS\n".to_vec(),
            Request::Shutdown => b"SHUTDOWN\n".to_vec(),
        }
    }

    /// Decode a frame payload; the error string becomes an
    /// [`ErrKind::Proto`] response.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let (line, body) = split_line(payload)?;
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or_else(|| "empty verb line".to_owned())?;
        let body_str = |what: &str| -> Result<String, String> {
            String::from_utf8(body.to_vec()).map_err(|_| format!("{what} body is not UTF-8"))
        };
        match verb {
            "MATCH" => Ok(Request::Match { query_xml: body_str("MATCH")? }),
            "QUERY" => Ok(Request::Query { query_xml: body_str("QUERY")? }),
            "COMPOSE" => {
                let n: usize = words
                    .next()
                    .ok_or_else(|| "COMPOSE needs a document count".to_owned())?
                    .parse()
                    .map_err(|_| "bad COMPOSE document count".to_owned())?;
                let mut rest = body;
                let mut models_xml = Vec::new();
                for i in 0..n {
                    if rest.len() < 4 {
                        return Err(format!("COMPOSE document {i}: missing length prefix"));
                    }
                    let len =
                        u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                    rest = &rest[4..];
                    if len > rest.len() {
                        return Err(format!(
                            "COMPOSE document {i}: declares {len} byte(s), {} remain",
                            rest.len(),
                        ));
                    }
                    let doc = std::str::from_utf8(&rest[..len])
                        .map_err(|_| format!("COMPOSE document {i} is not UTF-8"))?;
                    models_xml.push(doc.to_owned());
                    rest = &rest[len..];
                }
                if !rest.is_empty() {
                    return Err(format!("COMPOSE: {} trailing byte(s)", rest.len()));
                }
                Ok(Request::Compose { models_xml })
            }
            "UPSERT" => {
                let slot = match words.next() {
                    Some(word) => Some(
                        word.parse::<u64>().map_err(|_| format!("bad UPSERT slot {word:?}"))?,
                    ),
                    None => None,
                };
                Ok(Request::Upsert { model_xml: body_str("UPSERT")?, slot })
            }
            "PMATCH" => Ok(Request::PartialMatch { query_xml: body_str("PMATCH")? }),
            "PQUERY" => Ok(Request::PartialQuery { query_xml: body_str("PQUERY")? }),
            "REMOVE" => {
                let model_id =
                    words.next().ok_or_else(|| "REMOVE needs a model id".to_owned())?;
                if !body.is_empty() {
                    return Err(format!("REMOVE: {} trailing byte(s)", body.len()));
                }
                Ok(Request::Remove { model_id: model_id.to_owned() })
            }
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb {other:?}")),
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok { code, body } => {
                let mut out = format!("OK {code}\n").into_bytes();
                out.extend_from_slice(body);
                out
            }
            Response::Err { kind, message } => {
                // The message must stay on the status line.
                let one_line = message.replace('\n', " ");
                format!("ERR {} {one_line}\n", kind.token()).into_bytes()
            }
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let (line, body) = split_line(payload)?;
        if let Some(rest) = line.strip_prefix("OK ") {
            let code: u8 = rest.trim().parse().map_err(|_| format!("bad OK code {rest:?}"))?;
            return Ok(Response::Ok { code, body: body.to_vec() });
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (token, message) = rest.split_once(' ').unwrap_or((rest, ""));
            let kind = ErrKind::from_token(token)
                .ok_or_else(|| format!("unknown error kind {token:?}"))?;
            return Ok(Response::Err { kind, message: message.to_owned() });
        }
        Err(format!("bad status line {line:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Match { query_xml: "<sbml/>".into() },
            Request::Query { query_xml: "<sbml>\nmultiline\n</sbml>".into() },
            Request::Compose { models_xml: vec!["<a/>".into(), "<b/>".into()] },
            Request::Compose { models_xml: vec![] },
            Request::Upsert { model_xml: "<sbml>\nnew model\n</sbml>".into(), slot: None },
            Request::Upsert { model_xml: "<sbml/>".into(), slot: Some(1042) },
            Request::Remove { model_id: "BIOMD0000000042".into() },
            Request::PartialMatch { query_xml: "<sbml/>".into() },
            Request::PartialQuery { query_xml: "<sbml>\nq\n</sbml>".into() },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in cases {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload).as_ref(), Ok(&req), "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok { code: 0, body: b"exact m1: ...".to_vec() },
            Response::Ok { code: 4, body: Vec::new() },
            Response::Err { kind: ErrKind::Parse, message: "bad xml".into() },
            Response::Err { kind: ErrKind::Budget, message: "steps exhausted".into() },
            Response::Err { kind: ErrKind::Proto, message: "unknown verb".into() },
        ];
        for resp in cases {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload).as_ref(), Ok(&resp), "{resp:?}");
        }
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let mut wire: Vec<u8> = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(Request::decode(b"").is_err(), "no verb line");
        assert!(Request::decode(b"NONSENSE\n").is_err(), "unknown verb");
        assert!(Request::decode(b"COMPOSE\n").is_err(), "missing count");
        assert!(Request::decode(b"COMPOSE 2\n\x05\x00\x00\x00<a/>").is_err(), "short doc");
        assert!(Request::decode(b"REMOVE\n").is_err(), "missing model id");
        assert!(Request::decode(b"UPSERT nine\n<x/>").is_err(), "non-numeric slot");
        assert!(Request::decode(b"REMOVE m1\ntrailing").is_err(), "REMOVE takes no body");
        assert!(Response::decode(b"WAT 0\n").is_err(), "bad status line");
        let newline_msg = Response::Err {
            kind: ErrKind::Parse,
            message: "two\nlines".into(),
        };
        let decoded = Response::decode(&newline_msg.encode()).unwrap();
        assert_eq!(
            decoded,
            Response::Err { kind: ErrKind::Parse, message: "two lines".into() },
            "newlines in messages are flattened onto the status line",
        );
    }

    #[test]
    fn err_kinds_map_to_cli_exit_codes() {
        assert_eq!(ErrKind::Parse.exit_code(), 3);
        assert_eq!(ErrKind::Budget.exit_code(), 4);
        assert_eq!(ErrKind::Proto.exit_code(), 2);
        for kind in [ErrKind::Parse, ErrKind::Budget, ErrKind::Proto] {
            assert_eq!(ErrKind::from_token(kind.token()), Some(kind));
        }
    }
}
