//! A blocking protocol client — what `sbmlcompose client` and the
//! end-to-end tests speak to the daemon with.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, Request, Response};

/// One connection to a daemon; may carry any number of requests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing; Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Send one request and read back the raw response payload bytes
    /// (status line + body) — what the cache-identity tests compare.
    pub fn roundtrip_raw(&mut self, request: &Request) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, &request.encode())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    /// Send one request and decode the response.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        let payload = self.roundtrip_raw(request)?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
