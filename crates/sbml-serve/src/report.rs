//! The one formatter for corpus match results.
//!
//! Both the one-shot CLI (`sbmlcompose match`) and the daemon's `MATCH`
//! responses render a [`CorpusMatches`] through [`format_matches`], so a
//! daemon answer is bit-identical to a one-shot answer whenever the two
//! label models the same way (the CLI labels by file path, the daemon by
//! model id — pass the same labels to get the same bytes). The exit code
//! follows the CLI contract: 0 when an exact hit exists, 1 on a
//! definitive miss, 4 when truncated/failed candidates make the answer
//! partial.

use sbml_match::CorpusMatches;

/// Render a match result as report text plus the CLI exit code.
/// `labels[m]` names corpus model `m` in the output (a file path for the
/// CLI, a model id for the daemon); `ids[m]` is always the model id.
pub fn format_matches(result: &CorpusMatches, labels: &[String], ids: &[String]) -> (u8, String) {
    use std::fmt::Write as _;

    let mut out = String::new();
    // Partial verdicts first: candidates the refiner could not decide
    // (budget/deadline ran out) or where it panicked (contained).
    for &m in &result.truncated {
        let _ = writeln!(
            out,
            "truncated {} ({}): refinement budget exhausted before a verdict",
            labels[m], ids[m],
        );
    }
    for &m in &result.failed {
        let _ = writeln!(out, "failed {} ({}): refinement panicked", labels[m], ids[m]);
    }
    if result.exact.is_empty() {
        let _ = writeln!(out, "no exact embedding found");
        if result.approximate.is_empty() {
            let _ = writeln!(out, "no approximate match shares any key with the query");
        }
        for hit in &result.approximate {
            let _ = writeln!(
                out,
                "approx {} ({}): score {:.3} (jaccard {:.3}, mapped {:.3})",
                labels[hit.model], ids[hit.model], hit.score, hit.jaccard, hit.mapped_fraction,
            );
        }
        // Undecided candidates make "no hit" a partial answer, not a
        // definitive miss — signal that distinctly.
        let code = if result.truncated.is_empty() && result.failed.is_empty() { 1 } else { 4 };
        return (code, out);
    }
    for hit in &result.exact {
        let species = hit
            .embedding
            .species
            .iter()
            .map(|(q, t)| format!("{q}->{t}"))
            .collect::<Vec<_>>()
            .join(", ");
        let reactions = hit
            .embedding
            .reactions
            .iter()
            .map(|(q, t)| format!("{q}->{t}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "exact {} ({}): species [{species}] reactions [{reactions}]",
            labels[hit.model], ids[hit.model],
        );
    }
    (0, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_match::{ApproxHit, CorpusHit, Embedding};

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("m{i}")).collect()
    }

    #[test]
    fn exact_hits_format_with_exit_zero() {
        let result = CorpusMatches {
            exact: vec![CorpusHit {
                model: 1,
                embedding: Embedding {
                    species: vec![("a".into(), "x".into())],
                    reactions: vec![("r".into(), "s".into())],
                },
            }],
            approximate: vec![],
            candidates: vec![1],
            truncated: vec![],
            failed: vec![],
        };
        let (code, text) = format_matches(&result, &names(3), &names(3));
        assert_eq!(code, 0);
        assert_eq!(text, "exact m1 (m1): species [a->x] reactions [r->s]\n");
    }

    #[test]
    fn truncated_miss_is_partial_exit_four() {
        let result = CorpusMatches {
            exact: vec![],
            approximate: vec![ApproxHit { model: 0, score: 0.5, jaccard: 0.25, mapped_fraction: 0.75 }],
            candidates: vec![0, 2],
            truncated: vec![2],
            failed: vec![],
        };
        let (code, text) = format_matches(&result, &names(3), &names(3));
        assert_eq!(code, 4);
        assert!(text.starts_with("truncated m2 (m2):"));
        assert!(text.contains("no exact embedding found\n"));
        assert!(text.contains("approx m0 (m0): score 0.500 (jaccard 0.250, mapped 0.750)\n"));
    }

    #[test]
    fn clean_miss_is_exit_one() {
        let result = CorpusMatches {
            exact: vec![],
            approximate: vec![],
            candidates: vec![],
            truncated: vec![],
            failed: vec![],
        };
        let (code, text) = format_matches(&result, &names(1), &names(1));
        assert_eq!(code, 1);
        assert!(text.contains("no approximate match shares any key with the query\n"));
    }
}
