//! SBML function definitions (named lambdas reusable in model math).

use sbml_math::MathExpr;
use sbml_xml::Element;

use crate::error::ModelError;
use crate::xmlutil::{opt_attr, req_attr, req_math_child, set_opt};

/// A function definition: `id(params...) = body`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDefinition {
    /// Unique id (the call target in math).
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
    /// Parameter names, in order.
    pub params: Vec<String>,
    /// Body expression over the parameters.
    pub body: MathExpr,
}

impl FunctionDefinition {
    /// Define a function from parameter names and a body.
    pub fn new(
        id: impl Into<String>,
        params: Vec<String>,
        body: MathExpr,
    ) -> FunctionDefinition {
        FunctionDefinition { id: id.into(), name: None, params, body }
    }

    /// The lambda form used by the math evaluator.
    pub fn as_lambda(&self) -> MathExpr {
        MathExpr::Lambda { params: self.params.clone(), body: Box::new(self.body.clone()) }
    }

    /// Read from `<functionDefinition>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let id = req_attr(e, "id")?;
        let math = req_math_child(e, &format!("functionDefinition {id:?}"))?;
        let MathExpr::Lambda { params, body } = math else {
            return Err(ModelError::structure(format!(
                "functionDefinition {id:?} math must be a <lambda>"
            )));
        };
        Ok(FunctionDefinition { id, name: opt_attr(e, "name"), params, body: *body })
    }

    /// Write to `<functionDefinition>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("functionDefinition").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        e.push_child(sbml_math::to_mathml(&self.as_lambda()));
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_math::infix;

    #[test]
    fn round_trip() {
        let f = FunctionDefinition::new(
            "mm",
            vec!["S".into(), "Vmax".into(), "Km".into()],
            infix::parse("Vmax*S/(Km+S)").unwrap(),
        );
        let back = FunctionDefinition::from_element(&f.to_element()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn lambda_required() {
        let e = sbml_xml::parse_element(
            "<functionDefinition id=\"f\"><math><cn>1</cn></math></functionDefinition>",
        )
        .unwrap();
        assert!(FunctionDefinition::from_element(&e).is_err());
    }

    #[test]
    fn as_lambda_matches_evaluator_expectations() {
        let f = FunctionDefinition::new("sq", vec!["x".into()], infix::parse("x*x").unwrap());
        let env = sbml_math::Env::new().with_function("sq", f.as_lambda());
        let v = sbml_math::evaluate(&infix::parse("sq(4)").unwrap(), &env).unwrap();
        assert_eq!(v, 16.0);
    }
}
