//! XML binding for unit definitions (`sbml-units` stays XML-free).

use sbml_units::{Unit, UnitDefinition, UnitKind};
use sbml_xml::Element;

use crate::error::ModelError;
use crate::xmlutil::{opt_attr, opt_f64, opt_i32, req_attr};

/// Read `<unitDefinition>`.
pub fn unit_definition_from_element(e: &Element) -> Result<UnitDefinition, ModelError> {
    let id = req_attr(e, "id")?;
    let mut units = Vec::new();
    if let Some(list) = e.child("listOfUnits") {
        for u in list.children_named("unit") {
            let kind_raw = req_attr(u, "kind")?;
            let kind = UnitKind::parse(&kind_raw).ok_or_else(|| {
                ModelError::structure(format!("unitDefinition {id:?}: unknown unit kind {kind_raw:?}"))
            })?;
            units.push(Unit {
                kind,
                exponent: opt_i32(u, "exponent")?.unwrap_or(1),
                scale: opt_i32(u, "scale")?.unwrap_or(0),
                multiplier: opt_f64(u, "multiplier")?.unwrap_or(1.0),
            });
        }
    }
    let mut def = UnitDefinition::new(id, units);
    def.name = opt_attr(e, "name");
    Ok(def)
}

/// Write `<unitDefinition>`.
pub fn unit_definition_to_element(def: &UnitDefinition) -> Element {
    let mut e = Element::new("unitDefinition").with_attr("id", def.id.clone());
    if let Some(name) = &def.name {
        e.set_attr("name", name.clone());
    }
    if !def.units.is_empty() {
        let mut list = Element::new("listOfUnits");
        for u in &def.units {
            let mut unit = Element::new("unit").with_attr("kind", u.kind.name());
            if u.exponent != 1 {
                unit.set_attr("exponent", u.exponent.to_string());
            }
            if u.scale != 0 {
                unit.set_attr("scale", u.scale.to_string());
            }
            if u.multiplier != 1.0 {
                unit.set_attr("multiplier", sbml_math::writer::format_number(u.multiplier));
            }
            list.push_child(unit);
        }
        e.push_child(list);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let def = UnitDefinition::new(
            "per_mM_per_s",
            vec![
                Unit::of(UnitKind::Mole).pow(-1).scaled(-3),
                Unit::of(UnitKind::Litre),
                Unit::of(UnitKind::Second).pow(-1).times(60.0),
            ],
        )
        .named("per millimolar per second");
        let back = unit_definition_from_element(&unit_definition_to_element(&def)).unwrap();
        assert_eq!(back, def);
    }

    #[test]
    fn defaults() {
        let e = sbml_xml::parse_element(
            r#"<unitDefinition id="u"><listOfUnits><unit kind="mole"/></listOfUnits></unitDefinition>"#,
        )
        .unwrap();
        let def = unit_definition_from_element(&e).unwrap();
        assert_eq!(def.units[0].exponent, 1);
        assert_eq!(def.units[0].scale, 0);
        assert_eq!(def.units[0].multiplier, 1.0);
    }

    #[test]
    fn unknown_kind_rejected() {
        let e = sbml_xml::parse_element(
            r#"<unitDefinition id="u"><listOfUnits><unit kind="cubit"/></listOfUnits></unitDefinition>"#,
        )
        .unwrap();
        assert!(unit_definition_from_element(&e).is_err());
    }
}
