//! Reactions, species references and kinetic laws.

use sbml_math::MathExpr;
use sbml_xml::Element;

use crate::components::Parameter;
use crate::error::ModelError;
use crate::xmlutil::{bool_attr, opt_attr, opt_f64, req_attr, req_math_child, set_opt};

/// A (reactant or product) species reference with stoichiometry.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeciesReference {
    /// Referenced species id.
    pub species: String,
    /// Stoichiometric coefficient (default 1).
    pub stoichiometry: f64,
}

impl SpeciesReference {
    /// Reference with stoichiometry 1.
    pub fn new(species: impl Into<String>) -> SpeciesReference {
        SpeciesReference { species: species.into(), stoichiometry: 1.0 }
    }

    /// Builder: set the stoichiometry.
    #[must_use]
    pub fn with_stoichiometry(mut self, stoichiometry: f64) -> SpeciesReference {
        self.stoichiometry = stoichiometry;
        self
    }

    /// Read from `<speciesReference>` / `<modifierSpeciesReference>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(SpeciesReference {
            species: req_attr(e, "species")?,
            stoichiometry: opt_f64(e, "stoichiometry")?.unwrap_or(1.0),
        })
    }

    /// Write to the given element name.
    pub fn to_element(&self, name: &str) -> Element {
        let mut e = Element::new(name).with_attr("species", self.species.clone());
        if self.stoichiometry != 1.0 {
            e.set_attr("stoichiometry", sbml_math::writer::format_number(self.stoichiometry));
        }
        e
    }
}

/// A kinetic law: rate math plus local parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KineticLaw {
    /// The rate expression.
    pub math: MathExpr,
    /// Local parameters scoped to this law (shadow globals).
    pub parameters: Vec<Parameter>,
}

impl KineticLaw {
    /// A law with no local parameters.
    pub fn new(math: MathExpr) -> KineticLaw {
        KineticLaw { math, parameters: Vec::new() }
    }

    /// Read from `<kineticLaw>`.
    pub fn from_element(e: &Element, reaction_id: &str) -> Result<Self, ModelError> {
        let math = req_math_child(e, &format!("reaction {reaction_id:?} kineticLaw"))?;
        let mut parameters = Vec::new();
        if let Some(list) = e.child("listOfParameters") {
            for p in list.children_named("parameter") {
                parameters.push(Parameter::from_element(p)?);
            }
        }
        Ok(KineticLaw { math, parameters })
    }

    /// Write to `<kineticLaw>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("kineticLaw").with_child(sbml_math::to_mathml(&self.math));
        if !self.parameters.is_empty() {
            let mut list = Element::new("listOfParameters");
            for p in &self.parameters {
                list.push_child(p.to_element());
            }
            e.push_child(list);
        }
        e
    }
}

/// A chemical reaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Unique id.
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
    /// Whether the reaction runs in both directions (default true in SBML;
    /// the corpus generator always sets it explicitly).
    pub reversible: bool,
    /// SBML `fast` flag (timescale separation hint).
    pub fast: bool,
    /// Consumed species.
    pub reactants: Vec<SpeciesReference>,
    /// Produced species.
    pub products: Vec<SpeciesReference>,
    /// Catalysts/effectors appearing in the math but not consumed.
    pub modifiers: Vec<SpeciesReference>,
    /// Rate law.
    pub kinetic_law: Option<KineticLaw>,
}

impl Reaction {
    /// An irreversible reaction with no participants yet.
    pub fn new(id: impl Into<String>) -> Reaction {
        Reaction {
            id: id.into(),
            name: None,
            reversible: false,
            fast: false,
            reactants: Vec::new(),
            products: Vec::new(),
            modifiers: Vec::new(),
            kinetic_law: None,
        }
    }

    /// Total number of reactant molecules (stoichiometry sum, rounded), the
    /// input to the paper's Fig. 6 reaction-order classification.
    pub fn reactant_molecule_count(&self) -> u32 {
        self.reactants.iter().map(|r| r.stoichiometry.max(0.0)).sum::<f64>().round() as u32
    }

    /// Read from `<reaction>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let id = req_attr(e, "id")?;
        let mut reaction = Reaction {
            id: id.clone(),
            name: opt_attr(e, "name"),
            reversible: bool_attr(e, "reversible", true)?,
            fast: bool_attr(e, "fast", false)?,
            reactants: Vec::new(),
            products: Vec::new(),
            modifiers: Vec::new(),
            kinetic_law: None,
        };
        if let Some(list) = e.child("listOfReactants") {
            for r in list.children_named("speciesReference") {
                reaction.reactants.push(SpeciesReference::from_element(r)?);
            }
        }
        if let Some(list) = e.child("listOfProducts") {
            for p in list.children_named("speciesReference") {
                reaction.products.push(SpeciesReference::from_element(p)?);
            }
        }
        if let Some(list) = e.child("listOfModifiers") {
            for m in list.children_named("modifierSpeciesReference") {
                reaction.modifiers.push(SpeciesReference::from_element(m)?);
            }
        }
        if let Some(kl) = e.child("kineticLaw") {
            reaction.kinetic_law = Some(KineticLaw::from_element(kl, &id)?);
        }
        Ok(reaction)
    }

    /// Write to `<reaction>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("reaction").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        e.set_attr("reversible", if self.reversible { "true" } else { "false" });
        if self.fast {
            e.set_attr("fast", "true");
        }
        let push_list = |e: &mut Element, list_name: &str, refs: &[SpeciesReference], tag: &str| {
            if !refs.is_empty() {
                let mut list = Element::new(list_name);
                for r in refs {
                    list.push_child(r.to_element(tag));
                }
                e.push_child(list);
            }
        };
        push_list(&mut e, "listOfReactants", &self.reactants, "speciesReference");
        push_list(&mut e, "listOfProducts", &self.products, "speciesReference");
        push_list(&mut e, "listOfModifiers", &self.modifiers, "modifierSpeciesReference");
        if let Some(kl) = &self.kinetic_law {
            e.push_child(kl.to_element());
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_math::infix;
    use sbml_xml::parse_element;

    fn mass_action() -> Reaction {
        let mut r = Reaction::new("r1");
        r.name = Some("A to B".into());
        r.reactants.push(SpeciesReference::new("A"));
        r.products.push(SpeciesReference::new("B").with_stoichiometry(2.0));
        r.modifiers.push(SpeciesReference::new("E"));
        r.kinetic_law = Some(KineticLaw::new(infix::parse("k1*A*E").unwrap()));
        r
    }

    #[test]
    fn reaction_round_trip() {
        let r = mass_action();
        let back = Reaction::from_element(&r.to_element()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn kinetic_law_with_local_parameters() {
        let mut r = mass_action();
        r.kinetic_law.as_mut().unwrap().parameters.push(Parameter::new("k1", 0.7));
        let back = Reaction::from_element(&r.to_element()).unwrap();
        assert_eq!(back.kinetic_law.unwrap().parameters[0].value, Some(0.7));
    }

    #[test]
    fn defaults_from_sparse_xml() {
        let e = parse_element(r#"<reaction id="r"/>"#).unwrap();
        let r = Reaction::from_element(&e).unwrap();
        assert!(r.reversible, "SBML default is reversible=true");
        assert!(!r.fast);
        assert!(r.reactants.is_empty());
        assert!(r.kinetic_law.is_none());
    }

    #[test]
    fn stoichiometry_default_one() {
        let e = parse_element(r#"<speciesReference species="X"/>"#).unwrap();
        assert_eq!(SpeciesReference::from_element(&e).unwrap().stoichiometry, 1.0);
    }

    #[test]
    fn reactant_molecule_count() {
        let mut r = Reaction::new("r");
        assert_eq!(r.reactant_molecule_count(), 0);
        r.reactants.push(SpeciesReference::new("A"));
        assert_eq!(r.reactant_molecule_count(), 1);
        r.reactants.push(SpeciesReference::new("B"));
        assert_eq!(r.reactant_molecule_count(), 2);
        r.reactants[1].stoichiometry = 2.0;
        assert_eq!(r.reactant_molecule_count(), 3);
    }

    #[test]
    fn kinetic_law_requires_math() {
        let e = parse_element(r#"<reaction id="r"><kineticLaw/></reaction>"#).unwrap();
        assert!(Reaction::from_element(&e).is_err());
    }
}
