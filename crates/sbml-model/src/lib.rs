//! An SBML Level-2 style data model for biochemical networks.
//!
//! This is the substrate the EDBT 2010 paper's merge algorithm operates on:
//! a [`Model`] holds the eleven component lists the paper's Fig. 4 pipeline
//! composes, in the same order — function definitions, unit definitions,
//! compartment types, species types, compartments, species, parameters,
//! (initial assignments,) rules, constraints, reactions and events.
//!
//! * [`model`] — the [`Model`] container and size metrics (`nodes`/`edges`
//!   as used for Figure 8's model ordering),
//! * [`components`] — compartments, species, parameters and the two `*Type`
//!   kinds,
//! * [`reaction`] — reactions, species references, kinetic laws with local
//!   parameters,
//! * [`rule`], [`event`], [`function`] — the remaining math-bearing kinds,
//! * [`document`] — SBML XML reading/writing (`<sbml><model>...`),
//! * [`validate`](mod@validate) — the semantic checks a merged model must satisfy,
//! * [`builder`] — an ergonomic construction API used by the examples and
//!   the synthetic corpus generator.
//!
//! # Example
//!
//! ```
//! use sbml_model::builder::ModelBuilder;
//!
//! // Paper Fig. 1(a): A -> B <-> C with rate constants k1, k2, k3.
//! let model = ModelBuilder::new("fig1a")
//!     .compartment("cell", 1.0)
//!     .species("A", 10.0)
//!     .species("B", 0.0)
//!     .species("C", 0.0)
//!     .parameter("k1", 0.1)
//!     .parameter("k2", 0.05)
//!     .parameter("k3", 0.02)
//!     .reaction("r1", &["A"], &["B"], "k1*A")
//!     .reaction("r2", &["B"], &["C"], "k2*B")
//!     .reaction("r3", &["C"], &["B"], "k3*C")
//!     .build();
//! assert_eq!(model.nodes(), 3);
//! assert_eq!(model.edges(), 3);
//!
//! // Round-trip through SBML XML.
//! let xml = sbml_model::document::write_sbml(&model);
//! let back = sbml_model::document::parse_sbml(&xml).unwrap();
//! assert_eq!(back.species.len(), 3);
//! ```

pub mod builder;
pub(crate) mod xmlutil;
pub mod units_xml;
pub mod components;
pub mod document;
pub mod error;
pub mod event;
pub mod function;
pub mod model;
pub mod reaction;
pub mod rule;
pub mod validate;

pub use components::{Compartment, CompartmentType, Parameter, Species, SpeciesType};
pub use document::{parse_sbml, write_sbml, SbmlDocument};
pub use error::ModelError;
pub use event::{Event, EventAssignment};
pub use function::FunctionDefinition;
pub use model::{InitialAssignment, Model};
pub use reaction::{KineticLaw, Reaction, SpeciesReference};
pub use rule::Rule;
pub use validate::{validate, Severity, ValidationIssue};
