//! Errors raised while reading SBML documents.

use std::fmt;

use sbml_math::MathError;
use sbml_xml::XmlError;

/// Errors from parsing an SBML document into a [`crate::Model`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The underlying XML was not well formed.
    Xml(XmlError),
    /// A MathML block failed to parse.
    Math {
        /// Where the math lives (e.g. `reaction 'r1' kineticLaw`).
        context: String,
        /// The underlying math error.
        source: MathError,
    },
    /// A structural problem (missing required element/attribute, bad value).
    Structure {
        /// Description of the problem.
        detail: String,
    },
}

impl ModelError {
    /// Convenience constructor for structural errors.
    pub fn structure(detail: impl Into<String>) -> ModelError {
        ModelError::Structure { detail: detail.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Xml(e) => write!(f, "XML error: {e}"),
            ModelError::Math { context, source } => {
                write!(f, "MathML error in {context}: {source}")
            }
            ModelError::Structure { detail } => write!(f, "SBML structure error: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Xml(e) => Some(e),
            ModelError::Math { source, .. } => Some(source),
            ModelError::Structure { .. } => None,
        }
    }
}

impl From<XmlError> for ModelError {
    fn from(e: XmlError) -> Self {
        ModelError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = ModelError::structure("species 'A' missing compartment");
        assert!(e.to_string().contains("species 'A'"));
        assert!(e.source().is_none());

        let xml = ModelError::Xml(XmlError::NoRootElement);
        assert!(xml.source().is_some());

        let math = ModelError::Math {
            context: "reaction 'r1'".into(),
            source: MathError::NoBranchTaken,
        };
        assert!(math.to_string().contains("r1"));
        assert!(math.source().is_some());
    }
}
