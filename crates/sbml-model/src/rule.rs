//! Rules: algebraic, assignment and rate rules.

use sbml_math::MathExpr;
use sbml_xml::Element;

use crate::error::ModelError;
use crate::xmlutil::{req_attr, req_math_child};

/// An SBML rule constraining model variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// `0 = math` — an implicit constraint.
    Algebraic {
        /// The expression equal to zero.
        math: MathExpr,
    },
    /// `variable = math` — holds at all times.
    Assignment {
        /// The determined variable (species, parameter or compartment id).
        variable: String,
        /// The defining expression.
        math: MathExpr,
    },
    /// `d(variable)/dt = math`.
    Rate {
        /// The driven variable.
        variable: String,
        /// The derivative expression.
        math: MathExpr,
    },
}

impl Rule {
    /// The variable determined by this rule, if any.
    pub fn variable(&self) -> Option<&str> {
        match self {
            Rule::Algebraic { .. } => None,
            Rule::Assignment { variable, .. } | Rule::Rate { variable, .. } => Some(variable),
        }
    }

    /// The rule's math.
    pub fn math(&self) -> &MathExpr {
        match self {
            Rule::Algebraic { math } | Rule::Assignment { math, .. } | Rule::Rate { math, .. } => {
                math
            }
        }
    }

    /// Mutable access to the rule's math (for merge-time renaming).
    pub fn math_mut(&mut self) -> &mut MathExpr {
        match self {
            Rule::Algebraic { math } | Rule::Assignment { math, .. } | Rule::Rate { math, .. } => {
                math
            }
        }
    }

    /// Read from one of the three rule elements.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        match e.name.as_str() {
            "algebraicRule" => {
                Ok(Rule::Algebraic { math: req_math_child(e, "algebraicRule")? })
            }
            "assignmentRule" => Ok(Rule::Assignment {
                variable: req_attr(e, "variable")?,
                math: req_math_child(e, "assignmentRule")?,
            }),
            "rateRule" => Ok(Rule::Rate {
                variable: req_attr(e, "variable")?,
                math: req_math_child(e, "rateRule")?,
            }),
            other => Err(ModelError::structure(format!("unknown rule element <{other}>"))),
        }
    }

    /// Write to the appropriate rule element.
    pub fn to_element(&self) -> Element {
        match self {
            Rule::Algebraic { math } => {
                Element::new("algebraicRule").with_child(sbml_math::to_mathml(math))
            }
            Rule::Assignment { variable, math } => Element::new("assignmentRule")
                .with_attr("variable", variable.clone())
                .with_child(sbml_math::to_mathml(math)),
            Rule::Rate { variable, math } => Element::new("rateRule")
                .with_attr("variable", variable.clone())
                .with_child(sbml_math::to_mathml(math)),
        }
    }
}

/// A constraint: a condition that should remain true during simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The condition.
    pub math: MathExpr,
    /// Message shown when violated.
    pub message: Option<String>,
}

impl Constraint {
    /// Read from `<constraint>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let math = req_math_child(e, "constraint")?;
        let message = e.child("message").map(|m| m.text().trim().to_owned());
        Ok(Constraint { math, message })
    }

    /// Write to `<constraint>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("constraint").with_child(sbml_math::to_mathml(&self.math));
        if let Some(msg) = &self.message {
            e.push_child(Element::new("message").with_text(msg.clone()));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_math::infix;

    #[test]
    fn rule_round_trips() {
        let rules = vec![
            Rule::Algebraic { math: infix::parse("x + y - 10").unwrap() },
            Rule::Assignment { variable: "x".into(), math: infix::parse("2*y").unwrap() },
            Rule::Rate { variable: "y".into(), math: infix::parse("-0.1*y").unwrap() },
        ];
        for rule in rules {
            let back = Rule::from_element(&rule.to_element()).unwrap();
            assert_eq!(back, rule);
        }
    }

    #[test]
    fn rule_accessors() {
        let r = Rule::Assignment { variable: "x".into(), math: infix::parse("1").unwrap() };
        assert_eq!(r.variable(), Some("x"));
        assert_eq!(r.math(), &sbml_math::MathExpr::num(1.0));
        let a = Rule::Algebraic { math: infix::parse("1").unwrap() };
        assert_eq!(a.variable(), None);
    }

    #[test]
    fn math_mut_allows_rewrite() {
        let mut r = Rule::Rate { variable: "y".into(), math: infix::parse("k*y").unwrap() };
        let mut map = std::collections::HashMap::new();
        map.insert("k".to_owned(), "k_renamed".to_owned());
        *r.math_mut() = sbml_math::rewrite::rename(r.math(), &map);
        assert_eq!(r.math(), &infix::parse("k_renamed*y").unwrap());
    }

    #[test]
    fn constraint_round_trip() {
        let c = Constraint {
            math: infix::parse("S >= 0").unwrap(),
            message: Some("S must stay non-negative".into()),
        };
        let back = Constraint::from_element(&c.to_element()).unwrap();
        assert_eq!(back, c);

        let bare = Constraint { math: infix::parse("x < 10").unwrap(), message: None };
        assert_eq!(Constraint::from_element(&bare.to_element()).unwrap(), bare);
    }

    #[test]
    fn unknown_rule_rejected() {
        let e = sbml_xml::parse_element("<weirdRule/>").unwrap();
        assert!(Rule::from_element(&e).is_err());
    }
}
