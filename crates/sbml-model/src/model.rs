//! The [`Model`] container — the unit of composition in the paper.

use std::collections::BTreeSet;

use sbml_math::MathExpr;
use sbml_units::UnitDefinition;
use sbml_xml::Element;

use crate::components::{Compartment, CompartmentType, Parameter, Species, SpeciesType};
use crate::error::ModelError;
use crate::event::Event;
use crate::function::FunctionDefinition;
use crate::reaction::Reaction;
use crate::rule::{Constraint, Rule};
use crate::units_xml::{unit_definition_from_element, unit_definition_to_element};
use crate::xmlutil::{opt_attr, req_attr, req_math_child, set_opt};

/// An initial assignment: `symbol := math` evaluated at time zero.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialAssignment {
    /// The assigned symbol (species, parameter or compartment id).
    pub symbol: String,
    /// The initial-value expression.
    pub math: MathExpr,
}

impl InitialAssignment {
    /// Read from `<initialAssignment>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(InitialAssignment {
            symbol: req_attr(e, "symbol")?,
            math: req_math_child(e, "initialAssignment")?,
        })
    }

    /// Write to `<initialAssignment>`.
    pub fn to_element(&self) -> Element {
        Element::new("initialAssignment")
            .with_attr("symbol", self.symbol.clone())
            .with_child(sbml_math::to_mathml(&self.math))
    }
}

/// A biochemical network model: the eleven component lists merged by the
/// paper's Fig. 4 pipeline, in pipeline order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    /// Model id.
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
    /// Named reusable functions.
    pub function_definitions: Vec<FunctionDefinition>,
    /// Unit definitions.
    pub unit_definitions: Vec<UnitDefinition>,
    /// Compartment types.
    pub compartment_types: Vec<CompartmentType>,
    /// Species types.
    pub species_types: Vec<SpeciesType>,
    /// Compartments.
    pub compartments: Vec<Compartment>,
    /// Species.
    pub species: Vec<Species>,
    /// Global parameters.
    pub parameters: Vec<Parameter>,
    /// Initial assignments (time-zero math).
    pub initial_assignments: Vec<InitialAssignment>,
    /// Rules.
    pub rules: Vec<Rule>,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Reactions.
    pub reactions: Vec<Reaction>,
    /// Events.
    pub events: Vec<Event>,
}

impl Model {
    /// An empty model with the given id.
    pub fn new(id: impl Into<String>) -> Model {
        Model { id: id.into(), ..Model::default() }
    }

    /// Network nodes = species count (paper: "size = nodes + edges", with
    /// Fig. 1's three-species model having 3 nodes).
    pub fn nodes(&self) -> usize {
        self.species.len()
    }

    /// Network edges = reactant→product arcs summed over reactions
    /// (Fig. 1's three simple reactions = 3 edges), plus one regulatory
    /// modifier→product arc per (modifier, product) pair — the edges
    /// `bio_graph::extract` emits so matching sees regulatory structure.
    pub fn edges(&self) -> usize {
        self.reactions
            .iter()
            .map(|r| {
                (r.reactants.len() * r.products.len()).max(1)
                    + r.modifiers.len() * r.products.len()
            })
            .sum()
    }

    /// The paper's model size metric: nodes + edges.
    pub fn size(&self) -> usize {
        self.nodes() + self.edges()
    }

    /// Total component count across all eleven lists (used to gauge merge
    /// workload; the merge is linear in this count per lookup).
    pub fn component_count(&self) -> usize {
        self.function_definitions.len()
            + self.unit_definitions.len()
            + self.compartment_types.len()
            + self.species_types.len()
            + self.compartments.len()
            + self.species.len()
            + self.parameters.len()
            + self.initial_assignments.len()
            + self.rules.len()
            + self.constraints.len()
            + self.reactions.len()
            + self.events.len()
    }

    /// True when every component list is empty.
    pub fn is_empty(&self) -> bool {
        self.component_count() == 0
    }

    /// Look up a species by id.
    pub fn species_by_id(&self, id: &str) -> Option<&Species> {
        self.species.iter().find(|s| s.id == id)
    }

    /// Look up a global parameter by id.
    pub fn parameter_by_id(&self, id: &str) -> Option<&Parameter> {
        self.parameters.iter().find(|p| p.id == id)
    }

    /// Look up a compartment by id.
    pub fn compartment_by_id(&self, id: &str) -> Option<&Compartment> {
        self.compartments.iter().find(|c| c.id == id)
    }

    /// Look up a reaction by id.
    pub fn reaction_by_id(&self, id: &str) -> Option<&Reaction> {
        self.reactions.iter().find(|r| r.id == id)
    }

    /// Look up a function definition by id.
    pub fn function_by_id(&self, id: &str) -> Option<&FunctionDefinition> {
        self.function_definitions.iter().find(|f| f.id == id)
    }

    /// All ids claimed in the global SBML namespace (function definitions,
    /// unit definitions, types, compartments, species, parameters,
    /// reactions, events).
    pub fn global_ids(&self) -> BTreeSet<String> {
        let mut ids = BTreeSet::new();
        ids.extend(self.function_definitions.iter().map(|x| x.id.clone()));
        ids.extend(self.unit_definitions.iter().map(|x| x.id.clone()));
        ids.extend(self.compartment_types.iter().map(|x| x.id.clone()));
        ids.extend(self.species_types.iter().map(|x| x.id.clone()));
        ids.extend(self.compartments.iter().map(|x| x.id.clone()));
        ids.extend(self.species.iter().map(|x| x.id.clone()));
        ids.extend(self.parameters.iter().map(|x| x.id.clone()));
        ids.extend(self.reactions.iter().map(|x| x.id.clone()));
        ids.extend(self.events.iter().filter_map(|x| x.id.clone()));
        ids
    }

    /// Generate an id not yet used in the model, from a base name
    /// (`base`, `base_1`, `base_2`, ...). Used when merge renames clashes.
    pub fn fresh_id(&self, base: &str) -> String {
        let ids = self.global_ids();
        if !ids.contains(base) {
            return base.to_owned();
        }
        for n in 1.. {
            let candidate = format!("{base}_{n}");
            if !ids.contains(&candidate) {
                return candidate;
            }
        }
        unreachable!("id space exhausted")
    }

    /// Read from a `<model>` element.
    pub fn from_element(e: &Element) -> Result<Model, ModelError> {
        if e.name != "model" {
            return Err(ModelError::structure(format!("expected <model>, found <{}>", e.name)));
        }
        let mut model = Model {
            id: opt_attr(e, "id").unwrap_or_default(),
            name: opt_attr(e, "name"),
            ..Model::default()
        };
        if let Some(list) = e.child("listOfFunctionDefinitions") {
            for c in list.children_named("functionDefinition") {
                model.function_definitions.push(FunctionDefinition::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfUnitDefinitions") {
            for c in list.children_named("unitDefinition") {
                model.unit_definitions.push(unit_definition_from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfCompartmentTypes") {
            for c in list.children_named("compartmentType") {
                model.compartment_types.push(CompartmentType::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfSpeciesTypes") {
            for c in list.children_named("speciesType") {
                model.species_types.push(SpeciesType::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfCompartments") {
            for c in list.children_named("compartment") {
                model.compartments.push(Compartment::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfSpecies") {
            for c in list.children_named("species") {
                model.species.push(Species::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfParameters") {
            for c in list.children_named("parameter") {
                model.parameters.push(Parameter::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfInitialAssignments") {
            for c in list.children_named("initialAssignment") {
                model.initial_assignments.push(InitialAssignment::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfRules") {
            for c in list.child_elements() {
                model.rules.push(Rule::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfConstraints") {
            for c in list.children_named("constraint") {
                model.constraints.push(Constraint::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfReactions") {
            for c in list.children_named("reaction") {
                model.reactions.push(Reaction::from_element(c)?);
            }
        }
        if let Some(list) = e.child("listOfEvents") {
            for c in list.children_named("event") {
                model.events.push(Event::from_element(c)?);
            }
        }
        Ok(model)
    }

    /// Write to a `<model>` element.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("model");
        if !self.id.is_empty() {
            e.set_attr("id", self.id.clone());
        }
        set_opt(&mut e, "name", &self.name);

        fn push_list<T>(
            parent: &mut Element,
            list_name: &str,
            items: &[T],
            to_el: impl Fn(&T) -> Element,
        ) {
            if !items.is_empty() {
                let mut list = Element::new(list_name);
                for item in items {
                    list.push_child(to_el(item));
                }
                parent.push_child(list);
            }
        }

        push_list(&mut e, "listOfFunctionDefinitions", &self.function_definitions, |f| {
            f.to_element()
        });
        push_list(&mut e, "listOfUnitDefinitions", &self.unit_definitions, |u| {
            unit_definition_to_element(u)
        });
        push_list(&mut e, "listOfCompartmentTypes", &self.compartment_types, |c| c.to_element());
        push_list(&mut e, "listOfSpeciesTypes", &self.species_types, |s| s.to_element());
        push_list(&mut e, "listOfCompartments", &self.compartments, |c| c.to_element());
        push_list(&mut e, "listOfSpecies", &self.species, |s| s.to_element());
        push_list(&mut e, "listOfParameters", &self.parameters, |p| p.to_element());
        push_list(&mut e, "listOfInitialAssignments", &self.initial_assignments, |i| {
            i.to_element()
        });
        push_list(&mut e, "listOfRules", &self.rules, |r| r.to_element());
        push_list(&mut e, "listOfConstraints", &self.constraints, |c| c.to_element());
        push_list(&mut e, "listOfReactions", &self.reactions, |r| r.to_element());
        push_list(&mut e, "listOfEvents", &self.events, |ev| ev.to_element());
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    fn fig1a() -> Model {
        ModelBuilder::new("fig1a")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .species("C", 0.0)
            .parameter("k1", 0.1)
            .parameter("k2", 0.05)
            .parameter("k3", 0.02)
            .reaction("r1", &["A"], &["B"], "k1*A")
            .reaction("r2", &["B"], &["C"], "k2*B")
            .reaction("r3", &["C"], &["B"], "k3*C")
            .build()
    }

    #[test]
    fn size_metrics_match_paper_fig1() {
        let m = fig1a();
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.edges(), 3);
        assert_eq!(m.size(), 6);
    }

    #[test]
    fn element_round_trip() {
        let m = fig1a();
        let back = Model::from_element(&m.to_element()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_model() {
        let m = Model::new("empty");
        assert!(m.is_empty());
        assert_eq!(m.size(), 0);
        let back = Model::from_element(&m.to_element()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn lookups() {
        let m = fig1a();
        assert!(m.species_by_id("A").is_some());
        assert!(m.species_by_id("Z").is_none());
        assert!(m.parameter_by_id("k1").is_some());
        assert!(m.compartment_by_id("cell").is_some());
        assert!(m.reaction_by_id("r2").is_some());
    }

    #[test]
    fn global_ids_and_fresh_id() {
        let m = fig1a();
        let ids = m.global_ids();
        assert!(ids.contains("A"));
        assert!(ids.contains("k1"));
        assert!(ids.contains("cell"));
        assert!(ids.contains("r1"));
        assert_eq!(m.fresh_id("newthing"), "newthing");
        assert_eq!(m.fresh_id("A"), "A_1");
    }

    #[test]
    fn fresh_id_skips_taken_suffixes() {
        let mut m = Model::new("m");
        m.parameters.push(Parameter::new("k", 1.0));
        m.parameters.push(Parameter::new("k_1", 1.0));
        assert_eq!(m.fresh_id("k"), "k_2");
    }

    #[test]
    fn component_count() {
        let m = fig1a();
        // 1 compartment + 3 species + 3 parameters + 3 reactions = 10
        assert_eq!(m.component_count(), 10);
    }

    #[test]
    fn initial_assignment_round_trip() {
        let ia = InitialAssignment {
            symbol: "A".into(),
            math: sbml_math::infix::parse("2*k1").unwrap(),
        };
        assert_eq!(InitialAssignment::from_element(&ia.to_element()).unwrap(), ia);
    }

    #[test]
    fn edges_counts_fan_out() {
        // A + B -> C + D contributes reactants*products = 4 edges.
        let m = ModelBuilder::new("fan")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 1.0)
            .species("C", 0.0)
            .species("D", 0.0)
            .parameter("k", 1.0)
            .reaction("r", &["A", "B"], &["C", "D"], "k*A*B")
            .build();
        assert_eq!(m.edges(), 4);
    }

    #[test]
    fn edges_count_modifier_arcs() {
        // E modifies A -> B: one conversion arc plus one regulatory arc.
        let mut m = ModelBuilder::new("enzyme")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .species("E", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &["B"], "k*E*A")
            .build();
        m.reactions[0].modifiers.push(crate::SpeciesReference::new("E"));
        assert_eq!(m.edges(), 2);
    }

    #[test]
    fn reaction_with_no_products_counts_one_edge() {
        // Degradation A -> (nothing) still counts as one edge.
        let m = ModelBuilder::new("deg")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &[], "k*A")
            .build();
        assert_eq!(m.edges(), 1);
    }

    #[test]
    fn non_model_element_rejected() {
        let e = sbml_xml::parse_element("<notmodel/>").unwrap();
        assert!(Model::from_element(&e).is_err());
    }
}
