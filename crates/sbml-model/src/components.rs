//! Non-math-bearing model components: compartment/species types,
//! compartments, species and parameters.

use sbml_xml::Element;

use crate::error::ModelError;
use crate::xmlutil::{bool_attr, opt_attr, opt_f64, req_attr, set_opt, set_opt_f64};

/// A compartment type (SBML L2 grouping label for compartments).
#[derive(Debug, Clone, PartialEq)]
pub struct CompartmentType {
    /// Unique id.
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
}

impl CompartmentType {
    /// Read from `<compartmentType>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(CompartmentType { id: req_attr(e, "id")?, name: opt_attr(e, "name") })
    }

    /// Write to `<compartmentType>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("compartmentType").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        e
    }
}

/// A species type (SBML L2 grouping label for species).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeciesType {
    /// Unique id.
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
}

impl SpeciesType {
    /// Read from `<speciesType>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(SpeciesType { id: req_attr(e, "id")?, name: opt_attr(e, "name") })
    }

    /// Write to `<speciesType>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("speciesType").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        e
    }
}

/// A compartment: a bounded volume species live in.
#[derive(Debug, Clone, PartialEq)]
pub struct Compartment {
    /// Unique id.
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
    /// Optional reference to a [`CompartmentType`].
    pub compartment_type: Option<String>,
    /// Spatial dimensions (0–3; default 3).
    pub spatial_dimensions: u32,
    /// Size (volume for 3-D compartments), if set.
    pub size: Option<f64>,
    /// Units id for the size.
    pub units: Option<String>,
    /// Enclosing compartment id.
    pub outside: Option<String>,
    /// Whether the size is fixed over time (default true).
    pub constant: bool,
}

impl Compartment {
    /// A 3-D constant compartment of the given size.
    pub fn new(id: impl Into<String>, size: f64) -> Compartment {
        Compartment {
            id: id.into(),
            name: None,
            compartment_type: None,
            spatial_dimensions: 3,
            size: Some(size),
            units: None,
            outside: None,
            constant: true,
        }
    }

    /// Read from `<compartment>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let spatial_dimensions = match e.attr("spatialDimensions") {
            None => 3,
            Some(raw) => raw.parse::<u32>().map_err(|_| {
                ModelError::structure(format!("compartment spatialDimensions={raw:?}"))
            })?,
        };
        if spatial_dimensions > 3 {
            return Err(ModelError::structure(format!(
                "compartment spatialDimensions={spatial_dimensions} > 3"
            )));
        }
        Ok(Compartment {
            id: req_attr(e, "id")?,
            name: opt_attr(e, "name"),
            compartment_type: opt_attr(e, "compartmentType"),
            spatial_dimensions,
            size: opt_f64(e, "size")?,
            units: opt_attr(e, "units"),
            outside: opt_attr(e, "outside"),
            constant: bool_attr(e, "constant", true)?,
        })
    }

    /// Write to `<compartment>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("compartment").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        set_opt(&mut e, "compartmentType", &self.compartment_type);
        if self.spatial_dimensions != 3 {
            e.set_attr("spatialDimensions", self.spatial_dimensions.to_string());
        }
        set_opt_f64(&mut e, "size", self.size);
        set_opt(&mut e, "units", &self.units);
        set_opt(&mut e, "outside", &self.outside);
        if !self.constant {
            e.set_attr("constant", "false");
        }
        e
    }
}

/// A chemical species.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Unique id.
    pub id: String,
    /// Optional display name (the paper's synonym matching uses this).
    pub name: Option<String>,
    /// Optional reference to a [`SpeciesType`].
    pub species_type: Option<String>,
    /// Compartment the species lives in.
    pub compartment: String,
    /// Initial amount (mutually exclusive with concentration).
    pub initial_amount: Option<f64>,
    /// Initial concentration (mutually exclusive with amount).
    pub initial_concentration: Option<f64>,
    /// Units id for the substance.
    pub substance_units: Option<String>,
    /// Interpret the species value as an amount even in concentration
    /// contexts (default false).
    pub has_only_substance_units: bool,
    /// Whether the species sits on the boundary (not changed by reactions).
    pub boundary_condition: bool,
    /// Electrical charge (deprecated in later SBML levels, still common).
    pub charge: Option<i32>,
    /// Whether the value is fixed over time (default false).
    pub constant: bool,
}

impl Species {
    /// A non-constant species with an initial amount.
    pub fn new(id: impl Into<String>, compartment: impl Into<String>, amount: f64) -> Species {
        Species {
            id: id.into(),
            name: None,
            species_type: None,
            compartment: compartment.into(),
            initial_amount: Some(amount),
            initial_concentration: None,
            substance_units: None,
            has_only_substance_units: false,
            boundary_condition: false,
            charge: None,
            constant: false,
        }
    }

    /// The initial value (amount preferred, then concentration), if any.
    pub fn initial_value(&self) -> Option<f64> {
        self.initial_amount.or(self.initial_concentration)
    }

    /// Read from `<species>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let initial_amount = opt_f64(e, "initialAmount")?;
        let initial_concentration = opt_f64(e, "initialConcentration")?;
        if initial_amount.is_some() && initial_concentration.is_some() {
            return Err(ModelError::structure(format!(
                "species {:?} sets both initialAmount and initialConcentration",
                e.attr("id").unwrap_or("?")
            )));
        }
        Ok(Species {
            id: req_attr(e, "id")?,
            name: opt_attr(e, "name"),
            species_type: opt_attr(e, "speciesType"),
            compartment: req_attr(e, "compartment")?,
            initial_amount,
            initial_concentration,
            substance_units: opt_attr(e, "substanceUnits"),
            has_only_substance_units: bool_attr(e, "hasOnlySubstanceUnits", false)?,
            boundary_condition: bool_attr(e, "boundaryCondition", false)?,
            charge: crate::xmlutil::opt_i32(e, "charge")?,
            constant: bool_attr(e, "constant", false)?,
        })
    }

    /// Write to `<species>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("species")
            .with_attr("id", self.id.clone())
            .with_attr("compartment", self.compartment.clone());
        set_opt(&mut e, "name", &self.name);
        set_opt(&mut e, "speciesType", &self.species_type);
        set_opt_f64(&mut e, "initialAmount", self.initial_amount);
        set_opt_f64(&mut e, "initialConcentration", self.initial_concentration);
        set_opt(&mut e, "substanceUnits", &self.substance_units);
        if self.has_only_substance_units {
            e.set_attr("hasOnlySubstanceUnits", "true");
        }
        if self.boundary_condition {
            e.set_attr("boundaryCondition", "true");
        }
        if let Some(charge) = self.charge {
            e.set_attr("charge", charge.to_string());
        }
        if self.constant {
            e.set_attr("constant", "true");
        }
        e
    }
}

/// A global or local (kinetic-law) parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Unique id (global scope, or kinetic-law scope for local parameters).
    pub id: String,
    /// Optional display name.
    pub name: Option<String>,
    /// Numeric value, if set directly.
    pub value: Option<f64>,
    /// Units id.
    pub units: Option<String>,
    /// Whether the value is fixed over time (default true).
    pub constant: bool,
}

impl Parameter {
    /// A constant parameter with a value.
    pub fn new(id: impl Into<String>, value: f64) -> Parameter {
        Parameter { id: id.into(), name: None, value: Some(value), units: None, constant: true }
    }

    /// Read from `<parameter>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(Parameter {
            id: req_attr(e, "id")?,
            name: opt_attr(e, "name"),
            value: opt_f64(e, "value")?,
            units: opt_attr(e, "units"),
            constant: bool_attr(e, "constant", true)?,
        })
    }

    /// Write to `<parameter>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("parameter").with_attr("id", self.id.clone());
        set_opt(&mut e, "name", &self.name);
        set_opt_f64(&mut e, "value", self.value);
        set_opt(&mut e, "units", &self.units);
        if !self.constant {
            e.set_attr("constant", "false");
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_xml::parse_element;

    #[test]
    fn compartment_round_trip() {
        let c = Compartment {
            id: "cell".into(),
            name: Some("Cell".into()),
            compartment_type: Some("ct".into()),
            spatial_dimensions: 2,
            size: Some(1.5),
            units: Some("volume".into()),
            outside: Some("env".into()),
            constant: false,
        };
        let back = Compartment::from_element(&c.to_element()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn compartment_defaults() {
        let e = parse_element(r#"<compartment id="c"/>"#).unwrap();
        let c = Compartment::from_element(&e).unwrap();
        assert_eq!(c.spatial_dimensions, 3);
        assert!(c.constant);
        assert_eq!(c.size, None);
    }

    #[test]
    fn compartment_bad_dimensions() {
        let e = parse_element(r#"<compartment id="c" spatialDimensions="4"/>"#).unwrap();
        assert!(Compartment::from_element(&e).is_err());
        let e2 = parse_element(r#"<compartment id="c" spatialDimensions="-1"/>"#).unwrap();
        assert!(Compartment::from_element(&e2).is_err());
    }

    #[test]
    fn species_round_trip() {
        let s = Species {
            id: "glc".into(),
            name: Some("glucose".into()),
            species_type: Some("sugar".into()),
            compartment: "cell".into(),
            initial_amount: None,
            initial_concentration: Some(5.5),
            substance_units: Some("mole".into()),
            has_only_substance_units: true,
            boundary_condition: true,
            charge: Some(-2),
            constant: true,
        };
        let back = Species::from_element(&s.to_element()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn species_requires_compartment() {
        let e = parse_element(r#"<species id="A"/>"#).unwrap();
        assert!(Species::from_element(&e).is_err());
    }

    #[test]
    fn species_amount_and_concentration_exclusive() {
        let e = parse_element(
            r#"<species id="A" compartment="c" initialAmount="1" initialConcentration="2"/>"#,
        )
        .unwrap();
        assert!(Species::from_element(&e).is_err());
    }

    #[test]
    fn species_initial_value_preference() {
        let mut s = Species::new("A", "c", 3.0);
        assert_eq!(s.initial_value(), Some(3.0));
        s.initial_amount = None;
        s.initial_concentration = Some(0.5);
        assert_eq!(s.initial_value(), Some(0.5));
        s.initial_concentration = None;
        assert_eq!(s.initial_value(), None);
    }

    #[test]
    fn parameter_round_trip() {
        let p = Parameter {
            id: "k1".into(),
            name: Some("rate".into()),
            value: Some(0.25),
            units: Some("per_second".into()),
            constant: false,
        };
        assert_eq!(Parameter::from_element(&p.to_element()).unwrap(), p);
    }

    #[test]
    fn parameter_defaults() {
        let e = parse_element(r#"<parameter id="k"/>"#).unwrap();
        let p = Parameter::from_element(&e).unwrap();
        assert!(p.constant);
        assert_eq!(p.value, None);
    }

    #[test]
    fn types_round_trip() {
        let ct = CompartmentType { id: "ct".into(), name: Some("organelles".into()) };
        assert_eq!(CompartmentType::from_element(&ct.to_element()).unwrap(), ct);
        let st = SpeciesType { id: "st".into(), name: None };
        assert_eq!(SpeciesType::from_element(&st.to_element()).unwrap(), st);
    }
}
