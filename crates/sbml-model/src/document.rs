//! SBML document wrapper: `<sbml level="2" version="4"><model .../></sbml>`.

use sbml_xml::{Document, Element};

use crate::error::ModelError;
use crate::model::Model;

/// The SBML Level 2 namespace (version 4).
pub const SBML_NS: &str = "http://www.sbml.org/sbml/level2/version4";

/// A parsed SBML document.
#[derive(Debug, Clone, PartialEq)]
pub struct SbmlDocument {
    /// SBML level (2 for everything this library produces).
    pub level: u32,
    /// SBML version within the level.
    pub version: u32,
    /// The model.
    pub model: Model,
}

impl SbmlDocument {
    /// Wrap a model in a Level 2 Version 4 document.
    pub fn new(model: Model) -> SbmlDocument {
        SbmlDocument { level: 2, version: 4, model }
    }

    /// Parse SBML text.
    pub fn parse(text: &str) -> Result<SbmlDocument, ModelError> {
        let doc = sbml_xml::parse_document(text)?;
        Self::from_root(&doc.root)
    }

    /// Build from a parsed `<sbml>` root element (or a bare `<model>`).
    pub fn from_root(root: &Element) -> Result<SbmlDocument, ModelError> {
        if root.name == "model" {
            // Tolerate bare models (useful in tests and fragments).
            return Ok(SbmlDocument::new(Model::from_element(root)?));
        }
        if root.name != "sbml" {
            return Err(ModelError::structure(format!(
                "expected <sbml> root, found <{}>",
                root.name
            )));
        }
        let level = root.attr("level").and_then(|v| v.parse().ok()).unwrap_or(2);
        let version = root.attr("version").and_then(|v| v.parse().ok()).unwrap_or(4);
        let model_el = root
            .child("model")
            .ok_or_else(|| ModelError::structure("<sbml> has no <model> child"))?;
        Ok(SbmlDocument { level, version, model: Model::from_element(model_el)? })
    }

    /// Serialize to SBML text (pretty-printed).
    pub fn to_xml(&self) -> String {
        let root = Element::new("sbml")
            .with_attr("xmlns", SBML_NS)
            .with_attr("level", self.level.to_string())
            .with_attr("version", self.version.to_string())
            .with_child(self.model.to_element());
        sbml_xml::write_pretty(&Document::with_root(root))
    }
}

/// Parse SBML text directly into a [`Model`].
pub fn parse_sbml(text: &str) -> Result<Model, ModelError> {
    Ok(SbmlDocument::parse(text)?.model)
}

/// Serialize a [`Model`] as a complete SBML document string.
pub fn write_sbml(model: &Model) -> String {
    SbmlDocument::new(model.clone()).to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    #[test]
    fn document_round_trip() {
        let model = ModelBuilder::new("doc_test")
            .compartment("cell", 1.0)
            .species("A", 5.0)
            .parameter("k", 0.3)
            .reaction("r", &["A"], &[], "k*A")
            .build();
        let text = write_sbml(&model);
        assert!(text.contains("<?xml"));
        assert!(text.contains("<sbml"));
        assert!(text.contains("level=\"2\""));
        let back = parse_sbml(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn bare_model_tolerated() {
        let doc = SbmlDocument::parse("<model id=\"m\"/>").unwrap();
        assert_eq!(doc.model.id, "m");
        assert_eq!(doc.level, 2);
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(SbmlDocument::parse("<html/>").is_err());
        assert!(SbmlDocument::parse("<sbml level=\"2\" version=\"4\"/>").is_err());
    }

    #[test]
    fn level_version_read() {
        let doc = SbmlDocument::parse(
            "<sbml level=\"2\" version=\"3\"><model id=\"x\"/></sbml>",
        )
        .unwrap();
        assert_eq!(doc.level, 2);
        assert_eq!(doc.version, 3);
    }

    #[test]
    fn malformed_xml_surfaces_as_xml_error() {
        let err = SbmlDocument::parse("<sbml><model></sbml>").unwrap_err();
        assert!(matches!(err, ModelError::Xml(_)));
    }
}
