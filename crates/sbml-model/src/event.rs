//! Discrete events: trigger, optional delay, assignments.

use sbml_math::MathExpr;
use sbml_xml::Element;

use crate::error::ModelError;
use crate::xmlutil::{opt_attr, req_attr, req_math_child, set_opt};

/// One variable update fired by an event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventAssignment {
    /// The updated variable id.
    pub variable: String,
    /// The new-value expression, evaluated at firing time.
    pub math: MathExpr,
}

impl EventAssignment {
    /// Read from `<eventAssignment>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        Ok(EventAssignment {
            variable: req_attr(e, "variable")?,
            math: req_math_child(e, "eventAssignment")?,
        })
    }

    /// Write to `<eventAssignment>`.
    pub fn to_element(&self) -> Element {
        Element::new("eventAssignment")
            .with_attr("variable", self.variable.clone())
            .with_child(sbml_math::to_mathml(&self.math))
    }
}

/// A discrete event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Optional id (events may be anonymous in SBML; merging synthesises
    /// ids when needed).
    pub id: Option<String>,
    /// Optional display name.
    pub name: Option<String>,
    /// Boolean trigger expression (fires on false→true transition).
    pub trigger: MathExpr,
    /// Optional delay between trigger and assignment execution.
    pub delay: Option<MathExpr>,
    /// Assignments executed when the event fires.
    pub assignments: Vec<EventAssignment>,
}

impl Event {
    /// An event with the given trigger and no assignments.
    pub fn new(trigger: MathExpr) -> Event {
        Event { id: None, name: None, trigger, delay: None, assignments: Vec::new() }
    }

    /// Read from `<event>`.
    pub fn from_element(e: &Element) -> Result<Self, ModelError> {
        let trigger_el = e
            .child("trigger")
            .ok_or_else(|| ModelError::structure("event missing <trigger>"))?;
        let trigger = req_math_child(trigger_el, "event trigger")?;
        let delay = match e.child("delay") {
            Some(d) => Some(req_math_child(d, "event delay")?),
            None => None,
        };
        let mut assignments = Vec::new();
        if let Some(list) = e.child("listOfEventAssignments") {
            for a in list.children_named("eventAssignment") {
                assignments.push(EventAssignment::from_element(a)?);
            }
        }
        Ok(Event { id: opt_attr(e, "id"), name: opt_attr(e, "name"), trigger, delay, assignments })
    }

    /// Write to `<event>`.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("event");
        set_opt(&mut e, "id", &self.id);
        set_opt(&mut e, "name", &self.name);
        e.push_child(Element::new("trigger").with_child(sbml_math::to_mathml(&self.trigger)));
        if let Some(delay) = &self.delay {
            e.push_child(Element::new("delay").with_child(sbml_math::to_mathml(delay)));
        }
        if !self.assignments.is_empty() {
            let mut list = Element::new("listOfEventAssignments");
            for a in &self.assignments {
                list.push_child(a.to_element());
            }
            e.push_child(list);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_math::infix;

    #[test]
    fn event_round_trip() {
        let ev = Event {
            id: Some("e1".into()),
            name: Some("spike".into()),
            trigger: infix::parse("time >= 10").unwrap(),
            delay: Some(infix::parse("2").unwrap()),
            assignments: vec![EventAssignment {
                variable: "A".into(),
                math: infix::parse("A + 100").unwrap(),
            }],
        };
        let back = Event::from_element(&ev.to_element()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn minimal_event() {
        let ev = Event::new(infix::parse("x > 1").unwrap());
        let back = Event::from_element(&ev.to_element()).unwrap();
        assert_eq!(back, ev);
        assert!(back.id.is_none());
        assert!(back.delay.is_none());
        assert!(back.assignments.is_empty());
    }

    #[test]
    fn trigger_required() {
        let e = sbml_xml::parse_element("<event id=\"e\"/>").unwrap();
        assert!(Event::from_element(&e).is_err());
    }
}
