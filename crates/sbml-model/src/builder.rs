//! Fluent construction of models — the ergonomic path used by examples,
//! tests and the synthetic corpus generator.

use sbml_math::infix;
use sbml_units::UnitDefinition;

use crate::components::{Compartment, CompartmentType, Parameter, Species, SpeciesType};
use crate::event::Event;
use crate::function::FunctionDefinition;
use crate::model::{InitialAssignment, Model};
use crate::reaction::{KineticLaw, Reaction, SpeciesReference};
use crate::rule::{Constraint, Rule};

/// Fluent model builder.
///
/// Formulas are given in infix syntax and parsed with [`sbml_math::infix`];
/// malformed formulas panic, which is the right trade-off for the
/// construction paths this is designed for (hand-written examples and
/// generated corpora, where a bad formula is a bug, not input).
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    model: Model,
    default_compartment: Option<String>,
}

impl ModelBuilder {
    /// Start a model with the given id.
    pub fn new(id: impl Into<String>) -> ModelBuilder {
        ModelBuilder { model: Model::new(id), default_compartment: None }
    }

    /// Set the display name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> ModelBuilder {
        self.model.name = Some(name.into());
        self
    }

    /// Add a compartment; the first one becomes the default compartment for
    /// species added later.
    #[must_use]
    pub fn compartment(mut self, id: &str, size: f64) -> ModelBuilder {
        if self.default_compartment.is_none() {
            self.default_compartment = Some(id.to_owned());
        }
        self.model.compartments.push(Compartment::new(id, size));
        self
    }

    /// Add a species in the default compartment with an initial amount.
    ///
    /// # Panics
    /// If no compartment has been added yet.
    #[must_use]
    pub fn species(self, id: &str, initial_amount: f64) -> ModelBuilder {
        let compartment = self
            .default_compartment
            .clone()
            .expect("add a compartment before adding species");
        self.species_in(id, &compartment, initial_amount)
    }

    /// Add a species in an explicit compartment.
    #[must_use]
    pub fn species_in(mut self, id: &str, compartment: &str, initial_amount: f64) -> ModelBuilder {
        self.model.species.push(Species::new(id, compartment, initial_amount));
        self
    }

    /// Add a species with a display name (exercises synonym matching).
    #[must_use]
    pub fn species_named(mut self, id: &str, name: &str, initial_amount: f64) -> ModelBuilder {
        let compartment = self
            .default_compartment
            .clone()
            .expect("add a compartment before adding species");
        let mut s = Species::new(id, compartment, initial_amount);
        s.name = Some(name.to_owned());
        self.model.species.push(s);
        self
    }

    /// Add a constant global parameter.
    #[must_use]
    pub fn parameter(mut self, id: &str, value: f64) -> ModelBuilder {
        self.model.parameters.push(Parameter::new(id, value));
        self
    }

    /// Add an irreversible reaction with a mass-action-style formula.
    ///
    /// # Panics
    /// If the formula does not parse.
    #[must_use]
    pub fn reaction(
        mut self,
        id: &str,
        reactants: &[&str],
        products: &[&str],
        formula: &str,
    ) -> ModelBuilder {
        let mut r = Reaction::new(id);
        r.reactants = reactants.iter().map(|s| SpeciesReference::new(*s)).collect();
        r.products = products.iter().map(|s| SpeciesReference::new(*s)).collect();
        r.kinetic_law = Some(KineticLaw::new(
            infix::parse(formula).unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
        ));
        self.model.reactions.push(r);
        self
    }

    /// Add a reversible reaction (`formula` should be net forward-reverse).
    #[must_use]
    pub fn reversible_reaction(
        mut self,
        id: &str,
        reactants: &[&str],
        products: &[&str],
        formula: &str,
    ) -> ModelBuilder {
        self = self.reaction(id, reactants, products, formula);
        self.model.reactions.last_mut().expect("just pushed").reversible = true;
        self
    }

    /// Add a fully custom reaction.
    #[must_use]
    pub fn reaction_full(mut self, reaction: Reaction) -> ModelBuilder {
        self.model.reactions.push(reaction);
        self
    }

    /// Add a function definition: `id(params...) = body`.
    #[must_use]
    pub fn function(mut self, id: &str, params: &[&str], body: &str) -> ModelBuilder {
        self.model.function_definitions.push(FunctionDefinition::new(
            id,
            params.iter().map(|p| (*p).to_owned()).collect(),
            infix::parse(body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}")),
        ));
        self
    }

    /// Add a unit definition.
    #[must_use]
    pub fn unit_definition(mut self, def: UnitDefinition) -> ModelBuilder {
        self.model.unit_definitions.push(def);
        self
    }

    /// Add a compartment type.
    #[must_use]
    pub fn compartment_type(mut self, id: &str) -> ModelBuilder {
        self.model.compartment_types.push(CompartmentType { id: id.to_owned(), name: None });
        self
    }

    /// Add a species type.
    #[must_use]
    pub fn species_type(mut self, id: &str) -> ModelBuilder {
        self.model.species_types.push(SpeciesType { id: id.to_owned(), name: None });
        self
    }

    /// Add an initial assignment `symbol := formula`.
    #[must_use]
    pub fn initial_assignment(mut self, symbol: &str, formula: &str) -> ModelBuilder {
        self.model.initial_assignments.push(InitialAssignment {
            symbol: symbol.to_owned(),
            math: infix::parse(formula).unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
        });
        self
    }

    /// Add an assignment rule `variable = formula`.
    #[must_use]
    pub fn assignment_rule(mut self, variable: &str, formula: &str) -> ModelBuilder {
        self.model.rules.push(Rule::Assignment {
            variable: variable.to_owned(),
            math: infix::parse(formula).unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
        });
        self
    }

    /// Add a rate rule `d(variable)/dt = formula`.
    #[must_use]
    pub fn rate_rule(mut self, variable: &str, formula: &str) -> ModelBuilder {
        self.model.rules.push(Rule::Rate {
            variable: variable.to_owned(),
            math: infix::parse(formula).unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
        });
        self
    }

    /// Add a constraint.
    #[must_use]
    pub fn constraint(mut self, formula: &str, message: Option<&str>) -> ModelBuilder {
        self.model.constraints.push(Constraint {
            math: infix::parse(formula).unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
            message: message.map(str::to_owned),
        });
        self
    }

    /// Add an event.
    #[must_use]
    pub fn event(mut self, id: &str, trigger: &str, assignments: &[(&str, &str)]) -> ModelBuilder {
        let mut ev = Event::new(
            infix::parse(trigger).unwrap_or_else(|e| panic!("bad trigger {trigger:?}: {e}")),
        );
        ev.id = Some(id.to_owned());
        for (variable, formula) in assignments {
            ev.assignments.push(crate::event::EventAssignment {
                variable: (*variable).to_owned(),
                math: infix::parse(formula)
                    .unwrap_or_else(|e| panic!("bad formula {formula:?}: {e}")),
            });
        }
        self.model.events.push(ev);
        self
    }

    /// Finish building.
    pub fn build(self) -> Model {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_component_kind() {
        use sbml_units::{Unit, UnitKind};
        let m = ModelBuilder::new("full")
            .name("everything")
            .function("mm", &["S", "V", "K"], "V*S/(K+S)")
            .unit_definition(UnitDefinition::new("per_s", vec![Unit::of(UnitKind::Second).pow(-1)]))
            .compartment_type("organelle")
            .species_type("sugar")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .species_named("B", "product B", 0.0)
            .parameter("k1", 0.1)
            .initial_assignment("A", "2*k1")
            .assignment_rule("obs", "A + B")
            .rate_rule("drift", "0.01")
            .constraint("A >= 0", Some("A must be non-negative"))
            .reaction("r1", &["A"], &["B"], "k1*A")
            .event("e1", "time >= 5", &[("A", "A + 1")])
            .build();
        assert_eq!(m.component_count(), 14);
        assert_eq!(m.name.as_deref(), Some("everything"));
        // survives a document round trip
        let text = crate::document::write_sbml(&m);
        let back = crate::document::parse_sbml(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reversible_flag() {
        let m = ModelBuilder::new("rev")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("kf", 1.0)
            .parameter("kr", 0.5)
            .reversible_reaction("r", &["A"], &["B"], "kf*A - kr*B")
            .build();
        assert!(m.reactions[0].reversible);
    }

    #[test]
    #[should_panic(expected = "add a compartment")]
    fn species_requires_compartment() {
        let _ = ModelBuilder::new("bad").species("A", 1.0);
    }

    #[test]
    #[should_panic(expected = "bad formula")]
    fn bad_formula_panics() {
        let _ = ModelBuilder::new("bad")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .reaction("r", &["A"], &[], "k1 *");
    }
}
