//! Shared attribute-parsing helpers for the XML binding.

use sbml_xml::Element;

use crate::error::ModelError;

/// Required string attribute.
pub(crate) fn req_attr(e: &Element, key: &str) -> Result<String, ModelError> {
    e.attr(key).map(str::to_owned).ok_or_else(|| {
        ModelError::structure(format!("<{}> missing required attribute {key:?}", e.name))
    })
}

/// Optional string attribute.
pub(crate) fn opt_attr(e: &Element, key: &str) -> Option<String> {
    e.attr(key).map(str::to_owned)
}

/// Optional f64 attribute.
pub(crate) fn opt_f64(e: &Element, key: &str) -> Result<Option<f64>, ModelError> {
    match e.attr(key) {
        None => Ok(None),
        Some(raw) => raw.trim().parse::<f64>().map(Some).map_err(|_| {
            ModelError::structure(format!("<{}> attribute {key}={raw:?} is not a number", e.name))
        }),
    }
}

/// Optional bool attribute with a default.
pub(crate) fn bool_attr(e: &Element, key: &str, default: bool) -> Result<bool, ModelError> {
    match e.attr(key) {
        None => Ok(default),
        Some("true") | Some("1") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(other) => Err(ModelError::structure(format!(
            "<{}> attribute {key}={other:?} is not a boolean",
            e.name
        ))),
    }
}

/// Optional i32 attribute.
pub(crate) fn opt_i32(e: &Element, key: &str) -> Result<Option<i32>, ModelError> {
    match e.attr(key) {
        None => Ok(None),
        Some(raw) => raw.trim().parse::<i32>().map(Some).map_err(|_| {
            ModelError::structure(format!("<{}> attribute {key}={raw:?} is not an integer", e.name))
        }),
    }
}

/// Set an attribute only when the value is present.
pub(crate) fn set_opt(e: &mut Element, key: &str, value: &Option<String>) {
    if let Some(v) = value {
        e.set_attr(key, v.clone());
    }
}

/// Set a float attribute only when present, using shortest representation.
pub(crate) fn set_opt_f64(e: &mut Element, key: &str, value: Option<f64>) {
    if let Some(v) = value {
        e.set_attr(key, sbml_math::writer::format_number(v));
    }
}

/// Parse the single `<math>` child of an element, with context for errors.
pub(crate) fn parse_math_child(
    e: &Element,
    context: &str,
) -> Result<Option<sbml_math::MathExpr>, ModelError> {
    let Some(math) = e.child("math") else {
        return Ok(None);
    };
    sbml_math::parse_mathml(math)
        .map(Some)
        .map_err(|source| ModelError::Math { context: context.to_owned(), source })
}

/// Required `<math>` child.
pub(crate) fn req_math_child(
    e: &Element,
    context: &str,
) -> Result<sbml_math::MathExpr, ModelError> {
    parse_math_child(e, context)?
        .ok_or_else(|| ModelError::structure(format!("{context}: missing <math> child")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_xml::parse_element;

    #[test]
    fn attribute_parsing() {
        let e = parse_element(r#"<x id="a" v="2.5" n="3" flag="true"/>"#).unwrap();
        assert_eq!(req_attr(&e, "id").unwrap(), "a");
        assert!(req_attr(&e, "missing").is_err());
        assert_eq!(opt_f64(&e, "v").unwrap(), Some(2.5));
        assert_eq!(opt_f64(&e, "absent").unwrap(), None);
        assert_eq!(opt_i32(&e, "n").unwrap(), Some(3));
        assert!(bool_attr(&e, "flag", false).unwrap());
        assert!(!bool_attr(&e, "off", false).unwrap());
    }

    #[test]
    fn bad_values_rejected() {
        let e = parse_element(r#"<x v="abc" flag="maybe" n="1.5"/>"#).unwrap();
        assert!(opt_f64(&e, "v").is_err());
        assert!(bool_attr(&e, "flag", false).is_err());
        assert!(opt_i32(&e, "n").is_err());
    }

    #[test]
    fn math_child_parsing() {
        let e = parse_element("<kineticLaw><math><ci>k</ci></math></kineticLaw>").unwrap();
        let m = req_math_child(&e, "test").unwrap();
        assert_eq!(m, sbml_math::MathExpr::ci("k"));

        let empty = parse_element("<kineticLaw/>").unwrap();
        assert!(parse_math_child(&empty, "test").unwrap().is_none());
        assert!(req_math_child(&empty, "test").is_err());
    }
}
