//! Semantic validation of models.
//!
//! The paper's baseline (semanticSBML) "checks the semantic validity of the
//! models to be composed, to ensure only valid models are merged"; our merge
//! engine runs the same class of checks on its output. Checks cover id
//! uniqueness, reference resolution (species→compartment, reactions→species,
//! math→declared identifiers, units→unit definitions), function-definition
//! closedness and rule consistency.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sbml_math::rewrite::collect_identifiers;
use sbml_math::MathExpr;

use crate::model::Model;
use crate::rule::Rule;

/// How bad an issue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but usable (e.g. species without an initial value).
    Warning,
    /// The model violates SBML semantics.
    Error,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Error or warning.
    pub severity: Severity,
    /// The component the issue concerns (e.g. `species 'A'`).
    pub component: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{tag}] {}: {}", self.component, self.message)
    }
}

/// Validate a model, returning all findings (empty = clean).
pub fn validate(model: &Model) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    check_unique_ids(model, &mut issues);
    check_compartment_refs(model, &mut issues);
    check_reaction_refs(model, &mut issues);
    check_math_identifiers(model, &mut issues);
    check_function_definitions(model, &mut issues);
    check_rules(model, &mut issues);
    check_unit_refs(model, &mut issues);
    check_initial_values(model, &mut issues);
    issues
}

/// True when the model has no `Error`-severity findings.
pub fn is_valid(model: &Model) -> bool {
    validate(model).iter().all(|i| i.severity != Severity::Error)
}

fn error(issues: &mut Vec<ValidationIssue>, component: String, message: String) {
    issues.push(ValidationIssue { severity: Severity::Error, component, message });
}

fn warning(issues: &mut Vec<ValidationIssue>, component: String, message: String) {
    issues.push(ValidationIssue { severity: Severity::Warning, component, message });
}

fn check_unique_ids(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let items: Vec<(&str, &str)> = model
        .function_definitions
        .iter()
        .map(|x| (x.id.as_str(), "functionDefinition"))
        .chain(model.unit_definitions.iter().map(|x| (x.id.as_str(), "unitDefinition")))
        .chain(model.compartment_types.iter().map(|x| (x.id.as_str(), "compartmentType")))
        .chain(model.species_types.iter().map(|x| (x.id.as_str(), "speciesType")))
        .chain(model.compartments.iter().map(|x| (x.id.as_str(), "compartment")))
        .chain(model.species.iter().map(|x| (x.id.as_str(), "species")))
        .chain(model.parameters.iter().map(|x| (x.id.as_str(), "parameter")))
        .chain(model.reactions.iter().map(|x| (x.id.as_str(), "reaction")))
        .chain(model.events.iter().filter_map(|x| x.id.as_deref().map(|i| (i, "event"))))
        .collect();
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
    for (item_id, kind) in items {
        if let Some(first_kind) = seen.get(item_id) {
            error(
                issues,
                format!("{kind} '{item_id}'"),
                format!("id already used by a {first_kind}"),
            );
        } else {
            seen.insert(item_id, kind);
        }
    }
}

fn check_compartment_refs(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let compartments: BTreeSet<&str> = model.compartments.iter().map(|c| c.id.as_str()).collect();
    let ctypes: BTreeSet<&str> = model.compartment_types.iter().map(|c| c.id.as_str()).collect();
    let stypes: BTreeSet<&str> = model.species_types.iter().map(|s| s.id.as_str()).collect();

    for s in &model.species {
        if !compartments.contains(s.compartment.as_str()) {
            error(
                issues,
                format!("species '{}'", s.id),
                format!("references unknown compartment '{}'", s.compartment),
            );
        }
        if let Some(st) = &s.species_type {
            if !stypes.contains(st.as_str()) {
                error(
                    issues,
                    format!("species '{}'", s.id),
                    format!("references unknown speciesType '{st}'"),
                );
            }
        }
    }
    for c in &model.compartments {
        if let Some(ct) = &c.compartment_type {
            if !ctypes.contains(ct.as_str()) {
                error(
                    issues,
                    format!("compartment '{}'", c.id),
                    format!("references unknown compartmentType '{ct}'"),
                );
            }
        }
        if let Some(outside) = &c.outside {
            if !compartments.contains(outside.as_str()) {
                error(
                    issues,
                    format!("compartment '{}'", c.id),
                    format!("'outside' references unknown compartment '{outside}'"),
                );
            }
        }
    }
}

fn check_reaction_refs(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let species: BTreeSet<&str> = model.species.iter().map(|s| s.id.as_str()).collect();
    for r in &model.reactions {
        for (role, refs) in
            [("reactant", &r.reactants), ("product", &r.products), ("modifier", &r.modifiers)]
        {
            for sr in refs {
                if !species.contains(sr.species.as_str()) {
                    error(
                        issues,
                        format!("reaction '{}'", r.id),
                        format!("{role} references unknown species '{}'", sr.species),
                    );
                }
                if sr.stoichiometry < 0.0 {
                    error(
                        issues,
                        format!("reaction '{}'", r.id),
                        format!("{role} '{}' has negative stoichiometry", sr.species),
                    );
                }
            }
        }
        if r.kinetic_law.is_none() {
            warning(issues, format!("reaction '{}'", r.id), "has no kinetic law".to_owned());
        }
    }
}

/// Identifiers legal in model-level math.
fn known_identifiers(model: &Model) -> BTreeSet<String> {
    let mut ids = model.global_ids();
    // Rule/assignment variables may introduce derived quantities.
    for rule in &model.rules {
        if let Some(v) = rule.variable() {
            ids.insert(v.to_owned());
        }
    }
    ids
}

fn check_math(
    math: &MathExpr,
    known: &BTreeSet<String>,
    extra_locals: &BTreeSet<String>,
    component: &str,
    issues: &mut Vec<ValidationIssue>,
) {
    for id in collect_identifiers(math) {
        if !known.contains(&id) && !extra_locals.contains(&id) {
            error(
                issues,
                component.to_owned(),
                format!("math references undeclared identifier '{id}'"),
            );
        }
    }
}

fn check_math_identifiers(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let known = known_identifiers(model);
    let none = BTreeSet::new();

    for r in &model.reactions {
        if let Some(kl) = &r.kinetic_law {
            let locals: BTreeSet<String> =
                kl.parameters.iter().map(|p| p.id.clone()).collect();
            check_math(&kl.math, &known, &locals, &format!("reaction '{}'", r.id), issues);
        }
    }
    for ia in &model.initial_assignments {
        if !known.contains(&ia.symbol) {
            error(
                issues,
                format!("initialAssignment '{}'", ia.symbol),
                "assigns an undeclared symbol".to_owned(),
            );
        }
        check_math(&ia.math, &known, &none, &format!("initialAssignment '{}'", ia.symbol), issues);
    }
    for (idx, rule) in model.rules.iter().enumerate() {
        let label = match rule.variable() {
            Some(v) => format!("rule for '{v}'"),
            None => format!("algebraic rule #{idx}"),
        };
        if let Some(v) = rule.variable() {
            if !model.global_ids().contains(v) {
                error(issues, label.clone(), "targets an undeclared variable".to_owned());
            }
        }
        check_math(rule.math(), &known, &none, &label, issues);
    }
    for (idx, c) in model.constraints.iter().enumerate() {
        check_math(&c.math, &known, &none, &format!("constraint #{idx}"), issues);
    }
    for ev in &model.events {
        let label = format!("event '{}'", ev.id.as_deref().unwrap_or("<anonymous>"));
        check_math(&ev.trigger, &known, &none, &label, issues);
        if let Some(d) = &ev.delay {
            check_math(d, &known, &none, &label, issues);
        }
        for a in &ev.assignments {
            if !known.contains(&a.variable) {
                error(issues, label.clone(), format!("assigns undeclared variable '{}'", a.variable));
            }
            check_math(&a.math, &known, &none, &label, issues);
        }
    }
}

fn check_function_definitions(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let function_ids: BTreeSet<&str> =
        model.function_definitions.iter().map(|f| f.id.as_str()).collect();
    for f in &model.function_definitions {
        let params: BTreeSet<String> = f.params.iter().cloned().collect();
        for id in collect_identifiers(&f.body) {
            // Bodies may call other (earlier) function definitions but must
            // otherwise be closed over their parameters.
            if !params.contains(&id) && !function_ids.contains(id.as_str()) {
                error(
                    issues,
                    format!("functionDefinition '{}'", f.id),
                    format!("body references '{id}', which is not a parameter"),
                );
            }
            if id == f.id {
                error(
                    issues,
                    format!("functionDefinition '{}'", f.id),
                    "recursive function definitions are not allowed".to_owned(),
                );
            }
        }
    }
}

fn check_rules(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let mut ruled: BTreeSet<&str> = BTreeSet::new();
    for rule in &model.rules {
        if let Some(v) = rule.variable() {
            if !ruled.insert(v) {
                error(
                    issues,
                    format!("rule for '{v}'"),
                    "variable already determined by another rule".to_owned(),
                );
            }
            if matches!(rule, Rule::Assignment { .. }) {
                if let Some(ia) =
                    model.initial_assignments.iter().find(|ia| ia.symbol == v)
                {
                    warning(
                        issues,
                        format!("rule for '{v}'"),
                        format!(
                            "variable also has an initial assignment ('{}'); the rule wins at t=0",
                            ia.symbol
                        ),
                    );
                }
            }
        }
    }
}

fn check_unit_refs(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let unit_ids: BTreeSet<&str> = model.unit_definitions.iter().map(|u| u.id.as_str()).collect();
    let check = |units: &Option<String>, component: String, issues: &mut Vec<ValidationIssue>| {
        if let Some(u) = units {
            if !unit_ids.contains(u.as_str()) && sbml_units::definition::builtin(u).is_none() {
                error(issues, component, format!("references unknown units '{u}'"));
            }
        }
    };
    for s in &model.species {
        check(&s.substance_units, format!("species '{}'", s.id), issues);
    }
    for p in &model.parameters {
        check(&p.units, format!("parameter '{}'", p.id), issues);
    }
    for c in &model.compartments {
        check(&c.units, format!("compartment '{}'", c.id), issues);
    }
}

fn check_initial_values(model: &Model, issues: &mut Vec<ValidationIssue>) {
    let assigned: BTreeSet<&str> =
        model.initial_assignments.iter().map(|ia| ia.symbol.as_str()).collect();
    let ruled: BTreeSet<&str> = model.rules.iter().filter_map(Rule::variable).collect();
    for s in &model.species {
        if s.initial_value().is_none()
            && !assigned.contains(s.id.as_str())
            && !ruled.contains(s.id.as_str())
        {
            warning(
                issues,
                format!("species '{}'", s.id),
                "has no initial amount, concentration, assignment or rule".to_owned(),
            );
        }
    }
    for p in &model.parameters {
        if p.value.is_none() && !assigned.contains(p.id.as_str()) && !ruled.contains(p.id.as_str())
        {
            warning(
                issues,
                format!("parameter '{}'", p.id),
                "has no value, initial assignment or rule".to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::components::{Parameter, Species};

    fn clean_model() -> Model {
        ModelBuilder::new("ok")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k", 0.5)
            .reaction("r", &["A"], &["B"], "k*A")
            .build()
    }

    #[test]
    fn clean_model_validates() {
        let issues = validate(&clean_model());
        assert!(issues.is_empty(), "{issues:?}");
        assert!(is_valid(&clean_model()));
    }

    #[test]
    fn duplicate_ids_detected() {
        let mut m = clean_model();
        m.parameters.push(Parameter::new("A", 1.0)); // clashes with species A
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.severity == Severity::Error
            && i.component.contains("parameter 'A'")));
        assert!(!is_valid(&m));
    }

    #[test]
    fn unknown_compartment_detected() {
        let mut m = clean_model();
        m.species.push(Species::new("X", "nowhere", 1.0));
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("unknown compartment 'nowhere'")));
    }

    #[test]
    fn unknown_reaction_species_detected() {
        let mut m = clean_model();
        m.reactions[0].reactants[0].species = "ghost".into();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("unknown species 'ghost'")));
    }

    #[test]
    fn undeclared_math_identifier_detected() {
        let m = ModelBuilder::new("bad")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .reaction("r", &["A"], &[], "k_undeclared*A")
            .build();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("k_undeclared")));
    }

    #[test]
    fn local_parameters_satisfy_math() {
        let mut m = ModelBuilder::new("local")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .reaction("r", &["A"], &[], "k_local*A")
            .build();
        m.reactions[0].kinetic_law.as_mut().unwrap().parameters.push(Parameter::new("k_local", 2.0));
        let issues = validate(&m);
        assert!(
            !issues.iter().any(|i| i.severity == Severity::Error),
            "{issues:?}"
        );
    }

    #[test]
    fn open_function_definition_detected() {
        let m = ModelBuilder::new("open_fn")
            .function("leaky", &["x"], "x + global_thing")
            .build();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("global_thing")));
    }

    #[test]
    fn function_may_call_other_function() {
        let m = ModelBuilder::new("fns")
            .function("sq", &["x"], "x*x")
            .function("quad", &["x"], "sq(sq(x))")
            .build();
        let issues = validate(&m);
        assert!(issues.iter().all(|i| i.severity != Severity::Error), "{issues:?}");
    }

    #[test]
    fn recursive_function_detected() {
        let m = ModelBuilder::new("rec").function("f", &["x"], "f(x)").build();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("recursive")));
    }

    #[test]
    fn double_ruled_variable_detected() {
        let m = ModelBuilder::new("rules")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .assignment_rule("A", "1")
            .rate_rule("A", "2")
            .build();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("already determined")));
    }

    #[test]
    fn unknown_units_detected() {
        let mut m = clean_model();
        m.parameters[0].units = Some("furlongs".into());
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("furlongs")));
        // builtin names are fine
        m.parameters[0].units = Some("second".into());
        assert!(is_valid(&m));
    }

    #[test]
    fn missing_initial_value_is_warning_only() {
        let mut m = clean_model();
        m.species[0].initial_amount = None;
        let issues = validate(&m);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.component.contains("species 'A'")));
        assert!(is_valid(&m), "warnings must not invalidate");
    }

    #[test]
    fn initial_assignment_counts_as_initial_value() {
        let mut m = clean_model();
        m.species[0].initial_amount = None;
        let m = {
            let mut b = m.clone();
            b.initial_assignments.push(crate::model::InitialAssignment {
                symbol: "A".into(),
                math: sbml_math::infix::parse("2*k").unwrap(),
            });
            b
        };
        let issues = validate(&m);
        assert!(
            !issues.iter().any(|i| i.component.contains("species 'A'")),
            "{issues:?}"
        );
    }

    #[test]
    fn negative_stoichiometry_detected() {
        let mut m = clean_model();
        m.reactions[0].products[0].stoichiometry = -1.0;
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("negative stoichiometry")));
    }

    #[test]
    fn event_assignment_to_undeclared_variable() {
        let m = ModelBuilder::new("ev")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .event("e1", "time >= 1", &[("phantom", "1")])
            .build();
        let issues = validate(&m);
        assert!(issues.iter().any(|i| i.message.contains("phantom")));
    }

    #[test]
    fn issue_display() {
        let i = ValidationIssue {
            severity: Severity::Error,
            component: "species 'A'".into(),
            message: "boom".into(),
        };
        assert_eq!(i.to_string(), "[error] species 'A': boom");
    }
}
