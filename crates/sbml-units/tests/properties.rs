//! Property tests for the unit system:
//! * conversion factors compose and invert consistently,
//! * signatures are order-insensitive and scale-coherent,
//! * the Fig. 6 deterministic↔stochastic bridge round-trips for every
//!   order and volume.

use proptest::prelude::*;
use sbml_units::convert::{
    conversion_factor, convert, deterministic_to_stochastic, stochastic_to_deterministic,
    ReactionOrder,
};
use sbml_units::{Unit, UnitDefinition, UnitKind};

fn kind_strategy() -> impl Strategy<Value = UnitKind> {
    prop_oneof![
        Just(UnitKind::Mole),
        Just(UnitKind::Litre),
        Just(UnitKind::Second),
        Just(UnitKind::Metre),
        Just(UnitKind::Gram),
        Just(UnitKind::Kelvin),
        Just(UnitKind::Dimensionless),
    ]
}

fn unit_strategy() -> impl Strategy<Value = Unit> {
    (kind_strategy(), -3i32..=3, -6i32..=6, prop_oneof![Just(1.0), Just(60.0), Just(0.5)])
        .prop_map(|(kind, exponent, scale, multiplier)| Unit {
            kind,
            exponent: if exponent == 0 { 1 } else { exponent },
            scale,
            multiplier,
        })
}

fn definition_strategy() -> impl Strategy<Value = UnitDefinition> {
    proptest::collection::vec(unit_strategy(), 0..4)
        .prop_map(|units| UnitDefinition::new("gen", units))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn factor_order_insensitive(def in definition_strategy()) {
        let mut reversed = def.clone();
        reversed.units.reverse();
        let (s1, s2) = (def.signature(), reversed.signature());
        prop_assert!(s1.approx_eq(&s2));
        prop_assert_eq!(s1.key(), s2.key());
    }

    #[test]
    fn self_conversion_is_one(def in definition_strategy()) {
        if let Some(f) = conversion_factor(&def, &def) {
            prop_assert!((f - 1.0).abs() < 1e-9, "{f}");
        } else {
            prop_assert!(false, "definition must be commensurable with itself");
        }
    }

    #[test]
    fn conversion_inverts(a in definition_strategy(), b in definition_strategy()) {
        match (conversion_factor(&a, &b), conversion_factor(&b, &a)) {
            (Some(ab), Some(ba)) => {
                prop_assert!((ab * ba - 1.0).abs() < 1e-9, "ab={ab} ba={ba}");
            }
            (None, None) => {} // consistently incommensurable
            (x, y) => prop_assert!(false, "asymmetric commensurability: {:?} {:?}", x, y),
        }
    }

    #[test]
    fn conversion_composes(
        a in definition_strategy(),
        b in definition_strategy(),
        value in 1e-6f64..1e6
    ) {
        // convert(a→b) then (b→a) returns the value.
        if let Some(via) = convert(value, &a, &b) {
            let back = convert(via, &b, &a).expect("inverse exists");
            prop_assert!(((back - value) / value).abs() < 1e-9);
        }
    }

    #[test]
    fn scaling_shifts_factor_by_power_of_ten(def in definition_strategy(), shift in -3i32..=3) {
        // Adding a dimensionless 10^shift factor multiplies the signature
        // factor by 10^shift and leaves the dimension alone.
        let mut scaled = def.clone();
        scaled.units.push(Unit::of(UnitKind::Dimensionless).scaled(shift));
        let (s0, s1) = (def.signature(), scaled.signature());
        prop_assert_eq!(s0.dimension, s1.dimension);
        let expected = s0.factor * 10f64.powi(shift);
        let scale = expected.abs().max(s1.factor.abs()).max(1e-300);
        prop_assert!(((s1.factor - expected) / scale).abs() < 1e-9);
    }

    #[test]
    fn fig6_round_trip_all_orders(
        k in 1e-9f64..1e9,
        volume in 1e-18f64..1.0
    ) {
        for order in [ReactionOrder::Zeroth, ReactionOrder::First, ReactionOrder::Second] {
            let c = deterministic_to_stochastic(k, order, volume);
            let back = stochastic_to_deterministic(c, order, volume);
            prop_assert!(((back - k) / k).abs() < 1e-9, "{:?}", order);
        }
    }

    #[test]
    fn fig6_first_order_is_identity(k in 1e-9f64..1e9, volume in 1e-18f64..1.0) {
        prop_assert_eq!(deterministic_to_stochastic(k, ReactionOrder::First, volume), k);
    }

    #[test]
    fn fig6_monotone_in_k(
        k1 in 1e-6f64..1e6,
        k2 in 1e-6f64..1e6,
        volume in 1e-15f64..1e-3
    ) {
        for order in [ReactionOrder::Zeroth, ReactionOrder::First, ReactionOrder::Second] {
            let (c1, c2) = (
                deterministic_to_stochastic(k1, order, volume),
                deterministic_to_stochastic(k2, order, volume),
            );
            prop_assert_eq!(k1 < k2, c1 < c2, "{:?} must preserve ordering", order);
        }
    }
}
