//! Numeric unit conversion, including the paper's Fig. 6 mole↔molecule
//! rate-constant conversions (after Wilkinson, *Stochastic Modelling for
//! Systems Biology*, 2006).
//!
//! During conflict checking the merge engine may find the "same" rate
//! constant expressed deterministically (moles per litre per second) in one
//! model and stochastically (molecules per cell) in another. Fig. 6 of the
//! paper gives the translation for the three elementary reaction orders;
//! [`deterministic_to_stochastic`] and [`stochastic_to_deterministic`]
//! implement it, and [`conversion_factor`] handles general commensurable
//! unit definitions.

use crate::definition::UnitDefinition;

/// Avogadro's constant `nA` — molecules per mole (value used in the paper).
pub const AVOGADRO: f64 = 6.022e23;

/// Elementary reaction order, as in paper Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReactionOrder {
    /// `0 → X` — constant production.
    Zeroth,
    /// `X → ?` — unimolecular.
    First,
    /// `X + Y → ?` — bimolecular.
    Second,
}

impl ReactionOrder {
    /// Classify by the number of reactant molecules involved (sum of
    /// stoichiometries). Orders above 2 are not covered by Fig. 6.
    pub fn from_reactant_count(n: u32) -> Option<ReactionOrder> {
        match n {
            0 => Some(ReactionOrder::Zeroth),
            1 => Some(ReactionOrder::First),
            2 => Some(ReactionOrder::Second),
            _ => None,
        }
    }
}

/// Convert a deterministic rate constant `k` (concentration units, M·s⁻¹
/// flavours) to a stochastic rate constant `c` (molecules, per paper Fig. 6):
///
/// * zeroth order: `c = nA · k · V`
/// * first order:  `c = k`
/// * second order: `c = k / (nA · V)`
///
/// `volume` is in litres.
pub fn deterministic_to_stochastic(k: f64, order: ReactionOrder, volume: f64) -> f64 {
    match order {
        ReactionOrder::Zeroth => AVOGADRO * k * volume,
        ReactionOrder::First => k,
        ReactionOrder::Second => k / (AVOGADRO * volume),
    }
}

/// Inverse of [`deterministic_to_stochastic`].
pub fn stochastic_to_deterministic(c: f64, order: ReactionOrder, volume: f64) -> f64 {
    match order {
        ReactionOrder::Zeroth => c / (AVOGADRO * volume),
        ReactionOrder::First => c,
        ReactionOrder::Second => c * AVOGADRO * volume,
    }
}

/// Convert a concentration (mol/L) to a molecule count in volume `V` litres:
/// `x = nA · [X] · V` (paper Fig. 6, first-order derivation).
pub fn concentration_to_molecules(concentration: f64, volume: f64) -> f64 {
    AVOGADRO * concentration * volume
}

/// Inverse of [`concentration_to_molecules`].
pub fn molecules_to_concentration(molecules: f64, volume: f64) -> f64 {
    molecules / (AVOGADRO * volume)
}

/// Multiplicative factor converting a value expressed in `from` units into
/// `to` units, when the definitions are commensurable. A value `v` in `from`
/// equals `v * factor` in `to`.
pub fn conversion_factor(from: &UnitDefinition, to: &UnitDefinition) -> Option<f64> {
    let (sf, st) = (from.signature(), to.signature());
    if sf.dimension != st.dimension {
        return None;
    }
    Some(sf.factor / st.factor)
}

/// Convert a value between commensurable unit definitions.
pub fn convert(value: f64, from: &UnitDefinition, to: &UnitDefinition) -> Option<f64> {
    Some(value * conversion_factor(from, to)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::Unit;
    use crate::kind::UnitKind;

    const V: f64 = 1e-15; // litres

    #[test]
    fn order_classification() {
        assert_eq!(ReactionOrder::from_reactant_count(0), Some(ReactionOrder::Zeroth));
        assert_eq!(ReactionOrder::from_reactant_count(1), Some(ReactionOrder::First));
        assert_eq!(ReactionOrder::from_reactant_count(2), Some(ReactionOrder::Second));
        assert_eq!(ReactionOrder::from_reactant_count(3), None);
    }

    #[test]
    fn fig6_zeroth_order() {
        let k = 1e-7; // M/s
        let c = deterministic_to_stochastic(k, ReactionOrder::Zeroth, V);
        assert!((c - AVOGADRO * k * V).abs() < 1e-9 * c.abs());
        // 6.022e23 * 1e-7 * 1e-15 ≈ 60.22 molecules/s
        assert!((c - 60.22).abs() < 0.01, "{c}");
    }

    #[test]
    fn fig6_first_order_identity() {
        let k = 0.35;
        assert_eq!(deterministic_to_stochastic(k, ReactionOrder::First, V), k);
        assert_eq!(stochastic_to_deterministic(k, ReactionOrder::First, V), k);
    }

    #[test]
    fn fig6_second_order() {
        let k = 1e6; // per M per s
        let c = deterministic_to_stochastic(k, ReactionOrder::Second, V);
        assert!((c - k / (AVOGADRO * V)).abs() < 1e-12 * c.abs());
    }

    #[test]
    fn fig6_round_trips() {
        for order in [ReactionOrder::Zeroth, ReactionOrder::First, ReactionOrder::Second] {
            for k in [1e-9, 1e-3, 1.0, 42.0, 1e6] {
                let c = deterministic_to_stochastic(k, order, V);
                let back = stochastic_to_deterministic(c, order, V);
                assert!(((back - k) / k).abs() < 1e-12, "{order:?} {k}");
            }
        }
    }

    #[test]
    fn concentration_round_trip() {
        let conc = 2.5e-6;
        let n = concentration_to_molecules(conc, V);
        assert!((molecules_to_concentration(n, V) - conc).abs() < 1e-18);
    }

    #[test]
    fn general_conversion_mole_millimole() {
        let mole = UnitDefinition::new("mol", vec![Unit::of(UnitKind::Mole)]);
        let mmol = UnitDefinition::new("mmol", vec![Unit::of(UnitKind::Mole).scaled(-3)]);
        // 1 mole = 1000 millimole
        assert_eq!(convert(1.0, &mole, &mmol), Some(1000.0));
        assert_eq!(convert(1000.0, &mmol, &mole), Some(1.0));
    }

    #[test]
    fn general_conversion_litre_metre_cubed() {
        let litre = UnitDefinition::new("l", vec![Unit::of(UnitKind::Litre)]);
        let m3 = UnitDefinition::new("m3", vec![Unit::of(UnitKind::Metre).pow(3)]);
        let f = conversion_factor(&litre, &m3).unwrap();
        assert!((f - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn incommensurable_rejected() {
        let mole = UnitDefinition::new("mol", vec![Unit::of(UnitKind::Mole)]);
        let second = UnitDefinition::new("s", vec![Unit::of(UnitKind::Second)]);
        assert_eq!(conversion_factor(&mole, &second), None);
        assert_eq!(convert(1.0, &mole, &second), None);
    }

    #[test]
    fn minute_to_second() {
        let minute = UnitDefinition::new("min", vec![Unit::of(UnitKind::Second).times(60.0)]);
        let second = UnitDefinition::new("s", vec![Unit::of(UnitKind::Second)]);
        assert_eq!(convert(2.0, &minute, &second), Some(120.0));
    }
}
