//! SI dimensional analysis for unit kinds.
//!
//! Every [`UnitKind`] maps to a vector of exponents over the seven SI base
//! dimensions plus a numeric factor to SI coherent units. Two unit
//! definitions are *commensurable* iff their dimension vectors match; the
//! ratio of their factors is then the conversion factor.

use std::fmt;
use std::ops::{Add, Neg, Sub};

use crate::kind::UnitKind;

/// Exponents over the SI base dimensions
/// (metre, kilogram, second, ampere, kelvin, mole, candela).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dimension {
    /// Length (metre).
    pub length: i8,
    /// Mass (kilogram).
    pub mass: i8,
    /// Time (second).
    pub time: i8,
    /// Electric current (ampere).
    pub current: i8,
    /// Thermodynamic temperature (kelvin).
    pub temperature: i8,
    /// Amount of substance (mole).
    pub amount: i8,
    /// Luminous intensity (candela).
    pub luminosity: i8,
}

impl Dimension {
    /// The dimensionless dimension.
    pub const NONE: Dimension = Dimension {
        length: 0,
        mass: 0,
        time: 0,
        current: 0,
        temperature: 0,
        amount: 0,
        luminosity: 0,
    };

    /// True when every exponent is zero.
    pub fn is_dimensionless(&self) -> bool {
        *self == Dimension::NONE
    }

    /// Multiply all exponents by `n` (raising a unit to a power).
    pub fn scaled(self, n: i8) -> Dimension {
        Dimension {
            length: self.length * n,
            mass: self.mass * n,
            time: self.time * n,
            current: self.current * n,
            temperature: self.temperature * n,
            amount: self.amount * n,
            luminosity: self.luminosity * n,
        }
    }
}

impl Add for Dimension {
    type Output = Dimension;
    fn add(self, rhs: Dimension) -> Dimension {
        Dimension {
            length: self.length + rhs.length,
            mass: self.mass + rhs.mass,
            time: self.time + rhs.time,
            current: self.current + rhs.current,
            temperature: self.temperature + rhs.temperature,
            amount: self.amount + rhs.amount,
            luminosity: self.luminosity + rhs.luminosity,
        }
    }
}

impl Sub for Dimension {
    type Output = Dimension;
    fn sub(self, rhs: Dimension) -> Dimension {
        self + (-rhs)
    }
}

impl Neg for Dimension {
    type Output = Dimension;
    fn neg(self) -> Dimension {
        self.scaled(-1)
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: [(&str, i8); 7] = [
            ("m", self.length),
            ("kg", self.mass),
            ("s", self.time),
            ("A", self.current),
            ("K", self.temperature),
            ("mol", self.amount),
            ("cd", self.luminosity),
        ];
        let mut wrote = false;
        for (symbol, exp) in parts {
            if exp != 0 {
                if wrote {
                    f.write_str("·")?;
                }
                write!(f, "{symbol}^{exp}")?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("1")?;
        }
        Ok(())
    }
}

/// Dimension and SI factor of a base unit kind.
///
/// The factor converts one of the unit into SI coherent units, e.g.
/// `litre → (L^3, 1e-3)` because 1 litre = 10⁻³ m³. Celsius is treated as
/// kelvin for dimension purposes (offsets are out of scope for rate math;
/// SBML models use kelvin-sized degrees).
pub fn of_kind(kind: UnitKind) -> (Dimension, f64) {
    use UnitKind::*;
    let d = |length, mass, time, current, temperature, amount, luminosity| Dimension {
        length,
        mass,
        time,
        current,
        temperature,
        amount,
        luminosity,
    };
    match kind {
        Ampere => (d(0, 0, 0, 1, 0, 0, 0), 1.0),
        Becquerel | Hertz => (d(0, 0, -1, 0, 0, 0, 0), 1.0),
        Candela => (d(0, 0, 0, 0, 0, 0, 1), 1.0),
        Celsius | Kelvin => (d(0, 0, 0, 0, 1, 0, 0), 1.0),
        Coulomb => (d(0, 0, 1, 1, 0, 0, 0), 1.0),
        Dimensionless | Radian | Steradian | Item => (Dimension::NONE, 1.0),
        Farad => (d(-2, -1, 4, 2, 0, 0, 0), 1.0),
        Gram => (d(0, 1, 0, 0, 0, 0, 0), 1e-3),
        Gray | Sievert => (d(2, 0, -2, 0, 0, 0, 0), 1.0),
        Henry => (d(2, 1, -2, -2, 0, 0, 0), 1.0),
        Joule => (d(2, 1, -2, 0, 0, 0, 0), 1.0),
        Katal => (d(0, 0, -1, 0, 0, 1, 0), 1.0),
        Kilogram => (d(0, 1, 0, 0, 0, 0, 0), 1.0),
        Litre => (d(3, 0, 0, 0, 0, 0, 0), 1e-3),
        Lumen => (d(0, 0, 0, 0, 0, 0, 1), 1.0),
        Lux => (d(-2, 0, 0, 0, 0, 0, 1), 1.0),
        Metre => (d(1, 0, 0, 0, 0, 0, 0), 1.0),
        Mole => (d(0, 0, 0, 0, 0, 1, 0), 1.0),
        Newton => (d(1, 1, -2, 0, 0, 0, 0), 1.0),
        Ohm => (d(2, 1, -3, -2, 0, 0, 0), 1.0),
        Pascal => (d(-1, 1, -2, 0, 0, 0, 0), 1.0),
        Second => (d(0, 0, 1, 0, 0, 0, 0), 1.0),
        Siemens => (d(-2, -1, 3, 2, 0, 0, 0), 1.0),
        Tesla => (d(0, 1, -2, -1, 0, 0, 0), 1.0),
        Volt => (d(2, 1, -3, -1, 0, 0, 0), 1.0),
        Watt => (d(2, 1, -3, 0, 0, 0, 0), 1.0),
        Weber => (d(2, 1, -2, -1, 0, 0, 0), 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ALL_KINDS;

    #[test]
    fn litre_is_cubic_decimetre() {
        let (dim, factor) = of_kind(UnitKind::Litre);
        assert_eq!(dim, Dimension { length: 3, ..Dimension::NONE });
        assert_eq!(factor, 1e-3);
    }

    #[test]
    fn derived_units_decompose() {
        // newton = kg·m/s²
        let (n, _) = of_kind(UnitKind::Newton);
        let (kg, _) = of_kind(UnitKind::Kilogram);
        let (m, _) = of_kind(UnitKind::Metre);
        let (s, _) = of_kind(UnitKind::Second);
        assert_eq!(n, kg + m - s.scaled(2));

        // joule = newton·metre; watt = joule/second
        let (j, _) = of_kind(UnitKind::Joule);
        assert_eq!(j, n + m);
        let (w, _) = of_kind(UnitKind::Watt);
        assert_eq!(w, j - s);

        // katal = mol/s
        let (kat, _) = of_kind(UnitKind::Katal);
        let (mol, _) = of_kind(UnitKind::Mole);
        assert_eq!(kat, mol - s);
    }

    #[test]
    fn dimensionless_kinds() {
        for k in [UnitKind::Dimensionless, UnitKind::Radian, UnitKind::Steradian, UnitKind::Item] {
            assert!(of_kind(k).0.is_dimensionless(), "{k}");
        }
    }

    #[test]
    fn all_factors_positive_finite() {
        for k in ALL_KINDS {
            let (_, f) = of_kind(k);
            assert!(f.is_finite() && f > 0.0, "{k}");
        }
    }

    #[test]
    fn arithmetic_identities() {
        let (m, _) = of_kind(UnitKind::Metre);
        assert_eq!(m - m, Dimension::NONE);
        assert_eq!(-m + m, Dimension::NONE);
        assert_eq!(m.scaled(0), Dimension::NONE);
        assert_eq!(m.scaled(2) - m, m);
    }

    #[test]
    fn display_formatting() {
        let (n, _) = of_kind(UnitKind::Newton);
        assert_eq!(n.to_string(), "m^1·kg^1·s^-2");
        assert_eq!(Dimension::NONE.to_string(), "1");
    }
}
