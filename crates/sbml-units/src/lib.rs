//! Units of measurement for SBML models.
//!
//! Two models being merged may express the *same* quantity in *different*
//! units — the paper calls this out as "a significant problem encountered
//! during conflict checking". This crate supplies the machinery the merge
//! engine uses to decide whether two values agree once units are reconciled:
//!
//! * [`kind`] — the 30+ SBML base unit kinds,
//! * [`definition`] — unit definitions (`kind^exponent · 10^scale ·
//!   multiplier` products) with canonical signatures, so `litre` and
//!   `0.001 m^3` compare equal,
//! * [`dimension`] — SI dimensional analysis behind those signatures,
//! * [`convert`] — numeric conversion factors between commensurable unit
//!   definitions, plus the paper's Fig. 6 **moles → molecules** conversions
//!   for zeroth/first/second-order rate constants (after Wilkinson,
//!   *Stochastic Modelling for Systems Biology*).
//!
//! # Example: Fig. 6 conversions
//!
//! ```
//! use sbml_units::convert::{deterministic_to_stochastic, ReactionOrder, AVOGADRO};
//!
//! let volume = 1e-15; // litres, roughly an E. coli cell
//! // First order: c = k, independent of volume.
//! assert_eq!(deterministic_to_stochastic(0.1, ReactionOrder::First, volume), 0.1);
//! // Zeroth order: c = nA · k · V.
//! let c0 = deterministic_to_stochastic(1e-7, ReactionOrder::Zeroth, volume);
//! assert!((c0 - 1e-7 * AVOGADRO * volume).abs() < 1e-6);
//! ```

pub mod convert;
pub mod definition;
pub mod dimension;
pub mod kind;

pub use convert::{
    conversion_factor, deterministic_to_stochastic, stochastic_to_deterministic, ReactionOrder,
    AVOGADRO,
};
pub use definition::{Unit, UnitDefinition, UnitSignature};
pub use dimension::Dimension;
pub use kind::UnitKind;
