//! Unit definitions and their canonical signatures.
//!
//! An SBML unit definition is a product of scaled base units:
//! `(multiplier · 10^scale · kind)^exponent`. The paper compares unit
//! definitions "by checking the list of known units" — here that check is a
//! canonical [`UnitSignature`]: the SI dimension vector plus the overall
//! factor to SI. Signatures are what the merge indexes unit definitions by,
//! making `litre` vs `0.001 m³` or `millimole` vs `10⁻³ mole` unify.

use std::fmt;

use crate::dimension::{of_kind, Dimension};
use crate::kind::UnitKind;

/// One factor of a unit definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unit {
    /// Base unit kind.
    pub kind: UnitKind,
    /// Integer exponent (may be negative: `second^-1`).
    pub exponent: i32,
    /// Power-of-ten prefix (`scale = -3` → milli).
    pub scale: i32,
    /// Arbitrary extra multiplier.
    pub multiplier: f64,
}

impl Unit {
    /// A plain unit of the kind (exponent 1, no scaling).
    pub fn of(kind: UnitKind) -> Unit {
        Unit { kind, exponent: 1, scale: 0, multiplier: 1.0 }
    }

    /// Builder: set the exponent.
    #[must_use]
    pub fn pow(mut self, exponent: i32) -> Unit {
        self.exponent = exponent;
        self
    }

    /// Builder: set the decimal scale.
    #[must_use]
    pub fn scaled(mut self, scale: i32) -> Unit {
        self.scale = scale;
        self
    }

    /// Builder: set the multiplier.
    #[must_use]
    pub fn times(mut self, multiplier: f64) -> Unit {
        self.multiplier = multiplier;
        self
    }

    /// Contribution of this factor to (dimension, SI factor).
    fn contribution(&self) -> (Dimension, f64) {
        let (dim, kind_factor) = of_kind(self.kind);
        let single = self.multiplier * 10f64.powi(self.scale) * kind_factor;
        // exponent applies to the whole scaled unit
        let factor = single.powi(self.exponent);
        (dim.scaled(self.exponent as i8), factor)
    }
}

/// A named unit definition: a product of [`Unit`] factors.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDefinition {
    /// SBML id (referenced by `units` attributes).
    pub id: String,
    /// Optional human-readable name.
    pub name: Option<String>,
    /// The factors.
    pub units: Vec<Unit>,
}

impl UnitDefinition {
    /// Create a definition from factors.
    pub fn new(id: impl Into<String>, units: Vec<Unit>) -> UnitDefinition {
        UnitDefinition { id: id.into(), name: None, units }
    }

    /// Builder: attach a display name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> UnitDefinition {
        self.name = Some(name.into());
        self
    }

    /// The canonical signature (dimension + factor to SI).
    pub fn signature(&self) -> UnitSignature {
        let mut dim = Dimension::NONE;
        let mut factor = 1.0;
        for u in &self.units {
            let (d, f) = u.contribution();
            dim = dim + d;
            factor *= f;
        }
        UnitSignature { dimension: dim, factor }
    }

    /// Are two definitions equivalent (same dimension *and* same factor)?
    /// `millimole` ≠ `mole`, but `litre` == `0.001 m³`.
    pub fn equivalent(&self, other: &UnitDefinition) -> bool {
        self.signature().approx_eq(&other.signature())
    }

    /// Are two definitions commensurable (same dimension, possibly
    /// different magnitude)? `millimole` ~ `mole`.
    pub fn commensurable(&self, other: &UnitDefinition) -> bool {
        self.signature().dimension == other.signature().dimension
    }
}

/// Canonical comparison key for a unit definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitSignature {
    /// SI dimension vector.
    pub dimension: Dimension,
    /// Multiplicative factor to SI coherent units.
    pub factor: f64,
}

impl UnitSignature {
    /// Equality with a relative tolerance on the factor (floating-point
    /// products of scales/multipliers).
    pub fn approx_eq(&self, other: &UnitSignature) -> bool {
        if self.dimension != other.dimension {
            return false;
        }
        let (a, b) = (self.factor, other.factor);
        if a == b {
            return true;
        }
        let scale = a.abs().max(b.abs());
        (a - b).abs() <= scale * 1e-9
    }

    /// A stable text form usable as a hash-map key in the merge indexes.
    pub fn key(&self) -> String {
        // Round the factor's log10 to 9 decimals for a canonical-enough key;
        // approx_eq is the authoritative comparison.
        format!("{}@{:.9e}", self.dimension, self.factor)
    }
}

impl fmt::Display for UnitSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} × {}", self.factor, self.dimension)
    }
}

/// The SBML built-in default units (the "list of known units" the paper
/// consults): `substance`, `volume`, `area`, `length`, `time`.
pub fn builtin(id: &str) -> Option<UnitDefinition> {
    let def = match id {
        "substance" => UnitDefinition::new("substance", vec![Unit::of(UnitKind::Mole)]),
        "volume" => UnitDefinition::new("volume", vec![Unit::of(UnitKind::Litre)]),
        "area" => UnitDefinition::new("area", vec![Unit::of(UnitKind::Metre).pow(2)]),
        "length" => UnitDefinition::new("length", vec![Unit::of(UnitKind::Metre)]),
        "time" => UnitDefinition::new("time", vec![Unit::of(UnitKind::Second)]),
        _ => {
            // Any bare unit kind is also usable where a units id is expected.
            let kind = UnitKind::parse(id)?;
            UnitDefinition::new(id, vec![Unit::of(kind)])
        }
    };
    Some(def)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litre_equals_milli_cubic_metre() {
        let litre = UnitDefinition::new("l", vec![Unit::of(UnitKind::Litre)]);
        let m3_milli =
            UnitDefinition::new("mm3", vec![Unit::of(UnitKind::Metre).pow(3).times(0.1)]);
        // (0.1 m)^3 = 1e-3 m^3 = 1 litre
        assert!(litre.equivalent(&m3_milli));
    }

    #[test]
    fn millimole_commensurable_not_equivalent() {
        let mole = UnitDefinition::new("mol", vec![Unit::of(UnitKind::Mole)]);
        let mmol = UnitDefinition::new("mmol", vec![Unit::of(UnitKind::Mole).scaled(-3)]);
        assert!(mole.commensurable(&mmol));
        assert!(!mole.equivalent(&mmol));
    }

    #[test]
    fn per_second_signature() {
        let hz = UnitDefinition::new("hz", vec![Unit::of(UnitKind::Hertz)]);
        let per_s = UnitDefinition::new("ps", vec![Unit::of(UnitKind::Second).pow(-1)]);
        assert!(hz.equivalent(&per_s));
    }

    #[test]
    fn molarity() {
        // mole/litre has dimension mol·m⁻³ with factor 1000
        let molar = UnitDefinition::new(
            "M",
            vec![Unit::of(UnitKind::Mole), Unit::of(UnitKind::Litre).pow(-1)],
        );
        let sig = molar.signature();
        assert_eq!(sig.dimension.amount, 1);
        assert_eq!(sig.dimension.length, -3);
        assert!((sig.factor - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn second_order_rate_constant_units() {
        // litre·mole⁻¹·second⁻¹ (per M per s)
        let k2 = UnitDefinition::new(
            "k2u",
            vec![
                Unit::of(UnitKind::Litre),
                Unit::of(UnitKind::Mole).pow(-1),
                Unit::of(UnitKind::Second).pow(-1),
            ],
        );
        let sig = k2.signature();
        assert_eq!(sig.dimension.amount, -1);
        assert_eq!(sig.dimension.length, 3);
        assert_eq!(sig.dimension.time, -1);
    }

    #[test]
    fn scale_and_multiplier_combined() {
        // 60 · 10^0 second = minute; (1/60) minute⁻¹ == second⁻¹... check factor math
        let minute = UnitDefinition::new("min", vec![Unit::of(UnitKind::Second).times(60.0)]);
        assert!((minute.signature().factor - 60.0).abs() < 1e-12);
        let per_minute =
            UnitDefinition::new("pmin", vec![Unit::of(UnitKind::Second).times(60.0).pow(-1)]);
        assert!((per_minute.signature().factor - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn gram_vs_kilogram() {
        let kg = UnitDefinition::new("kg", vec![Unit::of(UnitKind::Kilogram)]);
        let g1000 = UnitDefinition::new("g", vec![Unit::of(UnitKind::Gram).scaled(3)]);
        assert!(kg.equivalent(&g1000));
    }

    #[test]
    fn builtins() {
        assert!(builtin("substance").unwrap().equivalent(&UnitDefinition::new(
            "m",
            vec![Unit::of(UnitKind::Mole)]
        )));
        assert!(builtin("volume").is_some());
        assert!(builtin("time").is_some());
        assert!(builtin("area").is_some());
        assert!(builtin("length").is_some());
        // bare kind names work
        assert!(builtin("mole").is_some());
        assert!(builtin("nothing").is_none());
    }

    #[test]
    fn signature_key_stable() {
        let a = UnitDefinition::new("a", vec![Unit::of(UnitKind::Mole), Unit::of(UnitKind::Litre).pow(-1)]);
        let b = UnitDefinition::new(
            "b",
            vec![Unit::of(UnitKind::Litre).pow(-1), Unit::of(UnitKind::Mole)],
        );
        // Order of factors is irrelevant.
        assert_eq!(a.signature().key(), b.signature().key());
    }

    #[test]
    fn empty_definition_is_dimensionless() {
        let d = UnitDefinition::new("d", vec![]);
        assert!(d.signature().dimension.is_dimensionless());
        assert_eq!(d.signature().factor, 1.0);
    }
}
