//! The SBML Level 2 base unit kinds.

use std::fmt;

/// A base unit kind as enumerated by the SBML Level 2 specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // names are the SI/SBML unit names themselves
pub enum UnitKind {
    Ampere,
    Becquerel,
    Candela,
    Celsius,
    Coulomb,
    Dimensionless,
    Farad,
    Gram,
    Gray,
    Henry,
    Hertz,
    Item,
    Joule,
    Katal,
    Kelvin,
    Kilogram,
    Litre,
    Lumen,
    Lux,
    Metre,
    Mole,
    Newton,
    Ohm,
    Pascal,
    Radian,
    Second,
    Siemens,
    Sievert,
    Steradian,
    Tesla,
    Volt,
    Watt,
    Weber,
}

/// All unit kinds, in SBML specification order.
pub const ALL_KINDS: [UnitKind; 33] = [
    UnitKind::Ampere,
    UnitKind::Becquerel,
    UnitKind::Candela,
    UnitKind::Celsius,
    UnitKind::Coulomb,
    UnitKind::Dimensionless,
    UnitKind::Farad,
    UnitKind::Gram,
    UnitKind::Gray,
    UnitKind::Henry,
    UnitKind::Hertz,
    UnitKind::Item,
    UnitKind::Joule,
    UnitKind::Katal,
    UnitKind::Kelvin,
    UnitKind::Kilogram,
    UnitKind::Litre,
    UnitKind::Lumen,
    UnitKind::Lux,
    UnitKind::Metre,
    UnitKind::Mole,
    UnitKind::Newton,
    UnitKind::Ohm,
    UnitKind::Pascal,
    UnitKind::Radian,
    UnitKind::Second,
    UnitKind::Siemens,
    UnitKind::Sievert,
    UnitKind::Steradian,
    UnitKind::Tesla,
    UnitKind::Volt,
    UnitKind::Watt,
    UnitKind::Weber,
];

impl UnitKind {
    /// The SBML attribute value (`"mole"`, `"litre"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Ampere => "ampere",
            UnitKind::Becquerel => "becquerel",
            UnitKind::Candela => "candela",
            UnitKind::Celsius => "Celsius",
            UnitKind::Coulomb => "coulomb",
            UnitKind::Dimensionless => "dimensionless",
            UnitKind::Farad => "farad",
            UnitKind::Gram => "gram",
            UnitKind::Gray => "gray",
            UnitKind::Henry => "henry",
            UnitKind::Hertz => "hertz",
            UnitKind::Item => "item",
            UnitKind::Joule => "joule",
            UnitKind::Katal => "katal",
            UnitKind::Kelvin => "kelvin",
            UnitKind::Kilogram => "kilogram",
            UnitKind::Litre => "litre",
            UnitKind::Lumen => "lumen",
            UnitKind::Lux => "lux",
            UnitKind::Metre => "metre",
            UnitKind::Mole => "mole",
            UnitKind::Newton => "newton",
            UnitKind::Ohm => "ohm",
            UnitKind::Pascal => "pascal",
            UnitKind::Radian => "radian",
            UnitKind::Second => "second",
            UnitKind::Siemens => "siemens",
            UnitKind::Sievert => "sievert",
            UnitKind::Steradian => "steradian",
            UnitKind::Tesla => "tesla",
            UnitKind::Volt => "volt",
            UnitKind::Watt => "watt",
            UnitKind::Weber => "weber",
        }
    }

    /// Parse an SBML `kind` attribute value. Accepts the legacy spellings
    /// `liter` and `meter`.
    pub fn parse(name: &str) -> Option<UnitKind> {
        Some(match name {
            "ampere" => UnitKind::Ampere,
            "becquerel" => UnitKind::Becquerel,
            "candela" => UnitKind::Candela,
            "Celsius" | "celsius" => UnitKind::Celsius,
            "coulomb" => UnitKind::Coulomb,
            "dimensionless" => UnitKind::Dimensionless,
            "farad" => UnitKind::Farad,
            "gram" => UnitKind::Gram,
            "gray" => UnitKind::Gray,
            "henry" => UnitKind::Henry,
            "hertz" => UnitKind::Hertz,
            "item" => UnitKind::Item,
            "joule" => UnitKind::Joule,
            "katal" => UnitKind::Katal,
            "kelvin" => UnitKind::Kelvin,
            "kilogram" => UnitKind::Kilogram,
            "litre" | "liter" => UnitKind::Litre,
            "lumen" => UnitKind::Lumen,
            "lux" => UnitKind::Lux,
            "metre" | "meter" => UnitKind::Metre,
            "mole" => UnitKind::Mole,
            "newton" => UnitKind::Newton,
            "ohm" => UnitKind::Ohm,
            "pascal" => UnitKind::Pascal,
            "radian" => UnitKind::Radian,
            "second" => UnitKind::Second,
            "siemens" => UnitKind::Siemens,
            "sievert" => UnitKind::Sievert,
            "steradian" => UnitKind::Steradian,
            "tesla" => UnitKind::Tesla,
            "volt" => UnitKind::Volt,
            "watt" => UnitKind::Watt,
            "weber" => UnitKind::Weber,
            _ => return None,
        })
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip_all_kinds() {
        for kind in ALL_KINDS {
            assert_eq!(UnitKind::parse(kind.name()), Some(kind), "{kind}");
        }
    }

    #[test]
    fn legacy_spellings() {
        assert_eq!(UnitKind::parse("liter"), Some(UnitKind::Litre));
        assert_eq!(UnitKind::parse("meter"), Some(UnitKind::Metre));
        assert_eq!(UnitKind::parse("celsius"), Some(UnitKind::Celsius));
    }

    #[test]
    fn unknown_rejected() {
        assert_eq!(UnitKind::parse("parsec"), None);
        assert_eq!(UnitKind::parse(""), None);
        assert_eq!(UnitKind::parse("Mole"), None, "case sensitive except Celsius");
    }

    #[test]
    fn ordering_is_stable() {
        let mut sorted = ALL_KINDS;
        sorted.sort();
        assert_eq!(sorted.first(), Some(&UnitKind::Ampere));
        assert_eq!(sorted.last(), Some(&UnitKind::Weber));
    }
}
