//! MC2 — a Monte-Carlo model checker over simulation traces.
//!
//! The paper evaluates composed models by "model checking of properties ...
//! expressed using temporal logic. We then used the Monte Carlo Model
//! Checker (MC2)" (Donaldson & Gilbert, CMSB 2008). MC2's approach:
//! express a property in probabilistic LTL, run `N` independent stochastic
//! simulations, evaluate the LTL formula on each finite trace, and estimate
//! `P(φ)` as the satisfaction fraction.
//!
//! * [`formula`] — the PLTL syntax tree and a text parser
//!   (`"G(A >= 0)"`, `"F[0,10](B > 5)"`, `"(A > 1) U (B > 2)"`),
//! * [`check`] — finite-trace LTL semantics over [`bio_sim::Trace`],
//! * [`monte_carlo`] — the probability estimator with confidence interval.
//!
//! # Example
//!
//! ```
//! use mc2::{check_probability, formula::Formula};
//! use sbml_model::builder::ModelBuilder;
//!
//! let model = ModelBuilder::new("decay")
//!     .compartment("cell", 1.0)
//!     .species("A", 50.0)
//!     .parameter("k", 1.0)
//!     .reaction("deg", &["A"], &[], "k*A")
//!     .build();
//! let phi = Formula::parse("F(A < 5)").unwrap(); // decay eventually empties A
//! let result = check_probability(&model, &phi, 40, 20.0, 0.5).unwrap();
//! assert!(result.estimate > 0.95);
//! ```

pub mod check;
pub mod formula;
pub mod monte_carlo;

pub use check::check_trace;
pub use formula::Formula;
pub use monte_carlo::{check_probability, Mc2Result};
