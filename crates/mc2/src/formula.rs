//! PLTL formulas and their text syntax.
//!
//! Grammar (loosest to tightest):
//!
//! ```text
//! formula  := until
//! until    := unary ( 'U' ['[' lo ',' hi ']'] unary )?
//! unary    := '!' unary
//!           | ('G' | 'F' | 'X') ['[' lo ',' hi ']'] unary
//!           | '(' formula ( ('&&' | '||' | '->') formula )* ')'
//!           | atom
//! atom     := arithmetic comparison (parsed by sbml-math), e.g. `A >= 2*k`
//! ```
//!
//! Atoms are arbitrary boolean-valued [`sbml_math::MathExpr`]s over species
//! ids, parameters and `time`.

use sbml_math::{infix, MathExpr};

/// A PLTL formula over simulation traces.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Boolean-valued state expression.
    Atom(MathExpr),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Next sample.
    Next(Box<Formula>),
    /// Eventually, optionally time-bounded `[lo, hi]`.
    Eventually {
        /// Inner formula.
        inner: Box<Formula>,
        /// Optional time bound (absolute trace time).
        bound: Option<(f64, f64)>,
    },
    /// Globally, optionally time-bounded.
    Globally {
        /// Inner formula.
        inner: Box<Formula>,
        /// Optional time bound.
        bound: Option<(f64, f64)>,
    },
    /// Until, optionally time-bounded on the right obligation.
    Until {
        /// Left formula (must hold until...).
        left: Box<Formula>,
        /// Right formula (...this holds).
        right: Box<Formula>,
        /// Optional time bound.
        bound: Option<(f64, f64)>,
    },
    /// Weak until `φ W ψ`: like until, but satisfied when φ holds to the
    /// end of the trace without ψ ever becoming true.
    WeakUntil {
        /// Left formula.
        left: Box<Formula>,
        /// Right formula.
        right: Box<Formula>,
    },
    /// Release `φ R ψ`: ψ holds up to and including the sample where φ
    /// first holds (or to the end of the trace if φ never does) —
    /// the dual of until.
    Release {
        /// Left (releasing) formula.
        left: Box<Formula>,
        /// Right (obliged) formula.
        right: Box<Formula>,
    },
}

impl Formula {
    /// Parse a formula from text.
    pub fn parse(src: &str) -> Result<Formula, String> {
        let mut p = Parser { src, pos: 0 };
        let f = p.parse_until()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing input at byte {}: {:?}", p.pos, &p.src[p.pos..]));
        }
        Ok(f)
    }

    /// Convenience constructors used by tests and examples.
    pub fn atom(expr: MathExpr) -> Formula {
        Formula::Atom(expr)
    }

    /// `F φ`.
    pub fn eventually(inner: Formula) -> Formula {
        Formula::Eventually { inner: Box::new(inner), bound: None }
    }

    /// `G φ`.
    pub fn globally(inner: Formula) -> Formula {
        Formula::Globally { inner: Box::new(inner), bound: None }
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    /// Is an operator keyword (G/F/X/U) at the cursor, as a standalone
    /// token (not a prefix of an identifier like `Glucose`)?
    fn at_keyword(&mut self, kw: char) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if !rest.starts_with(kw) {
            return false;
        }
        !matches!(rest[kw.len_utf8()..].chars().next(),
            Some(c) if c.is_alphanumeric() || c == '_')
    }

    fn parse_bound(&mut self) -> Result<Option<(f64, f64)>, String> {
        self.skip_ws();
        if !self.eat("[") {
            return Ok(None);
        }
        let lo = self.parse_number()?;
        if !self.eat(",") {
            return Err(format!("expected ',' in time bound at byte {}", self.pos));
        }
        let hi = self.parse_number()?;
        if !self.eat("]") {
            return Err(format!("expected ']' in time bound at byte {}", self.pos));
        }
        if lo > hi {
            return Err(format!("empty time bound [{lo},{hi}]"));
        }
        Ok(Some((lo, hi)))
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_digit() || bytes[end] == b'.' || bytes[end] == b'-'
                || bytes[end] == b'e' || bytes[end] == b'E' || bytes[end] == b'+')
        {
            end += 1;
        }
        let text = &self.src[start..end];
        let v: f64 = text.parse().map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_until(&mut self) -> Result<Formula, String> {
        let left = self.parse_unary()?;
        if self.at_keyword('U') {
            self.pos += 1;
            let bound = self.parse_bound()?;
            let right = self.parse_unary()?;
            return Ok(Formula::Until { left: Box::new(left), right: Box::new(right), bound });
        }
        if self.at_keyword('W') {
            self.pos += 1;
            let right = self.parse_unary()?;
            return Ok(Formula::WeakUntil { left: Box::new(left), right: Box::new(right) });
        }
        if self.at_keyword('R') {
            self.pos += 1;
            let right = self.parse_unary()?;
            return Ok(Formula::Release { left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Formula, String> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(Formula::Not(Box::new(self.parse_unary()?)));
        }
        if self.at_keyword('G') {
            self.pos += 1;
            let bound = self.parse_bound()?;
            return Ok(Formula::Globally { inner: Box::new(self.parse_unary()?), bound });
        }
        if self.at_keyword('F') {
            self.pos += 1;
            let bound = self.parse_bound()?;
            return Ok(Formula::Eventually { inner: Box::new(self.parse_unary()?), bound });
        }
        if self.at_keyword('X') {
            self.pos += 1;
            return Ok(Formula::Next(Box::new(self.parse_unary()?)));
        }
        if self.peek_char() == Some('(') {
            // Could be a parenthesised formula with connectives, or an atom
            // beginning with '(' — try formula first.
            let saved = self.pos;
            self.pos += 1;
            match self.parse_until() {
                Ok(mut acc) => {
                    loop {
                        self.skip_ws();
                        if self.eat("&&") {
                            let rhs = self.parse_until()?;
                            acc = Formula::And(Box::new(acc), Box::new(rhs));
                        } else if self.eat("||") {
                            let rhs = self.parse_until()?;
                            acc = Formula::Or(Box::new(acc), Box::new(rhs));
                        } else if self.eat("->") {
                            let rhs = self.parse_until()?;
                            acc = Formula::Implies(Box::new(acc), Box::new(rhs));
                        } else {
                            break;
                        }
                    }
                    if self.eat(")") {
                        return Ok(acc);
                    }
                    // fall through to atom parse
                    self.pos = saved;
                }
                Err(_) => {
                    self.pos = saved;
                }
            }
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Formula, String> {
        self.skip_ws();
        // An atom runs to the first top-level temporal keyword or closing
        // paren at depth 0.
        let start = self.pos;
        let bytes = self.src.as_bytes();
        let mut depth = 0usize;
        let mut end = start;
        while end < bytes.len() {
            let c = bytes[end] as char;
            match c {
                '(' => depth += 1,
                ')' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                'U' | 'G' | 'F' | 'X' | 'W' | 'R' if depth == 0 => {
                    // keyword only if standalone
                    let prev_ok = end == start
                        || !(bytes[end - 1] as char).is_alphanumeric()
                            && bytes[end - 1] != b'_';
                    let next = bytes.get(end + 1).map(|&b| b as char);
                    let next_ok =
                        !matches!(next, Some(c) if c.is_alphanumeric() || c == '_');
                    if prev_ok && next_ok {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let text = self.src[start..end].trim();
        if text.is_empty() {
            return Err(format!("expected an atomic proposition at byte {start}"));
        }
        let expr = infix::parse(text).map_err(|e| format!("bad atom {text:?}: {e}"))?;
        self.pos = end;
        Ok(Formula::Atom(expr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        let f = Formula::parse("A >= 2").unwrap();
        assert!(matches!(f, Formula::Atom(_)));
        let f = Formula::parse("A + B < 2*k").unwrap();
        assert!(matches!(f, Formula::Atom(_)));
    }

    #[test]
    fn temporal_operators() {
        assert!(matches!(
            Formula::parse("G(A >= 0)").unwrap(),
            Formula::Globally { bound: None, .. }
        ));
        assert!(matches!(
            Formula::parse("F(B > 5)").unwrap(),
            Formula::Eventually { bound: None, .. }
        ));
        assert!(matches!(Formula::parse("X(A > 0)").unwrap(), Formula::Next(_)));
    }

    #[test]
    fn bounded_operators() {
        match Formula::parse("F[0,10](B > 5)").unwrap() {
            Formula::Eventually { bound: Some((lo, hi)), .. } => {
                assert_eq!((lo, hi), (0.0, 10.0));
            }
            other => panic!("{other:?}"),
        }
        match Formula::parse("G[2.5,7.5](A < 100)").unwrap() {
            Formula::Globally { bound: Some((lo, hi)), .. } => {
                assert_eq!((lo, hi), (2.5, 7.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn until() {
        match Formula::parse("(A > 1) U (B > 2)").unwrap() {
            Formula::Until { bound: None, .. } => {}
            other => panic!("{other:?}"),
        }
        match Formula::parse("(A > 1) U[0,5] (B > 2)").unwrap() {
            Formula::Until { bound: Some((0.0, 5.0)), .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connectives() {
        match Formula::parse("(A > 1 && B > 2)").unwrap() {
            // && inside parens parses as one atomic expression via sbml-math
            Formula::Atom(_) => {}
            other => panic!("{other:?}"),
        }
        // Formula-level connectives combine temporal subformulas.
        match Formula::parse("(G(A >= 0) && F(B > 5))").unwrap() {
            Formula::And(l, r) => {
                assert!(matches!(*l, Formula::Globally { .. }));
                assert!(matches!(*r, Formula::Eventually { .. }));
            }
            other => panic!("{other:?}"),
        }
        match Formula::parse("(F(A > 1) -> F(B > 1))").unwrap() {
            Formula::Implies(..) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negation_and_nesting() {
        assert!(matches!(Formula::parse("!F(A > 5)").unwrap(), Formula::Not(_)));
        assert!(matches!(
            Formula::parse("G(F(A > 5))").unwrap(),
            Formula::Globally { .. }
        ));
    }

    #[test]
    fn identifiers_starting_with_keyword_letters() {
        // `Glucose` starts with G but is an identifier, not an operator.
        let f = Formula::parse("Glucose > 5").unwrap();
        assert!(matches!(f, Formula::Atom(_)));
        let f = Formula::parse("F(Glucose > 5)").unwrap();
        assert!(matches!(f, Formula::Eventually { .. }));
        let f = Formula::parse("Final_product >= X_factor").unwrap();
        assert!(matches!(f, Formula::Atom(_)));
    }

    #[test]
    fn errors() {
        assert!(Formula::parse("").is_err());
        assert!(Formula::parse("F[5,2](A > 1)").is_err(), "empty bound");
        assert!(Formula::parse("G(A >").is_err());
        assert!(Formula::parse("(A > 1) U").is_err());
    }
}
