//! Finite-trace LTL semantics.
//!
//! A trace is a finite sequence of sampled states. Semantics follow MC2:
//! `G φ` = φ at every remaining sample; `F φ` = φ at some remaining sample;
//! `X φ` = φ at the next sample (false at the last); `φ U ψ` = ψ at some
//! remaining sample with φ at every sample before it. Time-bounded variants
//! restrict to samples whose time lies in `[lo, hi]` (absolute trace time).

use bio_sim::Trace;
use sbml_math::{evaluate, Env};

use crate::formula::Formula;

/// Evaluate a formula on a trace (at the first sample). Returns an error
/// string when an atom references an unknown identifier.
pub fn check_trace(trace: &Trace, formula: &Formula) -> Result<bool, String> {
    if trace.is_empty() {
        return Err("empty trace".to_owned());
    }
    holds_at(trace, formula, 0)
}

fn env_at(trace: &Trace, idx: usize) -> Env {
    let mut env = Env::new();
    env.time = trace.times[idx];
    for (col, id) in trace.species.iter().enumerate() {
        env.set_var(id.clone(), trace.data[idx][col]);
    }
    env
}

fn holds_at(trace: &Trace, formula: &Formula, idx: usize) -> Result<bool, String> {
    match formula {
        Formula::Atom(expr) => {
            let env = env_at(trace, idx);
            let v = evaluate(expr, &env).map_err(|e| format!("atom evaluation failed: {e}"))?;
            Ok(v != 0.0)
        }
        Formula::Not(inner) => Ok(!holds_at(trace, inner, idx)?),
        Formula::And(l, r) => Ok(holds_at(trace, l, idx)? && holds_at(trace, r, idx)?),
        Formula::Or(l, r) => Ok(holds_at(trace, l, idx)? || holds_at(trace, r, idx)?),
        Formula::Implies(l, r) => Ok(!holds_at(trace, l, idx)? || holds_at(trace, r, idx)?),
        Formula::Next(inner) => {
            if idx + 1 < trace.len() {
                holds_at(trace, inner, idx + 1)
            } else {
                Ok(false)
            }
        }
        Formula::Eventually { inner, bound } => {
            for j in idx..trace.len() {
                if in_bound(trace.times[j], bound) && holds_at(trace, inner, j)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Globally { inner, bound } => {
            for j in idx..trace.len() {
                if in_bound(trace.times[j], bound) && !holds_at(trace, inner, j)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Until { left, right, bound } => {
            for j in idx..trace.len() {
                if in_bound(trace.times[j], bound) && holds_at(trace, right, j)? {
                    return Ok(true);
                }
                if !holds_at(trace, left, j)? {
                    return Ok(false);
                }
            }
            Ok(false)
        }
        Formula::WeakUntil { left, right } => {
            // φ W ψ = (φ U ψ) ∨ G φ
            for j in idx..trace.len() {
                if holds_at(trace, right, j)? {
                    return Ok(true);
                }
                if !holds_at(trace, left, j)? {
                    return Ok(false);
                }
            }
            Ok(true) // φ held to the end of the trace
        }
        Formula::Release { left, right } => {
            // φ R ψ: ψ must hold up to and including the first φ-sample.
            for j in idx..trace.len() {
                if !holds_at(trace, right, j)? {
                    return Ok(false);
                }
                if holds_at(trace, left, j)? {
                    return Ok(true);
                }
            }
            Ok(true) // ψ held to the end: released by trace end
        }
    }
}

fn in_bound(t: f64, bound: &Option<(f64, f64)>) -> bool {
    match bound {
        None => true,
        Some((lo, hi)) => t >= *lo && t <= *hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace where A ramps 0→5 and B ramps 10→5 over t = 0..5.
    fn ramp() -> Trace {
        let mut t = Trace::new(vec!["A".into(), "B".into()]);
        for i in 0..=5 {
            t.push(i as f64, vec![i as f64, 10.0 - i as f64]);
        }
        t
    }

    fn check(src: &str) -> bool {
        check_trace(&ramp(), &Formula::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn atoms_at_first_sample() {
        assert!(check("A == 0"));
        assert!(check("B == 10"));
        assert!(!check("A > 0"));
    }

    #[test]
    fn eventually_and_globally() {
        assert!(check("F(A >= 5)"));
        assert!(!check("F(A > 5)"));
        assert!(check("G(A >= 0)"));
        assert!(check("G(A + B == 10)"), "invariant holds along the ramp");
        assert!(!check("G(A < 3)"));
    }

    #[test]
    fn bounded_operators() {
        assert!(check("F[0,2](A == 2)"));
        assert!(!check("F[0,1](A == 2)"), "A hits 2 only at t=2");
        assert!(check("G[3,5](A >= 3)"));
        assert!(!check("G[0,5](A >= 3)"));
    }

    #[test]
    fn next() {
        assert!(check("X(A == 1)"));
        assert!(!check("X(A == 2)"));
        // X at the end of the trace is false
        let mut single = Trace::new(vec!["A".into()]);
        single.push(0.0, vec![1.0]);
        assert!(!check_trace(&single, &Formula::parse("X(A == 1)").unwrap()).unwrap());
    }

    #[test]
    fn until() {
        // B stays above 5 until A reaches 5 (simultaneously at t=5).
        assert!(check("(B >= 5) U (A == 5)"));
        // B > 7 fails before A reaches 5:
        assert!(!check("(B > 7) U (A == 5)"));
        // Right side never true:
        assert!(!check("(B >= 0) U (A > 99)"));
    }

    #[test]
    fn connectives() {
        assert!(check("(G(A >= 0) && F(B == 5))"));
        assert!(!check("(G(A >= 0) && F(B == -1))"));
        assert!(check("(F(A > 99) -> F(B > 99))"), "vacuous implication");
        assert!(check("!F(A > 99)"));
    }

    #[test]
    fn unknown_identifier_is_error() {
        assert!(check_trace(&ramp(), &Formula::parse("Zed > 0").unwrap()).is_err());
    }

    #[test]
    fn empty_trace_is_error() {
        let t = Trace::new(vec!["A".into()]);
        assert!(check_trace(&t, &Formula::parse("A > 0").unwrap()).is_err());
    }
}

#[cfg(test)]
mod weak_until_release_tests {
    use super::*;
    use crate::formula::Formula;

    fn ramp() -> Trace {
        // A: 0..5 rising; B: 10..5 falling over t=0..5
        let mut t = Trace::new(vec!["A".into(), "B".into()]);
        for i in 0..=5 {
            t.push(i as f64, vec![i as f64, 10.0 - i as f64]);
        }
        t
    }

    fn check(src: &str) -> bool {
        check_trace(&ramp(), &Formula::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn weak_until_with_trigger() {
        // Same as strong until when the right side eventually holds.
        assert!(check("(B >= 5) W (A == 5)"));
        assert!(!check("(B > 7) W (A == 5)"));
    }

    #[test]
    fn weak_until_without_trigger_holds_if_left_global() {
        // Right side never true, but left holds throughout: W succeeds
        // where U fails.
        assert!(check("(B >= 5) W (A > 99)"));
        assert!(!check("(B >= 5) U (A > 99)"));
    }

    #[test]
    fn release_requires_right_until_release_point() {
        // B >= 5 holds throughout; A==3 releases at t=3.
        assert!(check("(A == 3) R (B >= 5)"));
        // Right fails at t=0 (B == 10, so B < 8 false)... construct a case
        // where the obligation fails before release:
        assert!(!check("(A == 5) R (B > 6)"), "B drops to 6 before A reaches 5");
    }

    #[test]
    fn release_without_release_point_needs_global_right() {
        assert!(check("(A > 99) R (B >= 5)"), "never released: G(B >= 5) holds");
        assert!(!check("(A > 99) R (B > 5)"), "B == 5 at the end violates");
    }

    #[test]
    fn parser_recognises_w_and_r() {
        assert!(matches!(
            Formula::parse("(A > 1) W (B > 1)").unwrap(),
            Formula::WeakUntil { .. }
        ));
        assert!(matches!(
            Formula::parse("(A > 1) R (B > 1)").unwrap(),
            Formula::Release { .. }
        ));
    }

    #[test]
    fn release_duality_with_until() {
        // φ R ψ == !(!φ U !ψ) on every sampled trace here.
        for (phi, psi) in [("A == 3", "B >= 5"), ("A == 5", "B > 6"), ("A > 99", "B >= 5")] {
            let direct = check(&format!("({phi}) R ({psi})"));
            let dual = check(&format!("!((!({phi})) U (!({psi})))"));
            assert_eq!(direct, dual, "{phi} R {psi}");
        }
    }
}
