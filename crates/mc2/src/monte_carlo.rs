//! Probability estimation over repeated stochastic runs.
//!
//! `P(φ)` is estimated as the fraction of `N` independent Gillespie
//! trajectories satisfying φ, with a Wilson score interval so callers can
//! reason about estimator confidence (MC2 reports sample estimates the
//! same way).

use bio_sim::ssa::simulate_ssa_system;
use bio_sim::system::ReactionSystem;
use sbml_model::Model;

use crate::check::check_trace;
use crate::formula::Formula;

/// Result of a Monte-Carlo probability check.
#[derive(Debug, Clone, PartialEq)]
pub struct Mc2Result {
    /// Number of runs.
    pub runs: usize,
    /// Runs satisfying the formula.
    pub satisfying: usize,
    /// Point estimate `satisfying / runs`.
    pub estimate: f64,
    /// 95% Wilson score interval.
    pub interval: (f64, f64),
    /// Whether `estimate >= threshold` for the queried threshold.
    pub satisfied: bool,
}

/// Estimate `P(φ)` over `runs` SSA trajectories of length `t_end`
/// (sampled at `t_end / 200`), and compare against `threshold`
/// (the `P ≥ θ [φ]` query form).
pub fn check_probability(
    model: &Model,
    formula: &Formula,
    runs: usize,
    t_end: f64,
    threshold: f64,
) -> Result<Mc2Result, String> {
    if runs == 0 {
        return Err("need at least one run".to_owned());
    }
    let sys = ReactionSystem::compile(model).map_err(|e| e.to_string())?;
    let sample_dt = (t_end / 200.0).max(1e-6);
    let mut satisfying = 0usize;
    for seed in 0..runs as u64 {
        let trace =
            simulate_ssa_system(&sys, t_end, sample_dt, seed).map_err(|e| e.to_string())?;
        if check_trace(&trace, formula)? {
            satisfying += 1;
        }
    }
    let estimate = satisfying as f64 / runs as f64;
    let interval = wilson_interval(satisfying, runs, 1.959_963_984_540_054);
    Ok(Mc2Result { runs, satisfying, estimate, interval, satisfied: estimate >= threshold })
}

/// Wilson score interval for a binomial proportion.
fn wilson_interval(successes: usize, n: usize, z: f64) -> (f64, f64) {
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (((centre - margin) / denom).max(0.0), ((centre + margin) / denom).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn decay() -> Model {
        ModelBuilder::new("decay")
            .compartment("cell", 1.0)
            .species("A", 50.0)
            .parameter("k", 1.0)
            .reaction("deg", &["A"], &[], "k*A")
            .build()
    }

    #[test]
    fn certain_property_estimates_one() {
        let phi = Formula::parse("G(A >= 0)").unwrap();
        let r = check_probability(&decay(), &phi, 20, 5.0, 0.9).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert!(r.satisfied);
        assert_eq!(r.satisfying, 20);
        assert!(r.interval.0 > 0.8);
    }

    #[test]
    fn impossible_property_estimates_zero() {
        let phi = Formula::parse("F(A > 1000)").unwrap();
        let r = check_probability(&decay(), &phi, 20, 5.0, 0.1).unwrap();
        assert_eq!(r.estimate, 0.0);
        assert!(!r.satisfied);
        assert!(r.interval.1 < 0.25);
    }

    #[test]
    fn eventual_decay_detected() {
        let phi = Formula::parse("F(A < 5)").unwrap();
        let r = check_probability(&decay(), &phi, 30, 20.0, 0.5).unwrap();
        assert!(r.estimate > 0.95, "{r:?}");
    }

    #[test]
    fn intermediate_probability_in_open_interval() {
        // With only 5 initial molecules and a short horizon, reaching 0 by
        // t=1 (k=1) has some nontrivial probability strictly inside (0,1).
        let m = ModelBuilder::new("tiny")
            .compartment("cell", 1.0)
            .species("A", 5.0)
            .parameter("k", 1.0)
            .reaction("deg", &["A"], &[], "k*A")
            .build();
        let phi = Formula::parse("F[0,1](A == 0)").unwrap();
        let r = check_probability(&m, &phi, 200, 1.0, 0.5).unwrap();
        assert!(r.estimate > 0.05 && r.estimate < 0.95, "estimate {}", r.estimate);
        assert!(r.interval.0 < r.estimate && r.estimate < r.interval.1);
    }

    #[test]
    fn zero_runs_rejected() {
        let phi = Formula::parse("G(A >= 0)").unwrap();
        assert!(check_probability(&decay(), &phi, 0, 1.0, 0.5).is_err());
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo > 0.39 && lo < 0.51);
        assert!(hi > 0.49 && hi < 0.61);
        let (lo, hi) = wilson_interval(0, 10, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.35);
        let (lo, hi) = wilson_interval(10, 10, 1.96);
        assert!(lo > 0.65);
        assert_eq!(hi, 1.0);
    }
}
