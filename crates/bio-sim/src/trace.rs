//! Time-series traces and the §4.1.3 residual-sum-of-squares comparison.

use std::fmt;

/// A simulation trace: sampled values of every dynamic species over time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Species ids, one per column.
    pub species: Vec<String>,
    /// Sample times (strictly increasing).
    pub times: Vec<f64>,
    /// Row-major samples: `data[t][s]`.
    pub data: Vec<Vec<f64>>,
}

impl Trace {
    /// An empty trace over the given species.
    pub fn new(species: Vec<String>) -> Trace {
        Trace { species, times: Vec::new(), data: Vec::new() }
    }

    /// Append a sample row.
    ///
    /// # Panics
    /// If the row width does not match the species count.
    pub fn push(&mut self, time: f64, row: Vec<f64>) {
        assert_eq!(row.len(), self.species.len(), "row width mismatch");
        self.times.push(time);
        self.data.push(row);
    }

    /// Column index of a species.
    pub fn column(&self, species: &str) -> Option<usize> {
        self.species.iter().position(|s| s == species)
    }

    /// The last sampled value of a species.
    pub fn final_value(&self, species: &str) -> Option<f64> {
        let col = self.column(species)?;
        self.data.last().map(|row| row[col])
    }

    /// Linear interpolation of a species at time `t` (clamped to the
    /// sampled range).
    pub fn value_at(&self, species: &str, t: f64) -> Option<f64> {
        let col = self.column(species)?;
        if self.times.is_empty() {
            return None;
        }
        if t <= self.times[0] {
            return Some(self.data[0][col]);
        }
        if t >= *self.times.last().expect("non-empty") {
            return Some(self.data.last().expect("non-empty")[col]);
        }
        // binary search for the bracketing interval
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.data[idx - 1][col], self.data[idx][col]);
        let alpha = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        Some(v0 + alpha * (v1 - v0))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Render as CSV (time column first), the exchange format of the
    /// paper's §4.1.3 ("a file of time series data of concentrations").
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.len() * 16);
        out.push_str("time");
        for s in &self.species {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (t, row) in self.times.iter().zip(&self.data) {
            out.push_str(&format!("{t}"));
            for v in row {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    /// Display renders the CSV form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_csv())
    }
}

/// Residual sum of squares between two traces over their **shared**
/// species, sampling the second trace at the first trace's time points
/// (§4.1.3: "the sum of squares between identical species from the two
/// models ... close to 0 for all identical species").
///
/// Returns `None` when the traces share no species or either is empty.
pub fn rss_aligned(a: &Trace, b: &Trace) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let shared: Vec<&String> = a.species.iter().filter(|s| b.column(s).is_some()).collect();
    if shared.is_empty() {
        return None;
    }
    let mut rss = 0.0;
    for s in shared {
        let col_a = a.column(s).expect("from a");
        for (idx, &t) in a.times.iter().enumerate() {
            let va = a.data[idx][col_a];
            let vb = b.value_at(s, t).expect("b non-empty");
            rss += (va - vb) * (va - vb);
        }
    }
    Some(rss)
}

/// Per-species RSS, for reporting which species diverge.
pub fn rss_per_species(a: &Trace, b: &Trace) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for s in &a.species {
        let Some(col_a) = a.column(s) else { continue };
        if b.column(s).is_none() {
            continue;
        }
        let mut rss = 0.0;
        for (idx, &t) in a.times.iter().enumerate() {
            let va = a.data[idx][col_a];
            if let Some(vb) = b.value_at(s, t) {
                rss += (va - vb) * (va - vb);
            }
        }
        out.push((s.clone(), rss));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        let mut t = Trace::new(vec!["A".into(), "B".into()]);
        t.push(0.0, vec![0.0, 10.0]);
        t.push(1.0, vec![1.0, 9.0]);
        t.push(2.0, vec![2.0, 8.0]);
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = ramp();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.column("B"), Some(1));
        assert_eq!(t.column("Z"), None);
        assert_eq!(t.final_value("A"), Some(2.0));
    }

    #[test]
    fn interpolation() {
        let t = ramp();
        assert_eq!(t.value_at("A", 0.5), Some(0.5));
        assert_eq!(t.value_at("A", 1.75), Some(1.75));
        assert_eq!(t.value_at("B", 0.5), Some(9.5));
        // clamping
        assert_eq!(t.value_at("A", -5.0), Some(0.0));
        assert_eq!(t.value_at("A", 99.0), Some(2.0));
    }

    #[test]
    fn rss_identical_is_zero() {
        let t = ramp();
        assert_eq!(rss_aligned(&t, &t), Some(0.0));
    }

    #[test]
    fn rss_detects_divergence() {
        let a = ramp();
        let mut b = ramp();
        for row in &mut b.data {
            row[0] += 1.0; // shift species A
        }
        let rss = rss_aligned(&a, &b).unwrap();
        assert!((rss - 3.0).abs() < 1e-12, "3 samples × 1² = 3, got {rss}");
        // per-species attribution
        let per = rss_per_species(&a, &b);
        let a_rss = per.iter().find(|(s, _)| s == "A").unwrap().1;
        let b_rss = per.iter().find(|(s, _)| s == "B").unwrap().1;
        assert!(a_rss > 2.9 && b_rss == 0.0);
    }

    #[test]
    fn rss_over_shared_species_only() {
        let a = ramp();
        let mut c = Trace::new(vec!["B".into(), "Z".into()]);
        c.push(0.0, vec![10.0, 0.0]);
        c.push(2.0, vec![8.0, 0.0]);
        // B matches (linear interpolation fills t=1), Z ignored.
        let rss = rss_aligned(&a, &c).unwrap();
        assert!(rss < 1e-12, "{rss}");
    }

    #[test]
    fn rss_no_overlap_none() {
        let a = ramp();
        let mut z = Trace::new(vec!["Q".into()]);
        z.push(0.0, vec![1.0]);
        assert_eq!(rss_aligned(&a, &z), None);
        assert_eq!(rss_aligned(&a, &Trace::new(vec!["A".into()])), None);
    }

    #[test]
    fn csv_round_shape() {
        let csv = ramp().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,A,B");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_width_panics() {
        let mut t = Trace::new(vec!["A".into()]);
        t.push(0.0, vec![1.0, 2.0]);
    }
}
