//! Terminal rendering of traces — the paper's §4.1.2 "visual comparison of
//! simulations", as an ASCII time-series plot.
//!
//! Deliberately simple: one character column per time bucket, `height` rows,
//! one glyph per species. Good enough to eyeball whether two simulations
//! told the same story, which is exactly how the paper used it ("the graphs
//! of these simulations were then compared to confirm correctness").

use crate::trace::Trace;

/// Render selected species of a trace as an ASCII plot.
///
/// * `species`: which columns to draw (empty = all, up to 8),
/// * `width`/`height`: plot size in characters (clamped to sane minima).
pub fn ascii_plot(trace: &Trace, species: &[&str], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

    let selected: Vec<(usize, String)> = if species.is_empty() {
        trace.species.iter().take(GLYPHS.len()).cloned().enumerate().collect()
    } else {
        species
            .iter()
            .filter_map(|s| trace.column(s).map(|c| (c, (*s).to_owned())))
            .take(GLYPHS.len())
            .collect()
    };
    if selected.is_empty() || trace.is_empty() {
        return "(nothing to plot)\n".to_owned();
    }

    // Global y-range across the selected series.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for row in &trace.data {
        for (col, _) in &selected {
            lo = lo.min(row[*col]);
            hi = hi.max(row[*col]);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return "(non-finite values; cannot plot)\n".to_owned();
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }

    let t0 = trace.times[0];
    let t1 = *trace.times.last().expect("non-empty");
    let t_span = (t1 - t0).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (series_idx, (col, _)) in selected.iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // grid is indexed [y][x]
        for x in 0..width {
            let t = t0 + t_span * x as f64 / (width - 1) as f64;
            let id = &trace.species[*col];
            let Some(v) = trace.value_at(id, t) else { continue };
            let frac = (v - lo) / (hi - lo);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let y = y.min(height - 1);
            grid[y][x] = GLYPHS[series_idx];
        }
    }

    let mut out = String::with_capacity((width + 12) * (height + 3));
    out.push_str(&format!("{hi:>10.3} ┤"));
    for (i, row) in grid.iter().enumerate() {
        if i > 0 {
            out.push_str("           │");
        }
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{lo:>10.3} └"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!("            t = {t0:.2} … {t1:.2}\n"));
    for (i, (_, name)) in selected.iter().enumerate() {
        out.push_str(&format!("            {} {}\n", GLYPHS[i], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        let mut t = Trace::new(vec!["up".into(), "down".into()]);
        for i in 0..=10 {
            t.push(i as f64, vec![i as f64, 10.0 - i as f64]);
        }
        t
    }

    #[test]
    fn plots_all_species_by_default() {
        let p = ascii_plot(&ramp(), &[], 40, 10);
        assert!(p.contains("* up"));
        assert!(p.contains("+ down"));
        assert!(p.contains("10.000"));
        assert!(p.contains("0.000"));
    }

    #[test]
    fn ramp_occupies_opposite_corners() {
        let p = ascii_plot(&ramp(), &["up"], 30, 8);
        let lines: Vec<&str> = p.lines().collect();
        // "up" rises: last data row (low values) has the glyph early,
        // first data row (high values) has it late.
        let first = lines[0];
        let last = lines[7];
        assert!(first.trim_end().ends_with('*'), "{p}");
        assert!(last.contains('*'), "{p}");
        let first_pos = first.rfind('*').unwrap();
        let last_pos = last.find('*').unwrap();
        assert!(last_pos < first_pos, "rising series: low early, high late\n{p}");
    }

    #[test]
    fn empty_and_unknown_species() {
        let empty = Trace::new(vec!["A".into()]);
        assert!(ascii_plot(&empty, &[], 40, 10).contains("nothing to plot"));
        assert!(ascii_plot(&ramp(), &["nope"], 40, 10).contains("nothing to plot"));
    }

    #[test]
    fn flat_series_handled() {
        let mut t = Trace::new(vec!["flat".into()]);
        t.push(0.0, vec![5.0]);
        t.push(1.0, vec![5.0]);
        let p = ascii_plot(&t, &[], 20, 5);
        assert!(p.contains('*'), "{p}");
    }

    #[test]
    fn size_clamped() {
        let p = ascii_plot(&ramp(), &[], 1, 1);
        assert!(p.lines().count() >= 4, "minimum dimensions enforced");
    }
}
