//! Deterministic ODE integration: fixed-step RK4 and adaptive RKF45.

use sbml_model::Model;

use crate::system::{ReactionSystem, SimError};
use crate::trace::Trace;

/// Simulate with classic fourth-order Runge–Kutta at a fixed step.
/// Samples every step; events are checked at step boundaries.
pub fn simulate_rk4(model: &Model, t_end: f64, dt: f64) -> Result<Trace, SimError> {
    if dt.is_nan() || t_end.is_nan() || dt <= 0.0 || t_end < 0.0 {
        return Err(SimError::BadArguments {
            detail: format!("t_end={t_end}, dt={dt} (need dt > 0, t_end >= 0)"),
        });
    }
    let sys = ReactionSystem::compile(model)?;
    simulate_rk4_system(&sys, t_end, dt)
}

/// RK4 over an already-compiled system (reused by benches and MC2).
pub fn simulate_rk4_system(sys: &ReactionSystem, t_end: f64, dt: f64) -> Result<Trace, SimError> {
    let mut state = sys.initial.clone();
    let mut trace = Trace::new(sys.species.clone());
    let mut event_state = vec![false; sys.events.len()];
    let mut t = 0.0;
    trace.push(t, state.clone());
    // Fire any events true at t=0 without counting them as transitions.
    sys.apply_events(&mut state, t, &mut event_state)?;

    while t < t_end - 1e-12 {
        let h = dt.min(t_end - t);
        let k1 = sys.derivatives(&state, t)?;
        let s2: Vec<f64> = state.iter().zip(&k1).map(|(y, k)| y + 0.5 * h * k).collect();
        let k2 = sys.derivatives(&s2, t + 0.5 * h)?;
        let s3: Vec<f64> = state.iter().zip(&k2).map(|(y, k)| y + 0.5 * h * k).collect();
        let k3 = sys.derivatives(&s3, t + 0.5 * h)?;
        let s4: Vec<f64> = state.iter().zip(&k3).map(|(y, k)| y + h * k).collect();
        let k4 = sys.derivatives(&s4, t + h)?;
        for i in 0..state.len() {
            state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        sys.apply_events(&mut state, t, &mut event_state)?;
        trace.push(t, state.clone());
    }
    Ok(trace)
}

/// Runge–Kutta–Fehlberg 4(5) adaptive integration. `tol` is the local
/// error tolerance per unit step; samples at accepted steps.
pub fn simulate_rkf45(model: &Model, t_end: f64, tol: f64) -> Result<Trace, SimError> {
    if tol.is_nan() || t_end.is_nan() || tol <= 0.0 || t_end < 0.0 {
        return Err(SimError::BadArguments {
            detail: format!("t_end={t_end}, tol={tol} (need tol > 0, t_end >= 0)"),
        });
    }
    let sys = ReactionSystem::compile(model)?;
    let mut state = sys.initial.clone();
    let mut trace = Trace::new(sys.species.clone());
    let mut event_state = vec![false; sys.events.len()];
    let mut t = 0.0;
    let mut h = (t_end / 100.0).max(1e-6);
    trace.push(t, state.clone());
    sys.apply_events(&mut state, t, &mut event_state)?;

    const MIN_STEP: f64 = 1e-10;
    let mut steps = 0usize;
    const MAX_STEPS: usize = 2_000_000;

    while t < t_end - 1e-12 {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(SimError::BadArguments {
                detail: format!("RKF45 exceeded {MAX_STEPS} steps (stiff system?)"),
            });
        }
        h = h.min(t_end - t);
        // Fehlberg coefficients.
        let k1 = sys.derivatives(&state, t)?;
        let y2: Vec<f64> = add(&state, &[(h / 4.0, &k1)]);
        let k2 = sys.derivatives(&y2, t + h / 4.0)?;
        let y3: Vec<f64> = add(&state, &[(3.0 * h / 32.0, &k1), (9.0 * h / 32.0, &k2)]);
        let k3 = sys.derivatives(&y3, t + 3.0 * h / 8.0)?;
        let y4: Vec<f64> = add(
            &state,
            &[
                (1932.0 * h / 2197.0, &k1),
                (-7200.0 * h / 2197.0, &k2),
                (7296.0 * h / 2197.0, &k3),
            ],
        );
        let k4 = sys.derivatives(&y4, t + 12.0 * h / 13.0)?;
        let y5: Vec<f64> = add(
            &state,
            &[
                (439.0 * h / 216.0, &k1),
                (-8.0 * h, &k2),
                (3680.0 * h / 513.0, &k3),
                (-845.0 * h / 4104.0, &k4),
            ],
        );
        let k5 = sys.derivatives(&y5, t + h)?;
        let y6: Vec<f64> = add(
            &state,
            &[
                (-8.0 * h / 27.0, &k1),
                (2.0 * h, &k2),
                (-3544.0 * h / 2565.0, &k3),
                (1859.0 * h / 4104.0, &k4),
                (-11.0 * h / 40.0, &k5),
            ],
        );
        let k6 = sys.derivatives(&y6, t + h / 2.0)?;

        // 4th-order solution and 5th-order error estimate.
        let mut err: f64 = 0.0;
        let mut next = state.clone();
        for i in 0..state.len() {
            let order4 = state[i]
                + h * (25.0 / 216.0 * k1[i]
                    + 1408.0 / 2565.0 * k3[i]
                    + 2197.0 / 4104.0 * k4[i]
                    - k5[i] / 5.0);
            let order5 = state[i]
                + h * (16.0 / 135.0 * k1[i]
                    + 6656.0 / 12825.0 * k3[i]
                    + 28561.0 / 56430.0 * k4[i]
                    - 9.0 / 50.0 * k5[i]
                    + 2.0 / 55.0 * k6[i]);
            err = err.max((order5 - order4).abs());
            next[i] = order4;
        }

        if err <= tol * h.max(MIN_STEP) || h <= MIN_STEP {
            // accept
            state = next;
            t += h;
            sys.apply_events(&mut state, t, &mut event_state)?;
            trace.push(t, state.clone());
        }
        // adapt step
        let scale = if err > 0.0 { 0.84 * (tol * h / err).powf(0.25) } else { 2.0 };
        h = (h * scale.clamp(0.1, 4.0)).max(MIN_STEP);
    }
    Ok(trace)
}

fn add(base: &[f64], terms: &[(f64, &Vec<f64>)]) -> Vec<f64> {
    let mut out = base.to_vec();
    for (coeff, v) in terms {
        for (o, x) in out.iter_mut().zip(v.iter()) {
            *o += coeff * x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn decay(k: f64) -> Model {
        ModelBuilder::new("decay")
            .compartment("cell", 1.0)
            .species("A", 100.0)
            .parameter("k", k)
            .reaction("deg", &["A"], &[], "k*A")
            .build()
    }

    #[test]
    fn rk4_matches_analytic_exponential() {
        let trace = simulate_rk4(&decay(0.5), 4.0, 0.01).unwrap();
        let expected = 100.0 * (-0.5_f64 * 4.0).exp();
        let got = trace.final_value("A").unwrap();
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn rkf45_matches_analytic_exponential() {
        let trace = simulate_rkf45(&decay(0.5), 4.0, 1e-8).unwrap();
        let expected = 100.0 * (-0.5_f64 * 4.0).exp();
        let got = trace.final_value("A").unwrap();
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn conservation_in_closed_system() {
        // A <-> B conserves A + B.
        let m = ModelBuilder::new("iso")
            .compartment("cell", 1.0)
            .species("A", 60.0)
            .species("B", 40.0)
            .parameter("kf", 0.3)
            .parameter("kr", 0.1)
            .reaction("f", &["A"], &["B"], "kf*A")
            .reaction("r", &["B"], &["A"], "kr*B")
            .build();
        let trace = simulate_rk4(&m, 20.0, 0.01).unwrap();
        for row in &trace.data {
            let total: f64 = row.iter().sum();
            assert!((total - 100.0).abs() < 1e-6, "mass must be conserved, got {total}");
        }
        // equilibrium: A/B = kr/kf => B = 75, A = 25
        assert!((trace.final_value("A").unwrap() - 25.0).abs() < 0.1);
        assert!((trace.final_value("B").unwrap() - 75.0).abs() < 0.1);
    }

    #[test]
    fn michaelis_menten_saturates() {
        // Fig. 12 kinetics: v = Vmax*S/(Km+S).
        let m = ModelBuilder::new("mm")
            .compartment("cell", 1.0)
            .species("S", 1000.0)
            .species("P", 0.0)
            .parameter("Vmax", 5.0)
            .parameter("Km", 10.0)
            .reaction("cat", &["S"], &["P"], "Vmax*S/(Km+S)")
            .build();
        let trace = simulate_rk4(&m, 1.0, 0.001).unwrap();
        // At S >> Km the rate is ~Vmax: P(1) ≈ 5.
        let p = trace.final_value("P").unwrap();
        assert!((p - 5.0).abs() < 0.05, "{p}");
    }

    #[test]
    fn mass_action_second_order() {
        // A + B -> C with k*A*B (paper Fig. 11).
        let m = ModelBuilder::new("bi")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .species("B", 10.0)
            .species("C", 0.0)
            .parameter("k", 0.01)
            .reaction("bind", &["A", "B"], &["C"], "k*A*B")
            .build();
        let trace = simulate_rk4(&m, 50.0, 0.01).unwrap();
        // Equal initial amounts: A(t) = A0/(1 + k*A0*t) = 10/(1+0.01*10*50) = 10/6
        let a = trace.final_value("A").unwrap();
        assert!((a - 10.0 / 6.0).abs() < 1e-3, "{a}");
        // C = A0 - A
        let c = trace.final_value("C").unwrap();
        assert!((c - (10.0 - 10.0 / 6.0)).abs() < 1e-3);
    }

    #[test]
    fn reversible_mass_action_net_rate() {
        // Paper Fig. 11 right: rate = k1*A - k2*B as a single reversible law.
        let m = ModelBuilder::new("rev")
            .compartment("cell", 1.0)
            .species("A", 100.0)
            .species("B", 0.0)
            .parameter("k1", 0.2)
            .parameter("k2", 0.1)
            .reversible_reaction("iso", &["A"], &["B"], "k1*A - k2*B")
            .build();
        let trace = simulate_rk4(&m, 60.0, 0.01).unwrap();
        // equilibrium A/B = k2/k1 -> B = 2A; A+B=100 -> A=33.33
        assert!((trace.final_value("A").unwrap() - 100.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn events_inject_mass() {
        let m = ModelBuilder::new("ev")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .event("pulse", "time >= 5", &[("A", "A + 100")])
            .build();
        let trace = simulate_rk4(&m, 10.0, 0.1).unwrap();
        assert_eq!(trace.value_at("A", 4.0), Some(0.0));
        assert!((trace.final_value("A").unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rkf45_uses_fewer_steps_on_smooth_problems() {
        let fine = simulate_rk4(&decay(0.1), 10.0, 0.001).unwrap();
        let adaptive = simulate_rkf45(&decay(0.1), 10.0, 1e-6).unwrap();
        assert!(
            adaptive.len() < fine.len() / 5,
            "adaptive {} vs fixed {}",
            adaptive.len(),
            fine.len()
        );
        // and still accurate
        let diff = (adaptive.final_value("A").unwrap() - fine.final_value("A").unwrap()).abs();
        assert!(diff < 1e-3);
    }

    #[test]
    fn bad_arguments_rejected() {
        assert!(matches!(
            simulate_rk4(&decay(0.1), 1.0, 0.0),
            Err(SimError::BadArguments { .. })
        ));
        assert!(matches!(
            simulate_rk4(&decay(0.1), -1.0, 0.1),
            Err(SimError::BadArguments { .. })
        ));
        assert!(matches!(
            simulate_rkf45(&decay(0.1), 1.0, -1e-6),
            Err(SimError::BadArguments { .. })
        ));
    }

    #[test]
    fn rk4_step_clamps_to_horizon() {
        let trace = simulate_rk4(&decay(0.1), 0.25, 0.1).unwrap();
        let last = *trace.times.last().unwrap();
        assert!((last - 0.25).abs() < 1e-9, "{last}");
    }
}
