//! Gillespie's direct stochastic simulation algorithm.
//!
//! Species values are treated as molecule counts; kinetic laws supply the
//! propensities, with the combinatorial correction for multi-molecule
//! reactants (`X·(X−1)/2` in place of `X²` for a homodimerisation, after
//! Wilkinson — the same book the paper's Fig. 6 conversions come from).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbml_model::Model;

use crate::system::{ReactionSystem, SimError};
use crate::trace::Trace;

/// Simulate one stochastic trajectory up to `t_end`, sampling the state
/// every `sample_dt`, using the given RNG seed.
pub fn simulate_ssa(
    model: &Model,
    t_end: f64,
    sample_dt: f64,
    seed: u64,
) -> Result<Trace, SimError> {
    if sample_dt.is_nan() || t_end.is_nan() || sample_dt <= 0.0 || t_end < 0.0 {
        return Err(SimError::BadArguments {
            detail: format!("t_end={t_end}, sample_dt={sample_dt}"),
        });
    }
    let sys = ReactionSystem::compile(model)?;
    simulate_ssa_system(&sys, t_end, sample_dt, seed)
}

/// SSA over a precompiled system (reused by MC2 for repeated runs).
pub fn simulate_ssa_system(
    sys: &ReactionSystem,
    t_end: f64,
    sample_dt: f64,
    seed: u64,
) -> Result<Trace, SimError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Integer molecule counts.
    let mut state: Vec<f64> = sys.initial.iter().map(|v| v.round().max(0.0)).collect();
    let mut trace = Trace::new(sys.species.clone());
    let mut t = 0.0;
    let mut next_sample = 0.0;

    // sample t=0
    while next_sample <= t_end + 1e-12 {
        if t >= next_sample {
            trace.push(next_sample, state.clone());
            next_sample += sample_dt;
        } else {
            break;
        }
    }

    loop {
        // Propensities from kinetic laws with combinatorial correction.
        let env = sys.env_for(&state, t);
        let mut total = 0.0;
        let mut propensities = Vec::with_capacity(sys.reactions.len());
        for r in &sys.reactions {
            let mut a = sbml_math::evaluate(&r.rate, &env).map_err(|source| SimError::Eval {
                context: format!("propensity of '{}'", r.id),
                source,
            })?;
            if !a.is_finite() || a < 0.0 {
                a = 0.0;
            }
            // Combinatorial correction for n-th order in a single species:
            // replace X^n with X(X-1)...(X-n+1)/n! — ratio applied directly.
            for &(i, stoich) in &r.reactants {
                let n = stoich.round() as u64;
                if n >= 2 {
                    let x = state[i];
                    let xn = x.powi(n as i32);
                    if xn > 0.0 {
                        let mut falling = 1.0;
                        let mut fact = 1.0;
                        for j in 0..n {
                            falling *= (x - j as f64).max(0.0);
                            fact *= (j + 1) as f64;
                        }
                        a *= (falling / fact) / xn;
                    }
                }
            }
            // Can't fire if a reactant is exhausted.
            if r.reactants.iter().any(|&(i, stoich)| state[i] < stoich) {
                a = 0.0;
            }
            propensities.push(a);
            total += a;
        }

        if total <= 0.0 {
            break; // system exhausted: state constant hereafter
        }

        // Time to next event ~ Exp(total).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let tau = -u1.ln() / total;
        let t_next = t + tau;

        // Emit samples crossed by this jump (state is constant in between).
        while next_sample <= t_end + 1e-12 && next_sample < t_next {
            trace.push(next_sample, state.clone());
            next_sample += sample_dt;
        }
        if t_next > t_end {
            break;
        }
        t = t_next;

        // Choose the reaction.
        let pick: f64 = rng.gen_range(0.0..total);
        let mut acc = 0.0;
        let mut chosen = propensities.len() - 1;
        for (idx, a) in propensities.iter().enumerate() {
            acc += a;
            if pick < acc {
                chosen = idx;
                break;
            }
        }
        for &(i, d) in &sys.reactions[chosen].delta {
            state[i] = (state[i] + d).max(0.0);
        }
    }

    // Fill trailing samples with the final state.
    while next_sample <= t_end + 1e-12 {
        trace.push(next_sample, state.clone());
        next_sample += sample_dt;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn decay() -> Model {
        ModelBuilder::new("decay")
            .compartment("cell", 1.0)
            .species("A", 1000.0)
            .parameter("k", 0.5)
            .reaction("deg", &["A"], &[], "k*A")
            .build()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_ssa(&decay(), 2.0, 0.1, 42).unwrap();
        let b = simulate_ssa(&decay(), 2.0, 0.1, 42).unwrap();
        assert_eq!(a, b);
        let c = simulate_ssa(&decay(), 2.0, 0.1, 43).unwrap();
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn tracks_ode_mean_for_large_counts() {
        // With 1000 molecules the stochastic mean tracks the ODE closely.
        let mut finals = Vec::new();
        for seed in 0..20 {
            let t = simulate_ssa(&decay(), 1.0, 0.5, seed).unwrap();
            finals.push(t.final_value("A").unwrap());
        }
        let mean: f64 = finals.iter().sum::<f64>() / finals.len() as f64;
        let expected = 1000.0 * (-0.5_f64).exp(); // ≈ 606.5
        assert!(
            (mean - expected).abs() < 25.0,
            "mean {mean} should approximate ODE {expected}"
        );
    }

    #[test]
    fn exhaustion_stops_firing() {
        let m = ModelBuilder::new("tiny")
            .compartment("cell", 1.0)
            .species("A", 3.0)
            .parameter("k", 100.0)
            .reaction("deg", &["A"], &[], "k*A")
            .build();
        let t = simulate_ssa(&m, 10.0, 1.0, 7).unwrap();
        assert_eq!(t.final_value("A"), Some(0.0));
        // monotone non-increasing
        let col = t.column("A").unwrap();
        for w in t.data.windows(2) {
            assert!(w[1][col] <= w[0][col]);
        }
    }

    #[test]
    fn counts_never_negative() {
        let m = ModelBuilder::new("bi")
            .compartment("cell", 1.0)
            .species("A", 50.0)
            .species("B", 30.0)
            .species("C", 0.0)
            .parameter("k", 0.1)
            .reaction("bind", &["A", "B"], &["C"], "k*A*B")
            .build();
        let t = simulate_ssa(&m, 5.0, 0.1, 11).unwrap();
        for row in &t.data {
            for &v in row {
                assert!(v >= 0.0);
            }
        }
        // B limits: exactly 30 C can form
        assert!(t.final_value("C").unwrap() <= 30.0);
    }

    #[test]
    fn homodimerisation_uses_combinatorial_propensity() {
        // 2A -> D. With X=2 molecules the propensity must be k·X(X−1)/2 = k,
        // not k·X² — so exactly one dimer forms and the system halts.
        use sbml_model::{KineticLaw, Reaction, SpeciesReference};
        let mut r = Reaction::new("dim");
        r.reactants = vec![SpeciesReference::new("A").with_stoichiometry(2.0)];
        r.products = vec![SpeciesReference::new("D")];
        r.kinetic_law = Some(KineticLaw::new(sbml_math::infix::parse("k*A*A").unwrap()));
        let m = ModelBuilder::new("dimer")
            .compartment("cell", 1.0)
            .species("A", 2.0)
            .species("D", 0.0)
            .parameter("k", 10.0)
            .reaction_full(r)
            .build();
        let t = simulate_ssa(&m, 100.0, 10.0, 3).unwrap();
        assert_eq!(t.final_value("D"), Some(1.0));
        assert_eq!(t.final_value("A"), Some(0.0));
    }

    #[test]
    fn sampling_grid_is_regular() {
        let t = simulate_ssa(&decay(), 1.0, 0.25, 5).unwrap();
        let expected: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        assert_eq!(t.times.len(), expected.len());
        for (a, b) in t.times.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bad_arguments() {
        assert!(simulate_ssa(&decay(), 1.0, 0.0, 1).is_err());
        assert!(simulate_ssa(&decay(), -1.0, 0.1, 1).is_err());
    }
}
