//! Simulation of SBML biochemical network models.
//!
//! The paper evaluates merge correctness by *simulating* the composed and
//! expected models and comparing the trajectories (§4.1.2 visually, §4.1.3
//! by residual sum of squares), and its model checker (§4.1.4, MC2) needs
//! stochastic runs. This crate supplies both simulation regimes:
//!
//! * [`system`] — compiles a [`sbml_model::Model`] into an executable
//!   reaction system (function definitions inlined, local parameters bound,
//!   stoichiometry assembled, rules and events wired),
//! * [`ode`] — deterministic integration: fixed-step RK4 and adaptive
//!   RKF45 (Runge–Kutta–Fehlberg),
//! * [`ssa`] — Gillespie's direct stochastic simulation algorithm, with
//!   mass-action propensities derived from the kinetic laws,
//! * [`trace`] — time-series containers, interpolation and the §4.1.3
//!   residual-sum-of-squares comparison.
//!
//! # Example
//!
//! ```
//! use bio_sim::{ode, trace::rss_aligned};
//! use sbml_model::builder::ModelBuilder;
//!
//! let model = ModelBuilder::new("decay")
//!     .compartment("cell", 1.0)
//!     .species("A", 100.0)
//!     .parameter("k", 0.5)
//!     .reaction("deg", &["A"], &[], "k*A")
//!     .build();
//! let trace = ode::simulate_rk4(&model, 10.0, 0.01).unwrap();
//! let final_a = trace.final_value("A").unwrap();
//! assert!((final_a - 100.0 * (-0.5_f64 * 10.0).exp()).abs() < 1e-3);
//!
//! // §4.1.3: identical models ⇒ RSS ≈ 0.
//! let again = ode::simulate_rk4(&model, 10.0, 0.01).unwrap();
//! assert!(rss_aligned(&trace, &again).unwrap() < 1e-12);
//! ```

pub mod ode;
pub mod plot;
pub mod ssa;
pub mod system;
pub mod trace;

pub use ode::{simulate_rk4, simulate_rkf45};
pub use plot::ascii_plot;
pub use ssa::simulate_ssa;
pub use system::{ReactionSystem, SimError};
pub use trace::{rss_aligned, Trace};
