//! Compiling a model into an executable reaction system.

use std::collections::HashMap;
use std::fmt;

use sbml_math::rewrite::inline_call;
use sbml_math::{evaluate, Env, MathExpr};
use sbml_model::{Model, Rule};

/// Errors preparing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The model references something the simulator cannot resolve.
    Unresolvable {
        /// Description (component and identifier).
        detail: String,
    },
    /// Math evaluation failed mid-simulation.
    Eval {
        /// Where.
        context: String,
        /// The math error.
        source: sbml_math::MathError,
    },
    /// Bad simulation parameters (non-positive step, negative horizon...).
    BadArguments {
        /// Description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unresolvable { detail } => write!(f, "cannot simulate: {detail}"),
            SimError::Eval { context, source } => write!(f, "evaluation error in {context}: {source}"),
            SimError::BadArguments { detail } => write!(f, "bad simulation arguments: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One compiled reaction: inlined rate expression plus net stoichiometry.
#[derive(Debug, Clone)]
pub struct CompiledReaction {
    /// Reaction id (for reporting).
    pub id: String,
    /// Rate expression with function definitions inlined and local
    /// parameters substituted as constants.
    pub rate: MathExpr,
    /// Net state change per firing: (species index, delta).
    pub delta: Vec<(usize, f64)>,
    /// Reactant multiset for SSA propensity corrections:
    /// (species index, stoichiometry).
    pub reactants: Vec<(usize, f64)>,
}

/// An executable system compiled from a model.
#[derive(Debug, Clone)]
pub struct ReactionSystem {
    /// Species ids in state-vector order (dynamic species only — boundary
    /// and constant species stay in the environment, not the state).
    pub species: Vec<String>,
    /// Initial state.
    pub initial: Vec<f64>,
    /// Compiled reactions.
    pub reactions: Vec<CompiledReaction>,
    /// Rate rules: (species index in state, derivative expression) — only
    /// rate rules targeting dynamic species are integrated.
    pub rate_rules: Vec<(usize, MathExpr)>,
    /// Assignment rules applied before each derivative evaluation:
    /// (variable, expression).
    pub assignments: Vec<(String, MathExpr)>,
    /// Events: (trigger, [(variable, expression)]).
    pub events: Vec<(MathExpr, Vec<(String, MathExpr)>)>,
    /// The base environment: parameters, compartments, constant species,
    /// function definitions.
    pub base_env: Env,
    species_index: HashMap<String, usize>,
}

impl ReactionSystem {
    /// Compile a model. Initial assignments are honoured; function calls in
    /// kinetic laws are inlined once.
    pub fn compile(model: &Model) -> Result<ReactionSystem, SimError> {
        let mut base_env = Env::new();
        for f in &model.function_definitions {
            base_env.set_function(f.id.clone(), f.as_lambda());
        }
        for c in &model.compartments {
            base_env.set_var(c.id.clone(), c.size.unwrap_or(1.0));
        }
        for p in &model.parameters {
            if let Some(v) = p.value {
                base_env.set_var(p.id.clone(), v);
            }
        }

        // Dynamic species become the state vector; constant/boundary
        // species are environment constants.
        let mut species = Vec::new();
        let mut species_index = HashMap::new();
        let mut initial = Vec::new();
        for s in &model.species {
            let value = s.initial_value().unwrap_or(0.0);
            if s.constant || s.boundary_condition {
                base_env.set_var(s.id.clone(), value);
            } else {
                species_index.insert(s.id.clone(), species.len());
                species.push(s.id.clone());
                initial.push(value);
            }
        }

        // Apply initial assignments (over both state and env).
        {
            let mut env = base_env.clone();
            for (id, value) in species_index.iter().map(|(id, &i)| (id.clone(), initial[i])) {
                env.set_var(id, value);
            }
            for ia in &model.initial_assignments {
                if let Ok(v) = evaluate(&ia.math, &env) {
                    if let Some(&i) = species_index.get(&ia.symbol) {
                        initial[i] = v;
                    } else {
                        base_env.set_var(ia.symbol.clone(), v);
                    }
                    env.set_var(ia.symbol.clone(), v);
                }
            }
        }

        // Compile reactions.
        let functions = base_env.functions.clone();
        let mut reactions = Vec::with_capacity(model.reactions.len());
        for r in &model.reactions {
            let Some(kl) = &r.kinetic_law else {
                continue; // reactions without kinetics contribute nothing
            };
            // Inline function calls (repeat until no calls remain, bounded).
            let mut rate = kl.math.clone();
            for _ in 0..8 {
                let mut inlined_any = false;
                rate = inline_functions(&rate, &functions, &mut inlined_any);
                if !inlined_any {
                    break;
                }
            }
            // Bind local parameters as constants.
            for p in &kl.parameters {
                if let Some(v) = p.value {
                    rate = sbml_math::rewrite::substitute(&rate, &p.id, &MathExpr::Num(v));
                }
            }

            let mut delta: HashMap<usize, f64> = HashMap::new();
            for sr in &r.reactants {
                if let Some(&i) = species_index.get(&sr.species) {
                    *delta.entry(i).or_insert(0.0) -= sr.stoichiometry;
                }
            }
            for sr in &r.products {
                if let Some(&i) = species_index.get(&sr.species) {
                    *delta.entry(i).or_insert(0.0) += sr.stoichiometry;
                }
            }
            let mut delta: Vec<(usize, f64)> =
                delta.into_iter().filter(|(_, d)| *d != 0.0).collect();
            delta.sort_by_key(|(i, _)| *i);
            let reactants = r
                .reactants
                .iter()
                .filter_map(|sr| species_index.get(&sr.species).map(|&i| (i, sr.stoichiometry)))
                .collect();
            reactions.push(CompiledReaction { id: r.id.clone(), rate, delta, reactants });
        }

        // Rules.
        let mut rate_rules = Vec::new();
        let mut assignments = Vec::new();
        for rule in &model.rules {
            match rule {
                Rule::Rate { variable, math } => {
                    if let Some(&i) = species_index.get(variable) {
                        rate_rules.push((i, math.clone()));
                    }
                    // Rate rules on parameters are treated as unresolvable
                    // only if the parameter is actually used — keep simple:
                    // ignored (documented limitation).
                }
                Rule::Assignment { variable, math } => {
                    assignments.push((variable.clone(), math.clone()));
                }
                Rule::Algebraic { .. } => {
                    // Algebraic rules require a DAE solver; out of scope.
                }
            }
        }

        let events = model
            .events
            .iter()
            .map(|ev| {
                let assigns =
                    ev.assignments.iter().map(|a| (a.variable.clone(), a.math.clone())).collect();
                (ev.trigger.clone(), assigns)
            })
            .collect();

        Ok(ReactionSystem {
            species,
            initial,
            reactions,
            rate_rules,
            assignments,
            events,
            base_env,
            species_index,
        })
    }

    /// Index of a dynamic species in the state vector.
    pub fn species_position(&self, id: &str) -> Option<usize> {
        self.species_index.get(id).copied()
    }

    /// Build the evaluation environment for a state.
    pub fn env_for(&self, state: &[f64], time: f64) -> Env {
        let mut env = self.base_env.clone();
        env.time = time;
        for (i, id) in self.species.iter().enumerate() {
            env.set_var(id.clone(), state[i]);
        }
        // Assignment rules (may overwrite parameters or species).
        for (variable, math) in &self.assignments {
            if let Ok(v) = evaluate(math, &env) {
                env.set_var(variable.clone(), v);
            }
        }
        env
    }

    /// Evaluate dy/dt at a state.
    pub fn derivatives(&self, state: &[f64], time: f64) -> Result<Vec<f64>, SimError> {
        let env = self.env_for(state, time);
        let mut dy = vec![0.0; state.len()];
        for r in &self.reactions {
            let rate = evaluate(&r.rate, &env).map_err(|source| SimError::Eval {
                context: format!("reaction '{}'", r.id),
                source,
            })?;
            for &(i, d) in &r.delta {
                dy[i] += d * rate;
            }
        }
        for (i, math) in &self.rate_rules {
            dy[*i] += evaluate(math, &env).map_err(|source| SimError::Eval {
                context: "rate rule".to_owned(),
                source,
            })?;
        }
        Ok(dy)
    }

    /// Check events against a state; returns updated state if any fired.
    /// `previously_true` tracks trigger values to fire only on transitions.
    pub fn apply_events(
        &self,
        state: &mut [f64],
        time: f64,
        previously_true: &mut [bool],
    ) -> Result<bool, SimError> {
        let mut fired = false;
        for (idx, (trigger, assigns)) in self.events.iter().enumerate() {
            let env = self.env_for(state, time);
            let now_true = evaluate(trigger, &env).map_err(|source| SimError::Eval {
                context: "event trigger".to_owned(),
                source,
            })? != 0.0;
            if now_true && !previously_true[idx] {
                for (variable, math) in assigns {
                    let value = evaluate(math, &env).map_err(|source| SimError::Eval {
                        context: "event assignment".to_owned(),
                        source,
                    })?;
                    if let Some(&i) = self.species_index.get(variable) {
                        state[i] = value;
                        fired = true;
                    }
                }
            }
            previously_true[idx] = now_true;
        }
        Ok(fired)
    }
}

/// Inline one layer of function-definition calls.
fn inline_functions(
    expr: &MathExpr,
    functions: &HashMap<String, (Vec<String>, MathExpr)>,
    inlined_any: &mut bool,
) -> MathExpr {
    match expr {
        MathExpr::Call { function, args } => {
            let new_args: Vec<MathExpr> =
                args.iter().map(|a| inline_functions(a, functions, inlined_any)).collect();
            if let Some((params, body)) = functions.get(function) {
                if params.len() == new_args.len() {
                    *inlined_any = true;
                    return inline_call(params, body, &new_args);
                }
            }
            MathExpr::Call { function: function.clone(), args: new_args }
        }
        MathExpr::Apply { op, args } => MathExpr::Apply {
            op: *op,
            args: args.iter().map(|a| inline_functions(a, functions, inlined_any)).collect(),
        },
        MathExpr::Piecewise { pieces, otherwise } => MathExpr::Piecewise {
            pieces: pieces
                .iter()
                .map(|(v, c)| {
                    (
                        inline_functions(v, functions, inlined_any),
                        inline_functions(c, functions, inlined_any),
                    )
                })
                .collect(),
            otherwise: otherwise
                .as_ref()
                .map(|o| Box::new(inline_functions(o, functions, inlined_any))),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn decay() -> Model {
        ModelBuilder::new("decay")
            .compartment("cell", 1.0)
            .species("A", 100.0)
            .parameter("k", 0.5)
            .reaction("deg", &["A"], &[], "k*A")
            .build()
    }

    #[test]
    fn compile_basics() {
        let sys = ReactionSystem::compile(&decay()).unwrap();
        assert_eq!(sys.species, vec!["A".to_owned()]);
        assert_eq!(sys.initial, vec![100.0]);
        assert_eq!(sys.reactions.len(), 1);
        assert_eq!(sys.reactions[0].delta, vec![(0, -1.0)]);
        assert_eq!(sys.species_position("A"), Some(0));
        assert_eq!(sys.species_position("Z"), None);
    }

    #[test]
    fn derivatives_mass_action() {
        let sys = ReactionSystem::compile(&decay()).unwrap();
        let dy = sys.derivatives(&[100.0], 0.0).unwrap();
        assert_eq!(dy, vec![-50.0]); // -k*A = -0.5*100
    }

    #[test]
    fn constant_species_not_in_state() {
        let mut m = decay();
        m.species.push({
            let mut s = sbml_model::Species::new("E", "cell", 7.0);
            s.constant = true;
            s
        });
        let sys = ReactionSystem::compile(&m).unwrap();
        assert_eq!(sys.species.len(), 1, "constant species excluded from state");
        assert_eq!(sys.base_env.vars.get("E"), Some(&7.0));
    }

    #[test]
    fn boundary_species_not_consumed() {
        let m = ModelBuilder::new("b")
            .compartment("cell", 1.0)
            .species("S", 10.0)
            .species("P", 0.0)
            .parameter("k", 1.0)
            .reaction("r", &["S"], &["P"], "k*S")
            .build();
        let mut m2 = m.clone();
        m2.species[0].boundary_condition = true;
        let sys = ReactionSystem::compile(&m2).unwrap();
        // S is boundary: only P in state, produced at rate k*S = 10.
        assert_eq!(sys.species, vec!["P".to_owned()]);
        let dy = sys.derivatives(&[0.0], 0.0).unwrap();
        assert_eq!(dy, vec![10.0]);
    }

    #[test]
    fn function_definitions_inlined() {
        let m = ModelBuilder::new("mm")
            .function("mm", &["S", "V", "K"], "V*S/(K+S)")
            .compartment("cell", 1.0)
            .species("S", 10.0)
            .parameter("Vmax", 2.0)
            .parameter("Km", 5.0)
            .reaction("consume", &["S"], &[], "mm(S, Vmax, Km)")
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        let dy = sys.derivatives(&[10.0], 0.0).unwrap();
        // -Vmax*S/(Km+S) = -2*10/15
        assert!((dy[0] + 2.0 * 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn local_parameters_bound() {
        let mut m = decay();
        m.reactions[0]
            .kinetic_law
            .as_mut()
            .unwrap()
            .parameters
            .push(sbml_model::Parameter::new("k", 2.0)); // shadows global 0.5
        let sys = ReactionSystem::compile(&m).unwrap();
        let dy = sys.derivatives(&[100.0], 0.0).unwrap();
        assert_eq!(dy, vec![-200.0], "local k=2 wins over global k=0.5");
    }

    #[test]
    fn initial_assignment_overrides() {
        let m = ModelBuilder::new("ia")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .parameter("k", 3.0)
            .initial_assignment("A", "k * 10")
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        assert_eq!(sys.initial, vec![30.0]);
    }

    #[test]
    fn assignment_rules_feed_rates() {
        let m = ModelBuilder::new("ar")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .parameter("keff", 0.0) // overwritten by rule
            .assignment_rule("keff", "0.1 * 2")
            .reaction("deg", &["A"], &[], "keff*A")
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        let dy = sys.derivatives(&[10.0], 0.0).unwrap();
        assert!((dy[0] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_rules_integrated() {
        let m = ModelBuilder::new("rr")
            .compartment("cell", 1.0)
            .species("X", 0.0)
            .rate_rule("X", "3")
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        let dy = sys.derivatives(&[0.0], 0.0).unwrap();
        assert_eq!(dy, vec![3.0]);
    }

    #[test]
    fn events_fire_on_transition_only() {
        let m = ModelBuilder::new("ev")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .event("e", "time >= 5", &[("A", "A + 10")])
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        let mut state = vec![0.0];
        let mut prev = vec![false];
        assert!(!sys.apply_events(&mut state, 1.0, &mut prev).unwrap());
        assert!(sys.apply_events(&mut state, 6.0, &mut prev).unwrap());
        assert_eq!(state, vec![10.0]);
        // Still true at 7.0 — no re-fire.
        assert!(!sys.apply_events(&mut state, 7.0, &mut prev).unwrap());
        assert_eq!(state, vec![10.0]);
    }

    #[test]
    fn unknown_identifier_in_rate_errors() {
        let m = ModelBuilder::new("bad")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .reaction("r", &["A"], &[], "mystery*A")
            .build();
        let sys = ReactionSystem::compile(&m).unwrap();
        assert!(matches!(sys.derivatives(&[1.0], 0.0), Err(SimError::Eval { .. })));
    }
}
