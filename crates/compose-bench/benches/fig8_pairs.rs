//! Criterion micro-benchmarks behind **Figure 8**: composition time for
//! representative pairs across the corpus size range, plus the XML
//! pipeline components (parse + serialize) around the merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbml_compose::Composer;

fn bench_pairs(c: &mut Criterion) {
    let corpus = biomodels_corpus::corpus_187();
    let composer = Composer::default();
    let mut group = c.benchmark_group("fig8/compose_pair");
    for &i in &[10usize, 60, 120, 186] {
        let a = &corpus[i];
        let b = &corpus[i.saturating_sub(1)];
        let label = format!("size_{}x{}", a.size(), b.size());
        group.bench_with_input(BenchmarkId::from_parameter(label), &(a, b), |bench, (a, b)| {
            bench.iter(|| std::hint::black_box(composer.compose(a, b)));
        });
    }
    group.finish();
}

fn bench_self_merge_scaling(c: &mut Criterion) {
    // Self-merge isolates duplicate-detection cost (all components match).
    let corpus = biomodels_corpus::corpus_187();
    let composer = Composer::default();
    let mut group = c.benchmark_group("fig8/self_merge");
    for &i in &[30usize, 90, 150, 186] {
        let m = &corpus[i];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("size_{}", m.size())),
            m,
            |bench, m| {
                bench.iter(|| std::hint::black_box(composer.compose(m, m)));
            },
        );
    }
    group.finish();
}

fn bench_xml_round_trip(c: &mut Criterion) {
    // The paper's pipeline includes reading/writing SBML text.
    let corpus = biomodels_corpus::corpus_187();
    let m = &corpus[150];
    let text = sbml_model::write_sbml(m);
    let mut group = c.benchmark_group("fig8/xml");
    group.bench_function("write_sbml_large_model", |b| {
        b.iter(|| std::hint::black_box(sbml_model::write_sbml(m)));
    });
    group.bench_function("parse_sbml_large_model", |b| {
        b.iter(|| std::hint::black_box(sbml_model::parse_sbml(&text).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_pairs, bench_self_merge_scaling, bench_xml_round_trip);
criterion_main!(benches);
