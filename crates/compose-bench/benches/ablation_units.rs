//! Criterion bench for the Fig. 6 unit machinery: signature computation,
//! conversion factors and the deterministic↔stochastic rate bridge used
//! during conflict checking.

use criterion::{criterion_group, criterion_main, Criterion};
use sbml_units::convert::{conversion_factor, deterministic_to_stochastic, ReactionOrder};
use sbml_units::{Unit, UnitDefinition, UnitKind};

fn bench_unit_machinery(c: &mut Criterion) {
    let per_mm_per_s = UnitDefinition::new(
        "per_mM_per_s",
        vec![
            Unit::of(UnitKind::Mole).pow(-1).scaled(-3),
            Unit::of(UnitKind::Litre),
            Unit::of(UnitKind::Second).pow(-1),
        ],
    );
    let per_m_per_s = UnitDefinition::new(
        "per_M_per_s",
        vec![
            Unit::of(UnitKind::Mole).pow(-1),
            Unit::of(UnitKind::Litre),
            Unit::of(UnitKind::Second).pow(-1),
        ],
    );

    let mut group = c.benchmark_group("fig6");
    group.bench_function("signature", |b| {
        b.iter(|| std::hint::black_box(per_mm_per_s.signature()));
    });
    group.bench_function("conversion_factor", |b| {
        b.iter(|| std::hint::black_box(conversion_factor(&per_mm_per_s, &per_m_per_s)));
    });
    group.bench_function("det_to_stoch_all_orders", |b| {
        b.iter(|| {
            for order in [ReactionOrder::Zeroth, ReactionOrder::First, ReactionOrder::Second] {
                std::hint::black_box(deterministic_to_stochastic(1e-3, order, 1e-15));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_unit_machinery);
criterion_main!(benches);
