//! Criterion bench for the index-structure ablation (future-work §5.7):
//! hash map vs B-tree vs linear scan on a large corpus pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbml_compose::{ComposeOptions, Composer, IndexKind};

fn bench_index_kinds(c: &mut Criterion) {
    let corpus = biomodels_corpus::corpus_187();
    let a = &corpus[170];
    let b = &corpus[169];
    let mut group = c.benchmark_group("ablation/index");
    for (name, kind) in [
        ("hashmap", IndexKind::HashMap),
        ("btree", IndexKind::BTree),
        ("linear_scan", IndexKind::LinearScan),
    ] {
        let composer = Composer::new(ComposeOptions::default().with_index(kind));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(a, b), |bench, (a, b)| {
            bench.iter(|| std::hint::black_box(composer.compose(a, b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_kinds);
criterion_main!(benches);
