//! Criterion micro-benchmarks behind **Figure 9**: SBMLCompose vs the
//! simulated semanticSBML on pairs from the 17-model corpus, and a
//! decomposition of the baseline's cost (database load vs merge proper).

use criterion::{criterion_group, criterion_main, Criterion};
use sbml_compose::Composer;
use semantic_baseline::{AnnotationDb, SemanticBaseline};

fn bench_engines(c: &mut Criterion) {
    let models = biomodels_corpus::corpus_17();
    let (a, b) = (&models[3], &models[11]);
    let composer = Composer::default();
    let baseline = SemanticBaseline::default();

    let mut group = c.benchmark_group("fig9/engines");
    group.sample_size(20); // the baseline is slow by design
    group.bench_function("sbmlcompose", |bench| {
        bench.iter(|| std::hint::black_box(composer.compose(a, b)));
    });
    group.bench_function("semanticsbml_sim", |bench| {
        bench.iter(|| std::hint::black_box(baseline.merge(a, b)));
    });
    group.finish();
}

fn bench_baseline_cost_breakdown(c: &mut Criterion) {
    // Where does the baseline's time go? Mostly the per-run DB load.
    let mut group = c.benchmark_group("fig9/baseline_breakdown");
    group.sample_size(20);
    group.bench_function("annotation_db_load", |bench| {
        bench.iter(|| std::hint::black_box(AnnotationDb::load()));
    });
    let db = AnnotationDb::load();
    let models = biomodels_corpus::corpus_17();
    group.bench_function("annotate_one_model", |bench| {
        bench.iter(|| std::hint::black_box(semantic_baseline::annotate::annotate(&models[7], &db)));
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_baseline_cost_breakdown);
criterion_main!(benches);
