//! Criterion bench for the math-pattern cache ablation: the paper stores
//! mappings/patterns "to reduce comparison time" — this measures what that
//! buys on reaction-heavy merges where every lookup needs a pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbml_compose::{ComposeOptions, Composer};

fn bench_pattern_cache(c: &mut Criterion) {
    let corpus = biomodels_corpus::corpus_187();
    // Rename the second model's reaction ids so every reaction must be
    // matched by *content* (pattern), the cache-sensitive path.
    let a = corpus[150].clone();
    let mut b = corpus[150].clone();
    for (k, r) in b.reactions.iter_mut().enumerate() {
        r.id = format!("other_{k}");
    }

    let mut group = c.benchmark_group("ablation/pattern_cache");
    for (name, cached) in [("cached", true), ("uncached", false)] {
        let composer = Composer::new(ComposeOptions::default().with_pattern_cache(cached));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| std::hint::black_box(composer.compose(a, b)));
        });
    }
    group.finish();
}

fn bench_pattern_computation(c: &mut Criterion) {
    use sbml_math::{infix, pattern::Pattern};
    let exprs: Vec<_> = [
        "k1*A",
        "k1*A*B - k2*C",
        "Vmax*S/(Km+S)",
        "(a+b+c+d)*(e+f+g+h)/(i+j+k)",
    ]
    .iter()
    .map(|s| infix::parse(s).unwrap())
    .collect();
    c.bench_function("ablation/pattern_of_4_laws", |b| {
        b.iter(|| {
            for e in &exprs {
                std::hint::black_box(Pattern::of(e));
            }
        });
    });
}

criterion_group!(benches, bench_pattern_cache, bench_pattern_computation);
criterion_main!(benches);
